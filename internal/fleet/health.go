package fleet

import (
	"sort"
	"sync"
)

// ReplicaStatus is one replica's row in the fleet status report.
type ReplicaStatus struct {
	Name string `json:"name"`
	URL  string `json:"url"`
	// Alive is the routing view: dead replicas keep their ring points
	// but receive no traffic.
	Alive bool `json:"alive"`
	// Generation/StagedGeneration are from the last successful probe.
	Generation       uint64 `json:"generation"`
	StagedGeneration uint64 `json:"staged_generation,omitempty"`
	Oracle           bool   `json:"oracle"`
	Detector         bool   `json:"detector"`
	// ConsecutiveFailures counts probe/forward failures since the last
	// success.
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
	// Inflight is the router's outstanding request count against this
	// replica (the power-of-two-choices load signal).
	Inflight int64 `json:"inflight"`
	// Breaker is the circuit-breaker position ("closed", "open",
	// "half-open"); BreakerFailureRate its windowed failure fraction.
	Breaker            string  `json:"breaker,omitempty"`
	BreakerFailureRate float64 `json:"breaker_failure_rate,omitempty"`
}

// Tracker keeps per-replica health observations: consecutive-failure
// counting with a dead threshold, plus the generation and model
// presence reported by the last successful /healthz probe. It is the
// bookkeeping half of failure detection; the Router owns the policy
// (when to heal, when to return a replica to the ring).
type Tracker struct {
	mu        sync.Mutex
	deadAfter int
	states    map[string]*replicaHealth
}

type replicaHealth struct {
	alive    bool
	fails    int
	gen      uint64
	staged   uint64
	oracle   bool
	detector bool
	breaker  string
}

// NewTracker builds a tracker that declares a replica dead after
// deadAfter consecutive failures (<= 0 selects 2). Replicas start
// alive with zero observations.
func NewTracker(deadAfter int) *Tracker {
	if deadAfter <= 0 {
		deadAfter = 2
	}
	return &Tracker{deadAfter: deadAfter, states: make(map[string]*replicaHealth)}
}

// Track registers a replica (alive, unobserved). Idempotent.
func (t *Tracker) Track(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.states[name]; !ok {
		t.states[name] = &replicaHealth{alive: true}
	}
}

// state returns the tracked entry, registering on first touch.
func (t *Tracker) state(name string) *replicaHealth {
	s, ok := t.states[name]
	if !ok {
		s = &replicaHealth{alive: true}
		t.states[name] = s
	}
	return s
}

// ObserveSuccess records one successful probe and its payload,
// reporting whether the replica was dead (the Router then decides
// whether it may rejoin the ring — a lagging generation heals first).
func (t *Tracker) ObserveSuccess(name string, gen, staged uint64, oracle, detector bool) (wasDead bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.state(name)
	wasDead = !s.alive
	s.fails = 0
	s.gen, s.staged = gen, staged
	s.oracle, s.detector = oracle, detector
	return wasDead
}

// ObserveFailure records one failed probe or forward, reporting
// whether this one crossed the dead threshold.
func (t *Tracker) ObserveFailure(name string) (becameDead bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.state(name)
	s.fails++
	if s.alive && s.fails >= t.deadAfter {
		s.alive = false
		return true
	}
	return false
}

// MarkDead takes a replica out immediately (a forward saw its
// connection die — no reason to wait for the probe loop to agree).
// Reports whether it was alive.
func (t *Tracker) MarkDead(name string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.state(name)
	wasAlive := s.alive
	s.alive = false
	if s.fails == 0 {
		s.fails = 1
	}
	return wasAlive
}

// SetBreaker records a replica's circuit-breaker position (the Router
// pushes every transition here so status reads need no breaker lock).
func (t *Tracker) SetBreaker(name, state string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.state(name).breaker = state
}

// BreakerState reports the last recorded breaker position ("closed"
// before any transition).
func (t *Tracker) BreakerState(name string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s := t.state(name).breaker; s != "" {
		return s
	}
	return "closed"
}

// MarkAlive returns a replica to service (after the Router healed it).
func (t *Tracker) MarkAlive(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.state(name)
	s.alive = true
	s.fails = 0
}

// Alive reports the tracked aliveness.
func (t *Tracker) Alive(name string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state(name).alive
}

// Generation reports the last probed generation.
func (t *Tracker) Generation(name string) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state(name).gen
}

// ModelsSeen reports whether any tracked replica has reported an
// oracle and whether any has reported a detector.
func (t *Tracker) ModelsSeen() (oracle, detector bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.states {
		oracle = oracle || s.oracle
		detector = detector || s.detector
	}
	return oracle, detector
}

// Statuses renders every tracked replica, sorted by name.
func (t *Tracker) Statuses() []ReplicaStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]ReplicaStatus, 0, len(t.states))
	for name, s := range t.states {
		breaker := s.breaker
		if breaker == "" {
			breaker = "closed"
		}
		out = append(out, ReplicaStatus{
			Name:                name,
			Alive:               s.alive,
			Generation:          s.gen,
			StagedGeneration:    s.staged,
			Oracle:              s.oracle,
			Detector:            s.detector,
			ConsecutiveFailures: s.fails,
			Breaker:             breaker,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
