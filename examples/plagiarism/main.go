// Plagiarism screening: the paper's motivating scenario. A course
// staff trains a ChatGPT-vs-human detector on known samples, then
// screens a batch of "submissions" — some genuinely written by
// students (synthetic authors), some produced by the simulated ChatGPT
// transforming a solution. Mirrors the paper's binary-classification
// experiment (Table X).
package main

import (
	"fmt"
	"math/rand"
	"os"

	"gptattr/attribution"
	"gptattr/internal/challenge"
	"gptattr/internal/codegen"
	"gptattr/internal/style"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "plagiarism:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(13))

	// Training data: 10 students' past submissions + transformed
	// variants the staff generated themselves.
	var humanTrain []string
	var students []style.Profile
	for i := 0; i < 10; i++ {
		prof := style.Random(fmt.Sprintf("student-%02d", i), rng)
		students = append(students, prof)
		for _, ch := range challenge.ByYear(2017) {
			humanTrain = append(humanTrain, codegen.Render(ch.Prog, prof, rng.Int63()))
		}
	}
	tr := attribution.NewTransformer(attribution.TransformerConfig{Seed: 21})
	var gptTrain []string
	for _, src := range humanTrain[:16] {
		variants, err := tr.NCT(src, 4)
		if err != nil {
			return err
		}
		gptTrain = append(gptTrain, variants...)
	}
	det, err := attribution.TrainDetector(humanTrain, gptTrain, attribution.Params{Trees: 80, Seed: 3})
	if err != nil {
		return err
	}
	fmt.Printf("detector trained on %d human and %d ChatGPT samples\n\n", len(humanTrain), len(gptTrain))

	// Screening batch: fresh 2019 submissions. Even-numbered students
	// submit their own work; odd-numbered ones pass their solution
	// through ChatGPT first.
	var correct, total int
	fmt.Println("submission screening (challenge 2019/C3):")
	ch, err := challenge.Get(2019, "C3")
	if err != nil {
		return err
	}
	for i, prof := range students {
		src := codegen.Render(ch.Prog, prof, rng.Int63())
		cheated := i%2 == 1
		if cheated {
			variants, err := tr.NCT(src, 1)
			if err != nil {
				return err
			}
			src = variants[0]
		}
		flagged, conf, err := det.IsChatGPT(src)
		if err != nil {
			return err
		}
		verdict := "clean "
		if flagged {
			verdict = "FLAGGED"
		}
		truth := "honest "
		if cheated {
			truth = "chatgpt"
		}
		ok := flagged == cheated
		if ok {
			correct++
		}
		total++
		fmt.Printf("  student-%02d  %s  (truth: %s, confidence %.2f)\n", i, verdict, truth, conf)
	}
	fmt.Printf("\nscreening accuracy: %d/%d (paper reports up to 93%% binary accuracy)\n", correct, total)
	return nil
}
