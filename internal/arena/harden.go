package arena

import (
	"fmt"
	"sort"

	"gptattr/internal/attrib"
	"gptattr/internal/corpus"
	"gptattr/internal/stylometry"
)

// EvadingSample is one verified evasion to fold back into training:
// the gate-verified variant paired with the author it was written by.
type EvadingSample struct {
	Source     string
	TrueAuthor string
}

// HardenChallenge labels adversarial training samples in the
// augmented corpus, so they are distinguishable (and group together
// under challenge-wise cross-validation).
const HardenChallenge = "ADV"

// Harden is the defense half of the closed loop: adversarial
// retraining. Verified evading variants are appended to the human
// training corpus under their TRUE author labels — teaching the
// forest that the rewritten style is still that author — and a fresh
// oracle is fit through the pre-sorted training engine. It returns the
// hardened oracle and the augmented corpus (the input corpus is not
// modified).
func Harden(human *corpus.Corpus, evasions []EvadingSample, cfg attrib.Config) (*attrib.Oracle, *corpus.Corpus, error) {
	if len(evasions) == 0 {
		return nil, nil, fmt.Errorf("arena: no evading samples to harden on")
	}
	adv := &corpus.Corpus{Samples: make([]corpus.Sample, len(evasions))}
	for i, ev := range evasions {
		if ev.TrueAuthor == "" {
			return nil, nil, fmt.Errorf("arena: evading sample %d has no author", i)
		}
		adv.Samples[i] = corpus.Sample{
			Source:    ev.Source,
			Author:    ev.TrueAuthor,
			Challenge: HardenChallenge,
		}
	}
	augmented := corpus.Merge(human, adv)
	oracle, err := attrib.TrainOracle(augmented, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("arena: hardening retrain: %w", err)
	}
	return oracle, augmented, nil
}

// SourcePair is one original/evaded pair for the robustness ranking.
type SourcePair struct {
	Original string
	Evaded   string
}

// FeatureShift scores how much the attacks moved one stylometry
// feature.
type FeatureShift struct {
	// Name is the feature column.
	Name string
	// MeanAbsDelta is the mean |evaded − original| of the feature's
	// value across all pairs.
	MeanAbsDelta float64
	// Moved counts pairs in which the feature changed at all.
	Moved int
}

// RankFeatureShifts is the feature-robustness ranking: which
// stylometry features the evasion attacks exploit most. It learns a
// vectorizer over all involved sources (MinDocFreq 1, so attack-only
// features are visible), vectorizes each pair, and ranks features by
// mean absolute shift. topN bounds the returned ranking (0 = all).
func RankFeatureShifts(pairs []SourcePair, topN int) ([]FeatureShift, error) {
	if len(pairs) == 0 {
		return nil, fmt.Errorf("arena: no pairs to rank")
	}
	docs := make([]stylometry.Features, 0, 2*len(pairs))
	for i, p := range pairs {
		of, err := stylometry.Extract(p.Original)
		if err != nil {
			return nil, fmt.Errorf("arena: extracting original %d: %w", i, err)
		}
		ef, err := stylometry.Extract(p.Evaded)
		if err != nil {
			return nil, fmt.Errorf("arena: extracting evaded %d: %w", i, err)
		}
		docs = append(docs, of, ef)
	}
	vec := stylometry.NewVectorizer(docs, stylometry.VectorizerConfig{MinDocFreq: 1})
	names := vec.FeatureNames()
	sumAbs := make([]float64, len(names))
	moved := make([]int, len(names))
	for i := 0; i < len(docs); i += 2 {
		orow := vec.Vector(docs[i])
		erow := vec.Vector(docs[i+1])
		for c := range names {
			d := erow[c] - orow[c]
			if d < 0 {
				d = -d
			}
			if d > 0 {
				sumAbs[c] += d
				moved[c]++
			}
		}
	}
	out := make([]FeatureShift, 0, len(names))
	for c, name := range names {
		if moved[c] == 0 {
			continue
		}
		out = append(out, FeatureShift{
			Name:         name,
			MeanAbsDelta: sumAbs[c] / float64(len(pairs)),
			Moved:        moved[c],
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].MeanAbsDelta != out[j].MeanAbsDelta {
			return out[i].MeanAbsDelta > out[j].MeanAbsDelta
		}
		return out[i].Name < out[j].Name
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out, nil
}
