package cpptok

import (
	"fmt"
	"strings"
)

// operators lists all multi-character operators, longest first, so the
// scanner can apply maximal munch. Single-character punctuation is
// handled as a fallback.
var operators = []string{
	"<<=", ">>=", "...", "->*", "<=>",
	"::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
	"&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", ".*",
}

// ScanError describes a lexical error with its source position.
type ScanError struct {
	Line int
	Col  int
	Msg  string
}

// Error implements the error interface.
func (e *ScanError) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

// Scan tokenizes src. It is tolerant: unterminated strings and comments
// are returned as tokens extending to end of input, and an error is
// reported alongside the tokens so stylometry can proceed on partially
// malformed files. The returned slice always ends with a KindEOF token.
func Scan(src string) ([]Token, error) {
	s := &scanner{src: src, line: 1, col: 1}
	var firstErr error
	// Dense C++ averages roughly one token per 3-4 bytes; sizing for
	// that means at most one regrowth on real sources instead of the
	// ~12 append doublings a nil slice pays on contest-sized files.
	toks := make([]Token, 0, len(src)/3+16)
	for {
		tok, err := s.next()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if tok.Kind != KindInvalid {
			toks = append(toks, tok)
		}
		if tok.Kind == KindEOF {
			break
		}
	}
	return toks, firstErr
}

// MustScan tokenizes src, ignoring lexical errors. It is intended for
// sources produced by this module's own code generator, which are always
// lexically valid.
func MustScan(src string) []Token {
	toks, _ := Scan(src)
	return toks
}

type scanner struct {
	src  string
	off  int
	line int
	col  int
}

func (s *scanner) eof() bool { return s.off >= len(s.src) }

func (s *scanner) peek() byte {
	if s.eof() {
		return 0
	}
	return s.src[s.off]
}

func (s *scanner) peekAt(n int) byte {
	if s.off+n >= len(s.src) {
		return 0
	}
	return s.src[s.off+n]
}

// advance consumes n bytes, maintaining line/col.
func (s *scanner) advance(n int) {
	for i := 0; i < n && s.off < len(s.src); i++ {
		if s.src[s.off] == '\n' {
			s.line++
			s.col = 1
		} else {
			s.col++
		}
		s.off++
	}
}

func (s *scanner) errorf(line, col int, format string, args ...any) error {
	return &ScanError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// atLineStart reports whether only whitespace precedes the current
// offset on this line. Used to recognize preprocessor directives.
func (s *scanner) atLineStart() bool {
	for i := s.off - 1; i >= 0; i-- {
		switch s.src[i] {
		case '\n':
			return true
		case ' ', '\t', '\r':
			continue
		default:
			return false
		}
	}
	return true
}

func (s *scanner) next() (Token, error) {
	// Skip whitespace.
	for !s.eof() {
		c := s.peek()
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			s.advance(1)
			continue
		}
		break
	}
	if s.eof() {
		return Token{Kind: KindEOF, Line: s.line, Col: s.col}, nil
	}

	startLine, startCol, startOff := s.line, s.col, s.off
	c := s.peek()

	mk := func(kind Kind) Token {
		return Token{Kind: kind, Text: s.src[startOff:s.off], Line: startLine, Col: startCol}
	}

	switch {
	case c == '#' && s.atLineStart():
		// Preprocessor directive: consume to end of line, honoring
		// backslash continuations.
		for !s.eof() && s.peek() != '\n' {
			if s.peek() == '\\' && s.peekAt(1) == '\n' {
				s.advance(2)
				continue
			}
			s.advance(1)
		}
		return mk(KindPreproc), nil

	case c == '/' && s.peekAt(1) == '/':
		for !s.eof() && s.peek() != '\n' {
			s.advance(1)
		}
		return mk(KindLineComment), nil

	case c == '/' && s.peekAt(1) == '*':
		s.advance(2)
		for !s.eof() {
			if s.peek() == '*' && s.peekAt(1) == '/' {
				s.advance(2)
				return mk(KindBlockComment), nil
			}
			s.advance(1)
		}
		return mk(KindBlockComment), s.errorf(startLine, startCol, "unterminated block comment")

	case isIdentStart(c):
		// Raw string literal R"(...)"
		if c == 'R' && s.peekAt(1) == '"' {
			return s.rawString(startLine, startCol, startOff)
		}
		for !s.eof() && isIdentCont(s.peek()) {
			s.advance(1)
		}
		text := s.src[startOff:s.off]
		if cppKeywords[text] {
			return mk(KindKeyword), nil
		}
		return mk(KindIdent), nil

	case c >= '0' && c <= '9', c == '.' && isDigit(s.peekAt(1)):
		return s.number(startLine, startCol, startOff)

	case c == '"':
		return s.quoted('"', KindStringLit, startLine, startCol, startOff)

	case c == '\'':
		return s.quoted('\'', KindCharLit, startLine, startCol, startOff)

	default:
		for _, op := range operators {
			if strings.HasPrefix(s.src[s.off:], op) {
				s.advance(len(op))
				return mk(KindPunct), nil
			}
		}
		s.advance(1)
		if !isPunct(c) {
			return mk(KindPunct), s.errorf(startLine, startCol, "unexpected character %q", c)
		}
		return mk(KindPunct), nil
	}
}

func (s *scanner) rawString(line, col, startOff int) (Token, error) {
	// R"delim( ... )delim"
	s.advance(2) // R"
	delimStart := s.off
	for !s.eof() && s.peek() != '(' {
		s.advance(1)
	}
	if s.eof() {
		return Token{Kind: KindStringLit, Text: s.src[startOff:s.off], Line: line, Col: col},
			s.errorf(line, col, "unterminated raw string")
	}
	delim := s.src[delimStart:s.off]
	s.advance(1) // (
	closer := ")" + delim + `"`
	for !s.eof() {
		if strings.HasPrefix(s.src[s.off:], closer) {
			s.advance(len(closer))
			return Token{Kind: KindStringLit, Text: s.src[startOff:s.off], Line: line, Col: col}, nil
		}
		s.advance(1)
	}
	return Token{Kind: KindStringLit, Text: s.src[startOff:s.off], Line: line, Col: col},
		s.errorf(line, col, "unterminated raw string")
}

func (s *scanner) quoted(q byte, kind Kind, line, col, startOff int) (Token, error) {
	s.advance(1)
	for !s.eof() {
		c := s.peek()
		if c == '\\' {
			s.advance(2)
			continue
		}
		if c == q {
			s.advance(1)
			return Token{Kind: kind, Text: s.src[startOff:s.off], Line: line, Col: col}, nil
		}
		if c == '\n' {
			break
		}
		s.advance(1)
	}
	return Token{Kind: kind, Text: s.src[startOff:s.off], Line: line, Col: col},
		s.errorf(line, col, "unterminated %s literal", kind)
}

func (s *scanner) number(line, col, startOff int) (Token, error) {
	isFloat := false
	if s.peek() == '0' && (s.peekAt(1) == 'x' || s.peekAt(1) == 'X') {
		s.advance(2)
		for !s.eof() && isHexDigit(s.peek()) {
			s.advance(1)
		}
	} else {
		for !s.eof() && isDigit(s.peek()) {
			s.advance(1)
		}
		if s.peek() == '.' && s.peekAt(1) != '.' {
			isFloat = true
			s.advance(1)
			for !s.eof() && isDigit(s.peek()) {
				s.advance(1)
			}
		}
		if c := s.peek(); c == 'e' || c == 'E' {
			next := s.peekAt(1)
			if isDigit(next) || ((next == '+' || next == '-') && isDigit(s.peekAt(2))) {
				isFloat = true
				s.advance(2)
				for !s.eof() && isDigit(s.peek()) {
					s.advance(1)
				}
			}
		}
	}
	// Suffixes: u, l, ll, f, etc.
	for !s.eof() {
		switch s.peek() {
		case 'u', 'U', 'l', 'L':
			s.advance(1)
		case 'f', 'F':
			isFloat = true
			s.advance(1)
		default:
			goto done
		}
	}
done:
	kind := KindIntLit
	if isFloat {
		kind = KindFloatLit
	}
	return Token{Kind: kind, Text: s.src[startOff:s.off], Line: line, Col: col}, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func isPunct(c byte) bool {
	switch c {
	case '{', '}', '(', ')', '[', ']', ';', ',', '.', ':', '?',
		'+', '-', '*', '/', '%', '<', '>', '=', '!', '&', '|', '^', '~', '#', '\\', '@', '$', '`':
		return true
	}
	return false
}

// StripComments returns toks without comment tokens. The input slice is
// not modified.
func StripComments(toks []Token) []Token {
	out := make([]Token, 0, len(toks))
	for _, t := range toks {
		if !t.IsComment() {
			out = append(out, t)
		}
	}
	return out
}

// Idents returns the text of every identifier token, in order.
func Idents(toks []Token) []string {
	var out []string
	for _, t := range toks {
		if t.Kind == KindIdent {
			out = append(out, t.Text)
		}
	}
	return out
}
