// Package chaos holds the fault-storm harness: seeded go tests that
// arm many fault-injection points at once (see internal/fault) and
// assert the pipeline's recovery contract — the experiment suite
// completes with outputs identical to a fault-free run, because every
// supervised call site absorbs Limit-bounded transient faults and the
// unbounded fault kinds (torn cache writes, failed cache reads,
// latency) only ever cost recomputation, never results.
//
// The serving-layer half of the contract — degrade to 429/503/504 but
// never drop a request — lives with the serve package's fixtures in
// internal/serve's chaos tests.
package chaos
