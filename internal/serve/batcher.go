package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"gptattr/internal/fault"
	"gptattr/internal/stylometry"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrSaturated means the admission queue is full; clients should
	// back off (429 + Retry-After).
	ErrSaturated = errors.New("serve: extraction queue saturated")
	// ErrClosed means the batcher is draining for shutdown (503).
	ErrClosed = errors.New("serve: batcher closed")
	// ErrInternal means the extraction machinery itself failed (a
	// contained batch panic or an unrecovered injected fault); the
	// HTTP layer answers 503 so clients retry elsewhere. The request
	// is answered, never dropped.
	ErrInternal = errors.New("serve: internal extraction failure")
)

// Fault-injection points on the serving path (see internal/fault).
// An admission fault rejects exactly like saturation (429); a batch
// fault delays or fails one whole batch — every job still gets an
// answer.
const (
	PointAdmit = "serve.admit"
	PointBatch = "serve.batch"
)

// batchRetries bounds the retry supervisor around transient batch
// faults (no backoff: jobs are holding their latency budgets).
const batchRetries = 3

// BatchConfig tunes the micro-batching extraction queue.
type BatchConfig struct {
	// MaxBatch bounds how many requests one batch coalesces
	// (default 16).
	MaxBatch int
	// MaxDelay bounds how long the collector waits to fill a batch
	// after its first request arrives (default 2ms). Latency cost of
	// batching is at most this.
	MaxDelay time.Duration
	// QueueDepth bounds admitted-but-unbatched requests; a full queue
	// rejects with ErrSaturated (default 256).
	QueueDepth int
	// Workers bounds the per-batch extraction pool, passed through to
	// stylometry.ExtractEach (0 = GOMAXPROCS).
	Workers int
	// Cache is the shared feature cache consulted before extraction
	// (nil = uncached).
	Cache stylometry.FeatureCache
	// Logf, when non-nil, receives operational log lines (saturation
	// rejections, contained batch panics) carrying request IDs.
	Logf func(format string, args ...any)
	// Brownout, when non-nil, is the adaptive overload controller: the
	// batcher feeds it every job's queue delay and honours its current
	// degrade level as the forced floor for each batch.
	Brownout *Brownout
	// extractFn overrides the batch extraction function; tests use it
	// to observe batch shapes and to block batches deterministically.
	// Batches run through it bypass degradation (level 0 always).
	extractFn func(sources []string) ([]stylometry.Features, []error)
	// extractCtxFn is the budget-aware override: per-job contexts plus
	// the brownout floor in, per-job degrade levels out. Nil falls back
	// to extractFn (if set) or stylometry.ExtractEachDegraded.
	extractCtxFn func(ctxs []context.Context, sources []string,
		force stylometry.DegradeLevel) ([]stylometry.Features, []stylometry.DegradeLevel, []error)
}

func (c BatchConfig) withDefaults() BatchConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.extractCtxFn == nil {
		if fn := c.extractFn; fn != nil {
			c.extractCtxFn = func(_ []context.Context, sources []string,
				_ stylometry.DegradeLevel) ([]stylometry.Features, []stylometry.DegradeLevel, []error) {
				feats, errs := fn(sources)
				return feats, make([]stylometry.DegradeLevel, len(sources)), errs
			}
		} else {
			workers, cache := c.Workers, c.Cache
			c.extractCtxFn = func(ctxs []context.Context, sources []string,
				force stylometry.DegradeLevel) ([]stylometry.Features, []stylometry.DegradeLevel, []error) {
				return stylometry.ExtractEachDegraded(ctxs, sources, force, stylometry.ExtractConfig{
					Workers: workers, Cache: cache,
				})
			}
		}
	}
	return c
}

// job is one admitted extraction request.
type job struct {
	src  string
	id   string // request ID for log traceability ("" outside HTTP)
	ctx  context.Context
	enq  time.Time      // admission time; queue delay feeds the Brownout controller
	done chan jobResult // buffered(1); the batch loop never blocks on it
}

type jobResult struct {
	f     stylometry.Features
	level stylometry.DegradeLevel
	err   error
}

// Batcher coalesces concurrent feature-extraction requests into
// bounded batches that run on the stylometry worker pool. Admission is
// a non-blocking send into a bounded queue, so saturation surfaces
// immediately as ErrSaturated instead of unbounded queueing; request
// deadlines are honoured both while queued and while waiting for a
// batch in flight.
type Batcher struct {
	cfg   BatchConfig
	queue chan *job

	mu     sync.Mutex
	closed bool

	loopDone chan struct{}

	// onBatch, when non-nil, observes each batch size (metrics hook).
	onBatch func(n int)
}

// NewBatcher starts the collector loop.
func NewBatcher(cfg BatchConfig) *Batcher {
	b := &Batcher{
		cfg:      cfg.withDefaults(),
		loopDone: make(chan struct{}),
	}
	b.queue = make(chan *job, b.cfg.QueueDepth)
	go b.loop()
	return b
}

// QueueLen reports the current admission-queue depth (metrics).
func (b *Batcher) QueueLen() int { return len(b.queue) }

// Brownout returns the wired overload controller (nil if none).
func (b *Batcher) Brownout() *Brownout { return b.cfg.Brownout }

// Extract admits one source, waits for its batch, and returns the
// features. It fails fast with ErrSaturated when the queue is full,
// ErrClosed when draining, or ctx.Err() when the caller's deadline
// expires first.
func (b *Batcher) Extract(ctx context.Context, src string) (stylometry.Features, error) {
	f, _, err := b.ExtractDegraded(ctx, src)
	return f, err
}

// ExtractDegraded is Extract plus the degrade level the features were
// computed at — the serving path uses it to pick the matching fallback
// oracle and to stamp X-Degrade-Level. The level reflects both the
// request's own budget (a deadline that expires mid-extraction sheds
// the semantic family instead of failing) and the brownout floor in
// force when the batch ran.
func (b *Batcher) ExtractDegraded(ctx context.Context, src string) (stylometry.Features, stylometry.DegradeLevel, error) {
	j := &job{src: src, id: RequestIDFrom(ctx), ctx: ctx, enq: time.Now(), done: make(chan jobResult, 1)}
	if err := fault.Hit(PointAdmit); err != nil {
		// An injected admission fault degrades exactly like
		// saturation: the client gets 429 + Retry-After, traceably.
		b.logf("serve: admission fault, rejecting request %s: %v", j.id, err)
		return nil, 0, fmt.Errorf("%w (request %s): %v", ErrSaturated, j.id, err)
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, 0, ErrClosed
	}
	select {
	case b.queue <- j:
		b.mu.Unlock()
	default:
		b.mu.Unlock()
		b.logf("serve: queue saturated (%d/%d), rejecting request %s",
			len(b.queue), cap(b.queue), j.id)
		return nil, 0, ErrSaturated
	}
	select {
	case res := <-j.done:
		return res.f, res.level, res.err
	case <-ctx.Done():
		// The batch may still compute this entry (and warm the cache);
		// the caller just stops waiting.
		return nil, 0, ctx.Err()
	}
}

// Close stops admission and drains: every already-admitted job is
// still extracted and answered before Close returns. Safe to call
// once.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.loopDone
		return
	}
	b.closed = true
	close(b.queue)
	b.mu.Unlock()
	<-b.loopDone
}

// loop collects jobs into batches: the first job opens a batch, then
// the collector takes whatever arrives within MaxDelay up to MaxBatch.
// A closed queue drains to empty and exits.
func (b *Batcher) loop() {
	defer close(b.loopDone)
	for {
		first, ok := <-b.queue
		if !ok {
			return
		}
		batch := []*job{first}
		timer := time.NewTimer(b.cfg.MaxDelay)
	collect:
		for len(batch) < b.cfg.MaxBatch {
			select {
			case j, ok := <-b.queue:
				if !ok {
					// Draining: run what we have, then exit after the
					// queue is empty (outer receive sees closed).
					break collect
				}
				batch = append(batch, j)
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()
		b.runBatch(batch)
	}
}

// logf emits one operational log line when a logger is configured.
func (b *Batcher) logf(format string, args ...any) {
	if b.cfg.Logf != nil {
		b.cfg.Logf(format, args...)
	}
}

// runBatch extracts one batch and answers every job. Jobs whose
// deadline already passed are answered with their context error
// without paying for extraction. The extraction itself is supervised:
// injected transient batch faults are retried a bounded number of
// times, and a panic — from injection or a real defect in the
// extraction stack — is contained and answered as ErrInternal on
// every job, keeping the collector loop alive. No admitted request is
// ever dropped on the floor.
func (b *Batcher) runBatch(batch []*job) {
	// Every admitted job's queue delay is overload signal — expired
	// jobs most of all — so the controller observes before filtering.
	if b.cfg.Brownout != nil {
		now := time.Now()
		for _, j := range batch {
			b.cfg.Brownout.Observe(now.Sub(j.enq))
		}
	}
	live := batch[:0]
	for _, j := range batch {
		if err := j.ctx.Err(); err != nil {
			j.done <- jobResult{err: err}
			continue
		}
		live = append(live, j)
	}
	if len(live) == 0 {
		return
	}
	if b.onBatch != nil {
		b.onBatch(len(live))
	}
	force := stylometry.DegradeNone
	if b.cfg.Brownout != nil {
		force = b.cfg.Brownout.Level()
	}
	sources := make([]string, len(live))
	ctxs := make([]context.Context, len(live))
	for i, j := range live {
		sources[i] = j.src
		ctxs[i] = j.ctx
	}
	feats, levels, errs, batchErr := b.safeExtract(ctxs, sources, force)
	if batchErr != nil {
		b.logf("serve: batch of %d failed, answering every job with 503: %v (requests: %s)",
			len(live), batchErr, jobIDs(live))
		for _, j := range live {
			j.done <- jobResult{err: fmt.Errorf("%w: %v", ErrInternal, batchErr)}
		}
		return
	}
	for i, j := range live {
		j.done <- jobResult{f: feats[i], level: levels[i], err: errs[i]}
	}
}

// safeExtract runs the batch extraction under retry-and-containment
// supervision. A non-nil batchErr means the whole batch failed.
func (b *Batcher) safeExtract(ctxs []context.Context, sources []string,
	force stylometry.DegradeLevel) (feats []stylometry.Features, levels []stylometry.DegradeLevel, errs []error, batchErr error) {
	batchErr = fault.Retry(batchRetries, 0, func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				if pv, ok := r.(fault.PanicValue); ok {
					// Injected panics are transient: retry.
					err = &fault.InjectedError{Point: pv.Point}
					return
				}
				err = fmt.Errorf("extraction panicked: %v", r)
			}
		}()
		if err := fault.Hit(PointBatch); err != nil {
			return err
		}
		feats, levels, errs = b.cfg.extractCtxFn(ctxs, sources, force)
		return nil
	})
	return feats, levels, errs, batchErr
}

// jobIDs renders a batch's request IDs for log lines.
func jobIDs(jobs []*job) string {
	ids := make([]byte, 0, 16*len(jobs))
	for i, j := range jobs {
		if i > 0 {
			ids = append(ids, ' ')
		}
		if j.id == "" {
			ids = append(ids, '-')
			continue
		}
		ids = append(ids, j.id...)
	}
	return string(ids)
}
