package stylometry

import (
	"strings"

	"gptattr/internal/cpptok"
)

// layoutFeatures derives formatting features from the raw source text:
// whitespace densities, indentation style, brace placement, comment
// style, and operator spacing.
func layoutFeatures(f Features, src string, toks []cpptok.Token, length float64) {
	var tabs, spaces, emptyLines, wsChars int
	lines := strings.Split(src, "\n")
	tabLeadLines, spaceLeadLines := 0, 0
	indentWidths := make(map[int]int)

	for _, ln := range lines {
		if strings.TrimSpace(ln) == "" {
			emptyLines++
			continue
		}
		switch {
		case strings.HasPrefix(ln, "\t"):
			tabLeadLines++
		case strings.HasPrefix(ln, " "):
			spaceLeadLines++
			w := 0
			for w < len(ln) && ln[w] == ' ' {
				w++
			}
			indentWidths[w]++
		}
	}
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case '\t':
			tabs++
			wsChars++
		case ' ':
			spaces++
			wsChars++
		case '\n', '\r':
			wsChars++
		}
	}

	f["LnTabDensity"] = lnDensity(tabs, length)
	f["LnSpaceDensity"] = lnDensity(spaces, length)
	f["LnEmptyLineDensity"] = lnDensity(emptyLines, length)
	nonWs := len(src) - wsChars
	if nonWs > 0 {
		f["WhitespaceRatio"] = float64(wsChars) / float64(nonWs)
	}
	if tabLeadLines > spaceLeadLines {
		f["TabsLeadLines"] = 1
	}

	// Dominant indentation unit: the smallest leading-space width that
	// occurs often (>= 20% of indented lines); buckets 2/4/8.
	total := 0
	for _, c := range indentWidths {
		total += c
	}
	if total > 0 {
		for _, unit := range []int{2, 3, 4, 8} {
			if float64(indentWidths[unit]) >= 0.2*float64(total) {
				f["IndentUnit"] = float64(unit)
				break
			}
		}
	}

	// Brace placement: newline before '{' (Allman) vs same-line (K&R).
	sameLine, ownLine := 0, 0
	for _, ln := range lines {
		t := strings.TrimSpace(ln)
		if t == "{" {
			ownLine++
		} else if strings.HasSuffix(t, "{") && len(t) > 1 {
			sameLine++
		}
	}
	if ownLine > sameLine {
		f["NewlineBeforeOpenBrace"] = 1
	}
	f["BraceOwnLineRatio"] = ratio(ownLine, ownLine+sameLine)

	// Comment style: line vs block.
	lineC, blockC := 0, 0
	for _, t := range toks {
		switch t.Kind {
		case cpptok.KindLineComment:
			lineC++
		case cpptok.KindBlockComment:
			blockC++
		}
	}
	f["LineCommentRatio"] = ratio(lineC, lineC+blockC)

	// Operator spacing: fraction of '=' assignments written with
	// surrounding spaces, and of commas followed by a space.
	f["SpacedAssignRatio"] = spacedRatio(src, "=")
	f["SpaceAfterCommaRatio"] = spaceAfterCommaRatio(src)
}

// spacedRatio estimates how often the single-character operator op
// appears with spaces on both sides (ignores compound operators by
// requiring non-operator neighbours).
func spacedRatio(src, op string) float64 {
	spaced, total := 0, 0
	for i := 1; i < len(src)-1; i++ {
		if string(src[i]) != op {
			continue
		}
		prev, next := src[i-1], src[i+1]
		if isOpChar(prev) || isOpChar(next) {
			continue // part of ==, <=, +=, etc.
		}
		total++
		if prev == ' ' && next == ' ' {
			spaced++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(spaced) / float64(total)
}

func spaceAfterCommaRatio(src string) float64 {
	spaced, total := 0, 0
	for i := 0; i < len(src)-1; i++ {
		if src[i] != ',' {
			continue
		}
		total++
		if src[i+1] == ' ' {
			spaced++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(spaced) / float64(total)
}

func isOpChar(c byte) bool {
	switch c {
	case '=', '<', '>', '!', '+', '-', '*', '/', '%', '&', '|', '^':
		return true
	}
	return false
}
