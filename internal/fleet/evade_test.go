package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gptattr/internal/arena"
	"gptattr/internal/fault"
	"gptattr/internal/serve"
	"gptattr/internal/serve/metrics"
)

// newEvadeFleet stands up n evade-enabled replicas behind a router and
// the router's own HTTP face. Returns the router server URL, the
// Router, and the replicas by name.
func newEvadeFleet(t *testing.T, n int) (string, *Router, map[string]*e2eReplica) {
	t.Helper()
	client := &http.Client{}
	reps := make(map[string]*e2eReplica, n)
	handles := make([]*Replica, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("e%d", i+1)
		rep := startEvadeReplica(t, name)
		reps[name] = rep
		handles[i] = NewReplica(name, rep.url(), client)
	}
	met := metrics.NewRegistry()
	rt, err := New(Config{
		Replicas:      handles,
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  5 * time.Second,
		Metrics:       met,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Close)
	srv, err := serve.New(serve.Config{Backend: rt, Metrics: met, Timeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL, rt, reps
}

func evadePost(t *testing.T, url string, req serve.EvadeRequest) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/evade", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func evadeStatus(t *testing.T, url, id string, wait bool) (*http.Response, []byte) {
	t.Helper()
	u := url + "/v1/evade/status?id=" + id
	if wait {
		u += "&wait=true"
	}
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestFleetEvadeEndToEnd drives a real evasion search through the
// router: the submit lands on the ring owner, the namespaced job ID
// routes the poll back to it, and the finished result comes through
// unchanged.
func TestFleetEvadeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models and runs a replica fleet")
	}
	routerURL, _, reps := newEvadeFleet(t, 2)

	src := sampleSource(t, 0)
	author := fixHuman.Samples[0].Author
	resp, body := evadePost(t, routerURL, serve.EvadeRequest{
		Source: src, TrueAuthor: author, Budget: 10, Seed: 5,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit through router: %d %s", resp.StatusCode, body)
	}
	var jr serve.EvadeJobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	owner, _, ok := strings.Cut(jr.JobID, "/")
	if !ok {
		t.Fatalf("job ID %q not replica-namespaced", jr.JobID)
	}
	if _, known := reps[owner]; !known {
		t.Fatalf("job ID %q names unknown replica", jr.JobID)
	}

	resp, body = evadeStatus(t, routerURL, jr.JobID, true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("poll through router: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.State != "done" || jr.Result == nil {
		t.Fatalf("finished fleet job: %+v", jr)
	}
	if jr.Result.Evaluations == 0 || jr.Result.Evaluations > 10 {
		t.Errorf("budget not respected through the fleet: %d evaluations", jr.Result.Evaluations)
	}
	t.Logf("fleet evasion on %s: success=%v evals=%d trace=%v",
		owner, jr.Result.Success, jr.Result.Evaluations, jr.Result.Trace)

	// ID hygiene through the router.
	if resp, _ := evadeStatus(t, routerURL, "not-namespaced", false); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed id: %d, want 400", resp.StatusCode)
	}
	if resp, _ := evadeStatus(t, routerURL, "zzz/e1", false); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown replica id: %d, want 404", resp.StatusCode)
	}
	if resp, _ := evadeStatus(t, routerURL, owner+"/e999", false); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job on owner: %d, want 404", resp.StatusCode)
	}
}

// TestFleetEvadeMidJobKill is the failure-mode contract: killing the
// replica that owns a running search makes polls for that job answer
// 503 (the job is lost with its shared-nothing owner — never silently
// re-run elsewhere), while new submits route to the survivor and
// complete.
func TestFleetEvadeMidJobKill(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models and runs a replica fleet")
	}
	defer fault.Disable()
	routerURL, rt, reps := newEvadeFleet(t, 2)

	// Slow every oracle evaluation so the search is still running when
	// the kill lands.
	fault.Enable(7)
	fault.Set(arena.PointOracle, fault.Policy{Kind: fault.KindLatency, Latency: 300 * time.Millisecond, Every: 1})

	src := sampleSource(t, 0)
	author := fixHuman.Samples[0].Author
	resp, body := evadePost(t, routerURL, serve.EvadeRequest{Source: src, TrueAuthor: author, Budget: 50})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var jr serve.EvadeJobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	owner, _, _ := strings.Cut(jr.JobID, "/")
	t.Logf("job %s owned by %s; killing it mid-search", jr.JobID, owner)
	reps[owner].kill()

	resp, body = evadeStatus(t, routerURL, jr.JobID, false)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("poll for a killed owner's job: %d, want 503 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "lost") {
		t.Errorf("503 body does not say the job is lost: %s", body)
	}

	// The fleet keeps serving evasions: once the probe loop drops the
	// dead owner, submits land on the survivor. Un-arm the latency
	// fault so the surviving search finishes promptly.
	fault.Disable()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, body = evadePost(t, routerURL, serve.EvadeRequest{
			Source: src, TrueAuthor: author, Budget: 3, Wait: true,
		})
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never recovered evade service: %d %s", resp.StatusCode, body)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	survivorJobOwner, _, _ := strings.Cut(jr.JobID, "/")
	if survivorJobOwner == owner {
		t.Fatalf("post-kill job landed on the dead replica %s", owner)
	}
	if jr.State != "done" {
		t.Fatalf("post-kill job: %+v", jr)
	}
	if alive := len(rt.ring.Alive()); alive != 1 {
		t.Errorf("alive replicas after kill: %d, want 1", alive)
	}
}
