package arena

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"gptattr/internal/attrib"
	"gptattr/internal/challenge"
	"gptattr/internal/codegen"
	"gptattr/internal/corpus"
	"gptattr/internal/ir"
	"gptattr/internal/style"
)

// The search tests attack one real trained oracle; training it takes
// seconds, so it is shared (same fixture shape as internal/serve's).
var (
	fixOnce   sync.Once
	fixErr    error
	fixOracle *attrib.Oracle
	fixHuman  *corpus.Corpus
	fixProfs  []style.Profile
)

func buildFixture() {
	human, profs, err := corpus.GenerateYear(corpus.YearConfig{Year: 2017, NumAuthors: 10, Seed: 3})
	if err != nil {
		fixErr = err
		return
	}
	oracle, err := attrib.TrainOracle(human, attrib.Config{Trees: 24, TopFeatures: 300, Seed: 4})
	if err != nil {
		fixErr = err
		return
	}
	fixOracle, fixHuman, fixProfs = oracle, human, profs
}

// testOracle returns the shared trained oracle.
func testOracle(t testing.TB) *attrib.Oracle {
	t.Helper()
	fixOnce.Do(buildFixture)
	if fixErr != nil {
		t.Fatalf("training fixture oracle: %v", fixErr)
	}
	return fixOracle
}

// victimCase is one attackable file: the oracle attributes it to its
// true author, and verification inputs are available.
type victimCase struct {
	id     string
	source string
	author string
	inputs []string
}

// victimCases renders the victim author's fresh-challenge files and
// keeps the correctly-attributed ones.
func victimCases(t testing.TB, victim string, n int) []victimCase {
	t.Helper()
	oracle := testOracle(t)
	var idx int
	for i, p := range fixProfs {
		if p.Name == victim {
			idx = i
		}
	}
	prof := fixProfs[idx]
	var out []victimCase
	for i, ch := range challenge.ByYear(2018) {
		if len(out) >= n {
			break
		}
		src := codegen.Render(ch.Prog, prof, int64(i))
		run, err := ir.Synthesize(ch.Prog, 3, rand.New(rand.NewSource(int64(i)+77)))
		if err != nil {
			t.Fatal(err)
		}
		if _, pred, err := oracle.Proba(src); err != nil || pred != victim {
			continue
		}
		out = append(out, victimCase{id: ch.ID, source: src, author: victim, inputs: []string{run.Input}})
	}
	return out
}

// constOracle always answers the same label with total confidence.
type constOracle struct{ label string }

func (o constOracle) Classify(ctx context.Context, src string) (Prediction, error) {
	if err := ctx.Err(); err != nil {
		return Prediction{}, err
	}
	return Prediction{Label: o.label, Proba: map[string]float64{o.label: 1}}, nil
}

// hashOracle is a cheap deterministic stand-in: it attributes by a
// simple content hash over a fixed label set, so restyled variants
// flip labels without the cost of a real model.
type hashOracle struct{ labels []string }

func (o hashOracle) Classify(ctx context.Context, src string) (Prediction, error) {
	if err := ctx.Err(); err != nil {
		return Prediction{}, err
	}
	var h uint64 = 14695981039346656037
	for i := 0; i < len(src); i++ {
		h = (h ^ uint64(src[i])) * 1099511628211
	}
	proba := make(map[string]float64, len(o.labels))
	for i, l := range o.labels {
		proba[l] = float64((h>>uint(8*i))&0xff) + 1
	}
	var sum float64
	for _, v := range proba {
		sum += v
	}
	best := o.labels[0]
	for _, l := range o.labels {
		proba[l] /= sum
		if proba[l] > proba[best] {
			best = l
		}
	}
	return Prediction{Label: best, Proba: proba}, nil
}

const tinySrc = "#include <iostream>\nusing namespace std;\nint main(){int x;cin>>x;cout<<x<<endl;return 0;}"
