package attrib

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestOracleSaveLoadRoundTrip(t *testing.T) {
	fx := fixture(t)
	var buf bytes.Buffer
	if err := fx.oracle.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadOracle(&buf)
	if err != nil {
		t.Fatalf("LoadOracle: %v", err)
	}
	if strings.Join(loaded.Labels(), ",") != strings.Join(fx.oracle.Labels(), ",") {
		t.Error("labels changed across round trip")
	}
	// Predictions must be identical.
	for _, s := range fx.human.Samples[:24] {
		a, err := fx.oracle.Predict(s.Source)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Predict(s.Source)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("prediction diverged after round trip: %q vs %q", a, b)
		}
	}
}

func TestClassifierSaveLoadRoundTrip(t *testing.T) {
	fx := fixture(t)
	clf, err := TrainBinary(fx.human, fx.transformed, fx.cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadClassifier(&buf)
	if err != nil {
		t.Fatalf("LoadClassifier: %v", err)
	}
	for _, s := range append(fx.human.Samples[:10], fx.transformed.Samples[:10]...) {
		_, ca, err := clf.IsChatGPT(s.Source)
		if err != nil {
			t.Fatal(err)
		}
		_, cb, err := loaded.IsChatGPT(s.Source)
		if err != nil {
			t.Fatal(err)
		}
		if ca != cb {
			t.Fatalf("confidence diverged: %v vs %v", ca, cb)
		}
	}
}

// TestLoadRejectsVersionMismatch pins the format-version gate: a model
// written by a different (future or corrupted) pipeline version must
// fail to load, never be silently served.
func TestLoadRejectsVersionMismatch(t *testing.T) {
	fx := fixture(t)
	var buf bytes.Buffer
	if err := fx.oracle.Save(&buf); err != nil {
		t.Fatal(err)
	}
	bumped := bytes.Replace(buf.Bytes(),
		[]byte(`{"version":1,`), []byte(`{"version":2,`), 1)
	if bytes.Equal(bumped, buf.Bytes()) {
		t.Fatal("version field not found in saved header")
	}
	if _, err := LoadOracle(bytes.NewReader(bumped)); err == nil {
		t.Error("oracle with future format version accepted")
	} else if !strings.Contains(err.Error(), "version") {
		t.Errorf("want version error, got: %v", err)
	}
	// A header predating versioning decodes as version 0.
	if _, err := LoadOracle(strings.NewReader(`{"kind":"oracle","labels":["a","b"]}`)); err == nil {
		t.Error("unversioned oracle header accepted")
	}
}

// TestLoadRejectsTruncation saves a model and checks that every
// truncation point fails cleanly: an error, never a panic or a model
// that half-loaded. The server loads models from disk state that can
// be mid-write or torn.
func TestLoadRejectsTruncation(t *testing.T) {
	fx := fixture(t)
	clf, err := TrainBinary(fx.human, fx.transformed, fx.cfg)
	if err != nil {
		t.Fatal(err)
	}
	saves := map[string]func(io.Writer) error{
		"oracle": fx.oracle.Save,
		"binary": clf.Save,
	}
	loads := map[string]func(io.Reader) error{
		"oracle": func(r io.Reader) error { _, err := LoadOracle(r); return err },
		"binary": func(r io.Reader) error { _, err := LoadClassifier(r); return err },
	}
	for kind, save := range saves {
		var buf bytes.Buffer
		if err := save(&buf); err != nil {
			t.Fatal(err)
		}
		full := buf.Bytes()
		// Cut inside the header, at the header/forest boundary region,
		// and inside the forest blob.
		for _, cut := range []int{0, 1, 10, len(full) / 4, len(full) / 2, len(full) - 2} {
			if err := loads[kind](bytes.NewReader(full[:cut])); err == nil {
				t.Errorf("%s truncated at %d/%d bytes loaded without error", kind, cut, len(full))
			}
		}
		if err := loads[kind](bytes.NewReader(full)); err != nil {
			t.Errorf("untruncated %s failed to load: %v", kind, err)
		}
	}
}

func TestLoadRejectsWrongKind(t *testing.T) {
	fx := fixture(t)
	var buf bytes.Buffer
	if err := fx.oracle.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadClassifier(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("oracle loaded as classifier")
	}
	if _, err := LoadOracle(strings.NewReader("not json")); err == nil {
		t.Error("garbage loaded as oracle")
	}
	if _, err := LoadOracle(strings.NewReader(`{"kind":"oracle"}`)); err == nil {
		t.Error("headerless oracle accepted")
	}
}
