package ir

import (
	"math/rand"
	"strings"
	"testing"
)

// horseRace is the paper's Figure 3 program in IR form.
func horseRace() *Program {
	return &Program{
		Body: []Stmt{
			ReadDecl{T: TInt, Vars: []ReadVar{{Name: "dist", Lo: 10, Hi: 1000}, {Name: "count", Lo: 1, Hi: 10}}},
			Decl{Name: "best", T: TFloat, Init: FloatLit{0}},
			CountLoop{Var: "i", From: IntLit{0}, To: Var{"count"}, Body: []Stmt{
				ReadDecl{T: TInt, Vars: []ReadVar{{Name: "pos", Lo: 0, Hi: 9}, {Name: "speed", Lo: 1, Hi: 100}}},
				Assign{Name: "pos", Op: "=", X: Bin{Op: "-", L: Var{"dist"}, R: Var{"pos"}}},
				Assign{Name: "best", Op: "=", X: Call{Fn: "max", Args: []Expr{
					Var{"best"},
					Bin{Op: "/", L: Cast{To: TFloat, X: Var{"pos"}}, R: Cast{To: TFloat, X: Var{"speed"}}},
				}}},
			}},
		},
		Out: Output{X: Bin{Op: "/", L: Cast{To: TFloat, X: Var{"dist"}}, R: Var{"best"}}, T: TFloat, Precision: 6},
	}
}

func TestSynthesizeHorseRace(t *testing.T) {
	run, err := Synthesize(horseRace(), 3, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if run.Cases != 3 {
		t.Errorf("Cases = %d, want 3", run.Cases)
	}
	if !strings.HasPrefix(run.Input, "3\n") {
		t.Errorf("input must start with case count, got %q", run.Input[:10])
	}
	lines := strings.Split(strings.TrimSpace(run.Output), "\n")
	if len(lines) != 3 {
		t.Fatalf("output has %d lines, want 3: %q", len(lines), run.Output)
	}
	for i, ln := range lines {
		if !strings.HasPrefix(ln, "Case #") {
			t.Errorf("line %d = %q lacks Case prefix", i, ln)
		}
		if !strings.Contains(ln, ".") {
			t.Errorf("float output line %d = %q has no decimal point", i, ln)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	p := horseRace()
	r1, err := Synthesize(p, 5, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	r2, err := Synthesize(p, 5, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if r1.Input != r2.Input || r1.Output != r2.Output {
		t.Error("Synthesize not deterministic for equal seeds")
	}
	r3, err := Synthesize(p, 5, rand.New(rand.NewSource(43)))
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if r1.Input == r3.Input {
		t.Error("different seeds produced identical input")
	}
}

func TestSynthesizeIntProgram(t *testing.T) {
	// Sum of n values.
	p := &Program{
		Body: []Stmt{
			Read(1, 5, "count"),
			Decl{Name: "sum", T: TInt},
			CountLoop{Var: "i", From: IntLit{0}, To: Var{"count"}, Body: []Stmt{
				Read(2, 2, "val"), // constant 2 makes output checkable
				Assign{Name: "sum", Op: "+=", X: Var{"val"}},
			}},
		},
		Out: Output{X: Var{"sum"}, T: TInt},
	}
	run, err := Synthesize(p, 1, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	// count values of 2 => sum = 2*count; parse count from input line 2.
	inLines := strings.Split(strings.TrimSpace(run.Input), "\n")
	count := strings.TrimSpace(inLines[1])
	want := map[string]string{"1": "2", "2": "4", "3": "6", "4": "8", "5": "10"}[count]
	if run.Output != "Case #1: "+want+"\n" {
		t.Errorf("output = %q, want Case #1: %s (count=%s)", run.Output, want, count)
	}
}

func TestWhileLoopAndIf(t *testing.T) {
	// Collatz step count for fixed n=6: 6→3→10→5→16→8→4→2→1 (8 steps).
	p := &Program{
		Body: []Stmt{
			Read(6, 6, "n"),
			Decl{Name: "steps", T: TInt},
			WhileLoop{Cond: Bin{Op: ">", L: Var{"n"}, R: IntLit{1}}, Body: []Stmt{
				If{
					Cond: Bin{Op: "==", L: Bin{Op: "%", L: Var{"n"}, R: IntLit{2}}, R: IntLit{0}},
					Then: []Stmt{Assign{Name: "n", Op: "/=", X: IntLit{2}}},
					Else: []Stmt{Assign{Name: "n", Op: "=", X: Bin{Op: "+", L: Bin{Op: "*", L: IntLit{3}, R: Var{"n"}}, R: IntLit{1}}}},
				},
				Assign{Name: "steps", Op: "+=", X: IntLit{1}},
			}},
		},
		Out: Output{X: Var{"steps"}, T: TInt},
	}
	run, err := Synthesize(p, 1, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if run.Output != "Case #1: 8\n" {
		t.Errorf("collatz(6) output = %q, want Case #1: 8", run.Output)
	}
}

func TestVectorSort(t *testing.T) {
	// Read 3 fixed values, sort, output median.
	p := &Program{
		Body: []Stmt{
			DeclVec{Name: "vals", T: TInt},
			Read(9, 9, "a"),
			Read(1, 1, "b"),
			Read(5, 5, "c"),
			PushBack{Vec: "vals", X: Var{"a"}},
			PushBack{Vec: "vals", X: Var{"b"}},
			PushBack{Vec: "vals", X: Var{"c"}},
			SortVec{Vec: "vals"},
		},
		Out: Output{X: Index{Arr: "vals", Idx: IntLit{1}}, T: TInt},
	}
	run, err := Synthesize(p, 1, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if run.Output != "Case #1: 5\n" {
		t.Errorf("median output = %q, want Case #1: 5", run.Output)
	}
}

func TestArrayIndexing(t *testing.T) {
	// Histogram of remainders mod 3 for fixed reads.
	p := &Program{
		Body: []Stmt{
			DeclArray{Name: "cnt", T: TInt, Size: IntLit{3}},
			Read(7, 7, "x"), // 7 % 3 == 1
			AssignIndex{Arr: "cnt", Idx: Bin{Op: "%", L: Var{"x"}, R: IntLit{3}}, Op: "+=", X: IntLit{1}},
			AssignIndex{Arr: "cnt", Idx: IntLit{1}, Op: "+=", X: IntLit{10}},
		},
		Out: Output{X: Index{Arr: "cnt", Idx: IntLit{1}}, T: TInt},
	}
	run, err := Synthesize(p, 1, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if run.Output != "Case #1: 11\n" {
		t.Errorf("output = %q, want Case #1: 11", run.Output)
	}
}

func TestSynthesizeErrors(t *testing.T) {
	tests := []struct {
		name string
		p    *Program
	}{
		{
			name: "undefined variable",
			p: &Program{
				Body: []Stmt{Assign{Name: "ghost", Op: "=", X: IntLit{1}}},
				Out:  Output{X: IntLit{0}, T: TInt},
			},
		},
		{
			name: "division by zero",
			p: &Program{
				Body: []Stmt{Decl{Name: "x", T: TInt, Init: Bin{Op: "/", L: IntLit{1}, R: IntLit{0}}}},
				Out:  Output{X: Var{"x"}, T: TInt},
			},
		},
		{
			name: "index out of range",
			p: &Program{
				Body: []Stmt{
					DeclArray{Name: "a", T: TInt, Size: IntLit{2}},
					AssignIndex{Arr: "a", Idx: IntLit{5}, Op: "=", X: IntLit{1}},
				},
				Out: Output{X: IntLit{0}, T: TInt},
			},
		},
		{
			name: "infinite while hits budget",
			p: &Program{
				Body: []Stmt{
					Decl{Name: "x", T: TInt, Init: IntLit{1}},
					WhileLoop{Cond: Bin{Op: ">", L: Var{"x"}, R: IntLit{0}}, Body: []Stmt{
						Assign{Name: "x", Op: "+=", X: IntLit{1}},
					}},
				},
				Out: Output{X: Var{"x"}, T: TInt},
			},
		},
		{
			name: "bad read bounds",
			p: &Program{
				Body: []Stmt{ReadDecl{T: TInt, Vars: []ReadVar{{Name: "x", Lo: 5, Hi: 2}}}},
				Out:  Output{X: Var{"x"}, T: TInt},
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Synthesize(tt.p, 1, rand.New(rand.NewSource(1))); err == nil {
				t.Error("Synthesize succeeded, want error")
			}
		})
	}
	if _, err := Synthesize(horseRace(), 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero cases accepted")
	}
}

func TestProgramVars(t *testing.T) {
	vars := horseRace().Vars()
	want := []string{"dist", "count", "best", "i", "pos", "speed"}
	if len(vars) != len(want) {
		t.Fatalf("Vars = %v, want %v", vars, want)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Errorf("Vars[%d] = %q, want %q", i, vars[i], want[i])
		}
	}
}

func TestFormatCaseLine(t *testing.T) {
	if got := FormatCaseLine(3, 2.5, 0, TFloat, 6); got != "Case #3: 2.500000\n" {
		t.Errorf("float line = %q", got)
	}
	if got := FormatCaseLine(1, 0, 42, TInt, 0); got != "Case #1: 42\n" {
		t.Errorf("int line = %q", got)
	}
	if got := FormatCaseLine(2, 1.0/3.0, 0, TFloat, 0); got != "Case #2: 0.333333\n" {
		t.Errorf("default precision line = %q", got)
	}
}

func TestReadShorthand(t *testing.T) {
	rd := Read(1, 9, "a", "b")
	if rd.T != TInt || len(rd.Vars) != 2 || rd.Vars[1].Name != "b" || rd.Vars[0].Hi != 9 {
		t.Errorf("Read shorthand wrong: %+v", rd)
	}
	rf := ReadF(0, 5, "x")
	if rf.T != TFloat {
		t.Errorf("ReadF type = %v, want TFloat", rf.T)
	}
}
