package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"gptattr/internal/serve/metrics"
)

// Core is the transport-agnostic request plumbing shared by every
// HTTP face of the attribution service — the single-process replica
// server and the fleet router (internal/fleet): request-ID minting
// and propagation, per-request deadlines, bounded body decoding,
// metrics, bounded in-flight admission, and the JSON error envelope
// with its status mapping. Because both binaries go through one Core,
// they agree on admission semantics (429 + Retry-After, 504 on
// deadline) and traceability (X-Request-Id) by construction.
type Core struct {
	met          *metrics.Registry
	timeout      time.Duration
	maxBodyBytes int64
	maxInflight  int64 // 0 = unbounded (admission then lives elsewhere, e.g. the batcher queue)
	inflight     atomic.Int64
}

// NewCore builds the shared plumbing. Zero values select defaults:
// a private metrics registry, 10s timeout, 1MiB bodies, unbounded
// in-flight admission.
func NewCore(met *metrics.Registry, timeout time.Duration, maxBodyBytes int64, maxInflight int) *Core {
	if met == nil {
		met = metrics.NewRegistry()
	}
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	if maxBodyBytes <= 0 {
		maxBodyBytes = 1 << 20
	}
	return &Core{met: met, timeout: timeout, maxBodyBytes: maxBodyBytes, maxInflight: int64(maxInflight)}
}

// Metrics returns the registry the core reports into.
func (c *Core) Metrics() *metrics.Registry { return c.met }

// Timeout returns the per-request deadline.
func (c *Core) Timeout() time.Duration { return c.timeout }

// Begin stamps the request ID on the response and returns it. An
// inbound X-Request-Id is propagated unchanged — that is what lets
// one ID trace a request across the router→replica hop — and a
// request arriving without one gets a freshly minted ID.
func (c *Core) Begin(w http.ResponseWriter, r *http.Request) string {
	id := r.Header.Get(RequestIDHeader)
	if id == "" {
		id = newRequestID()
	}
	w.Header().Set(RequestIDHeader, id)
	return id
}

// Admit reserves one in-flight slot when MaxInflight is bounded. On
// overflow it answers 429 itself (counted in rejected_total) and
// returns false; the caller must not Release. A true return must be
// paired with exactly one Release.
func (c *Core) Admit(w http.ResponseWriter, reqID string) bool {
	if c.maxInflight <= 0 {
		return true
	}
	if c.inflight.Add(1) > c.maxInflight {
		c.inflight.Add(-1)
		c.met.Counter("rejected_total").Inc()
		c.WriteError(w, http.StatusTooManyRequests, "server saturated, retry later", reqID)
		return false
	}
	return true
}

// Release returns an Admit slot.
func (c *Core) Release() {
	if c.maxInflight > 0 {
		c.inflight.Add(-1)
	}
}

// RequestContext derives the per-request context: the configured
// deadline plus the request ID for downstream log lines.
func (c *Core) RequestContext(parent context.Context, reqID string) (context.Context, context.CancelFunc) {
	return context.WithTimeout(WithRequestID(parent, reqID), c.timeout)
}

// RequestContextFor is RequestContext honouring an inbound
// X-Request-Budget-Ms header: the deadline is the smaller of the
// configured timeout and the client's remaining budget, so a shrunken
// budget forwarded by the router actually shrinks the replica's
// extraction budget (and with it, what the degrade ladder can afford).
// Malformed or absent budgets fall back to the configured timeout.
func (c *Core) RequestContextFor(r *http.Request, reqID string) (context.Context, context.CancelFunc) {
	timeout := c.timeout
	if ms, err := strconv.Atoi(r.Header.Get(BudgetHeader)); err == nil && ms > 0 {
		if d := time.Duration(ms) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	return context.WithTimeout(WithRequestID(r.Context(), reqID), timeout)
}

// WriteJSON renders one JSON response.
func (c *Core) WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// WriteError answers one failed request. The request ID rides along
// in the body for the statuses a saturated or degraded server emits,
// so incidents stay traceable from client logs alone.
func (c *Core) WriteError(w http.ResponseWriter, status int, msg, reqID string) {
	switch status {
	case http.StatusTooManyRequests:
		// Closed-loop clients should back off; micro-batch turnaround
		// is milliseconds, so one second is conservative.
		w.Header().Set("Retry-After", "1")
	case http.StatusServiceUnavailable:
		// 503s are transient by contract here — a draining replica, a
		// lost forwarded job, a contained batch failure — so tell
		// clients when to come back instead of letting them hammer.
		w.Header().Set("Retry-After", "1")
	}
	c.WriteJSON(w, status, ErrorResponse{Error: msg, RequestID: reqID})
}

// DecodeSource parses the request body for the inference endpoints,
// answering the error itself (and returning ok=false) when the method,
// encoding, size, or content is unacceptable.
func (c *Core) DecodeSource(w http.ResponseWriter, r *http.Request, reqID string) (string, bool) {
	if r.Method != http.MethodPost {
		c.WriteError(w, http.StatusMethodNotAllowed, "POST required", reqID)
		return "", false
	}
	var req AttributeRequest
	body := http.MaxBytesReader(w, r.Body, c.maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		c.WriteError(w, status, "bad request body: "+err.Error(), reqID)
		return "", false
	}
	if req.Source == "" {
		c.WriteError(w, http.StatusBadRequest, "empty source", reqID)
		return "", false
	}
	return req.Source, true
}

// StatusError carries an explicit HTTP status through a Backend. The
// fleet router uses it to pass a replica's verdict (its 422, 429, …)
// through to the client unchanged instead of re-deriving a status.
type StatusError struct {
	Code int
	Msg  string
}

// Error renders the carried message.
func (e *StatusError) Error() string { return e.Msg }

// FailBackend translates a Backend error into the HTTP answer,
// bumping the same degradation counters for every transport:
// rejected_total on 429, deadline_exceeded_total on 504,
// batch_failures_total on internal extraction failures.
func (c *Core) FailBackend(w http.ResponseWriter, err error, reqID string) {
	var status int
	var msg string
	var se *StatusError
	switch {
	case errors.As(err, &se):
		status, msg = se.Code, se.Msg
	case errors.Is(err, ErrNoOracle), errors.Is(err, ErrNoDetector):
		status, msg = http.StatusServiceUnavailable, err.Error()
	case errors.Is(err, ErrSaturated):
		status, msg = http.StatusTooManyRequests, "server saturated, retry later"
	case errors.Is(err, ErrClosed):
		status, msg = http.StatusServiceUnavailable, "server shutting down"
	case errors.Is(err, ErrInternal):
		status, msg = http.StatusServiceUnavailable, "extraction failed, retry later: "+err.Error()
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		status, msg = http.StatusGatewayTimeout, "request deadline exceeded"
	default:
		// The source itself did not extract (e.g. not lexable C++).
		status, msg = http.StatusUnprocessableEntity, "source rejected: "+err.Error()
	}
	switch status {
	case http.StatusTooManyRequests:
		c.met.Counter("rejected_total").Inc()
	case http.StatusGatewayTimeout:
		c.met.Counter("deadline_exceeded_total").Inc()
	}
	if errors.Is(err, ErrInternal) {
		c.met.Counter("batch_failures_total").Inc()
	}
	c.WriteError(w, status, msg, reqID)
}
