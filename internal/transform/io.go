package transform

import (
	"strconv"
	"strings"

	"gptattr/internal/cppast"
)

// IOTarget selects the I/O idiom ConvertIO rewrites toward.
type IOTarget int

// Targets.
const (
	ToStreams IOTarget = iota + 1 // cin/cout
	ToStdio                       // scanf/printf
)

// ConvertIO rewrites every input and output statement in the unit to
// the target idiom. Statements it cannot model (unknown chain shapes)
// are left untouched, keeping the transformation safe.
func ConvertIO(tu *cppast.TranslationUnit, to IOTarget) {
	st := CollectSymbols(tu)
	var rewriteBlock func(b *cppast.Block)
	var rewriteStmt func(s cppast.Node) cppast.Node
	rewriteStmt = func(s cppast.Node) cppast.Node {
		switch n := s.(type) {
		case *cppast.Block:
			rewriteBlock(n)
		case *cppast.ExprStmt:
			if repl := convertIOExpr(n.X, st, to); repl != nil {
				return &cppast.ExprStmt{X: repl}
			}
		case *cppast.If:
			n.Then = rewriteStmt(n.Then)
			if n.Else != nil {
				n.Else = rewriteStmt(n.Else)
			}
		case *cppast.For:
			n.Body = rewriteStmt(n.Body)
		case *cppast.While:
			n.Body = rewriteStmt(n.Body)
		case *cppast.DoWhile:
			n.Body = rewriteStmt(n.Body)
		case *cppast.Switch:
			for _, c := range n.Cases {
				for i, cs := range c.Stmts {
					c.Stmts[i] = rewriteStmt(cs)
				}
			}
		}
		return s
	}
	rewriteBlock = func(b *cppast.Block) {
		for i, s := range b.Stmts {
			b.Stmts[i] = rewriteStmt(s)
		}
	}
	for _, d := range tu.Decls {
		if f, ok := d.(*cppast.FuncDecl); ok && f.Body != nil {
			rewriteBlock(f.Body)
		}
	}
}

// convertIOExpr returns a replacement expression for an I/O statement
// expression, or nil when not an I/O statement (or already in the
// target idiom / not convertible).
func convertIOExpr(e cppast.Node, st *SymTable, to IOTarget) cppast.Node {
	switch to {
	case ToStdio:
		if targets, ok := matchCinChain(e); ok {
			return buildScanf(targets, st)
		}
		if segs, ok := matchCoutChain(e); ok {
			return buildPrintf(segs, st)
		}
	case ToStreams:
		if call, ok := callNamed(e, "scanf"); ok {
			return scanfToCin(call)
		}
		if call, ok := callNamed(e, "printf"); ok {
			return printfToCout(call, st)
		}
	}
	return nil
}

func callNamed(e cppast.Node, name string) (*cppast.CallExpr, bool) {
	c, ok := e.(*cppast.CallExpr)
	if !ok {
		return nil, false
	}
	id, ok := c.Fun.(*cppast.Ident)
	if !ok || strings.TrimPrefix(id.Name, "std::") != name {
		return nil, false
	}
	return c, true
}

func isStreamIdent(e cppast.Node, name string) bool {
	id, ok := e.(*cppast.Ident)
	return ok && strings.TrimPrefix(id.Name, "std::") == name
}

// matchCinChain recognizes cin >> a >> b ... and returns the targets.
func matchCinChain(e cppast.Node) ([]cppast.Node, bool) {
	var targets []cppast.Node
	cur := e
	for {
		be, ok := cur.(*cppast.BinaryExpr)
		if !ok || be.Op != ">>" {
			break
		}
		targets = append([]cppast.Node{be.R}, targets...)
		cur = be.L
	}
	if !isStreamIdent(cur, "cin") || len(targets) == 0 {
		return nil, false
	}
	return targets, true
}

// coutSeg is one element of an output chain.
type coutSeg struct {
	expr      cppast.Node // nil for manipulators handled via fields
	isEndl    bool
	isFixed   bool
	precision int // -1 unless setprecision
}

// matchCoutChain recognizes cout << ... and returns the segments in
// output order.
func matchCoutChain(e cppast.Node) ([]coutSeg, bool) {
	var segs []coutSeg
	cur := e
	for {
		be, ok := cur.(*cppast.BinaryExpr)
		if !ok || be.Op != "<<" {
			break
		}
		segs = append([]coutSeg{classifySeg(be.R)}, segs...)
		cur = be.L
	}
	if !isStreamIdent(cur, "cout") || len(segs) == 0 {
		return nil, false
	}
	return segs, true
}

func classifySeg(e cppast.Node) coutSeg {
	if isStreamIdent(e, "endl") {
		return coutSeg{isEndl: true, precision: -1}
	}
	if isStreamIdent(e, "fixed") {
		return coutSeg{isFixed: true, precision: -1}
	}
	if call, ok := callNamed(e, "setprecision"); ok && len(call.Args) == 1 {
		if lit, ok := call.Args[0].(*cppast.Lit); ok && lit.LitKind == "int" {
			p, err := strconv.Atoi(lit.Text)
			if err == nil {
				return coutSeg{precision: p}
			}
		}
		return coutSeg{precision: 6}
	}
	return coutSeg{expr: e, precision: -1}
}

func ident(name string) *cppast.Ident { return &cppast.Ident{Name: name} }

func strLit(s string) *cppast.Lit {
	return &cppast.Lit{LitKind: "string", Text: "\"" + s + "\""}
}

// buildScanf turns read targets into scanf("...", &a, &b).
func buildScanf(targets []cppast.Node, st *SymTable) cppast.Node {
	verbs := make([]string, 0, len(targets))
	args := make([]cppast.Node, 0, len(targets)+1)
	for _, t := range targets {
		var kind SymKind
		switch n := t.(type) {
		case *cppast.Ident:
			kind = st.Kind(n.Name)
		case *cppast.IndexExpr:
			kind = st.ExprKind(n)
		default:
			return nil // unconvertible target
		}
		switch kind {
		case SymFloat:
			verbs = append(verbs, "%lf")
		case SymString:
			return nil // scanf into std::string is not valid; keep cin
		case SymChar:
			verbs = append(verbs, " %c")
		default:
			verbs = append(verbs, "%d")
		}
		args = append(args, &cppast.UnaryExpr{Op: "&", X: t})
	}
	call := &cppast.CallExpr{Fun: ident("scanf")}
	call.Args = append([]cppast.Node{strLit(strings.Join(verbs, " "))}, args...)
	return call
}

// buildPrintf turns cout segments into printf(fmt, args...). Returns
// nil when a segment cannot be mapped.
func buildPrintf(segs []coutSeg, st *SymTable) cppast.Node {
	var format strings.Builder
	var args []cppast.Node
	precision := 6
	for _, s := range segs {
		switch {
		case s.isEndl:
			format.WriteString("\\n")
		case s.isFixed:
			// formatting state only
		case s.precision >= 0:
			precision = s.precision
		case s.expr != nil:
			if lit, ok := s.expr.(*cppast.Lit); ok && lit.LitKind == "string" {
				body := lit.Text[1 : len(lit.Text)-1]
				format.WriteString(strings.ReplaceAll(body, "%", "%%"))
				continue
			}
			switch st.ExprKind(s.expr) {
			case SymFloat:
				format.WriteString("%." + strconv.Itoa(precision) + "lf")
			case SymString:
				return nil // printf("%s", std::string) is invalid; keep cout
			case SymChar:
				format.WriteString("%c")
			default:
				format.WriteString("%d")
			}
			args = append(args, s.expr)
		}
	}
	call := &cppast.CallExpr{Fun: ident("printf")}
	call.Args = append([]cppast.Node{strLit(format.String())}, args...)
	return call
}

// scanfToCin converts scanf("fmt", &a, &b) into cin >> a >> b.
func scanfToCin(call *cppast.CallExpr) cppast.Node {
	if len(call.Args) < 2 {
		return nil
	}
	var chain cppast.Node = ident("cin")
	for _, a := range call.Args[1:] {
		target := a
		if u, ok := a.(*cppast.UnaryExpr); ok && u.Op == "&" {
			target = u.X
		}
		chain = &cppast.BinaryExpr{Op: ">>", L: chain, R: target}
	}
	return chain
}

// printfToCout converts printf("fmt", args...) into a cout chain,
// mapping %.Nf to fixed << setprecision(N).
func printfToCout(call *cppast.CallExpr, st *SymTable) cppast.Node {
	if len(call.Args) == 0 {
		return nil
	}
	fmtLit, ok := call.Args[0].(*cppast.Lit)
	if !ok || fmtLit.LitKind != "string" {
		return nil
	}
	format := fmtLit.Text[1 : len(fmtLit.Text)-1]
	args := call.Args[1:]
	argIdx := 0

	var chain cppast.Node = ident("cout")
	emit := func(seg cppast.Node) {
		chain = &cppast.BinaryExpr{Op: "<<", L: chain, R: seg}
	}
	var text strings.Builder
	flushText := func() {
		if text.Len() > 0 {
			emit(strLit(text.String()))
			text.Reset()
		}
	}
	fixedEmitted := false
	i := 0
	for i < len(format) {
		c := format[i]
		if c != '%' {
			// Escapes stay escaped inside the new string literal.
			text.WriteByte(c)
			i++
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			text.WriteByte('%')
			i++
			continue
		}
		// parse %[flags][width][.prec][len]verb
		prec := -1
		for i < len(format) && strings.IndexByte("-+ 0#", format[i]) >= 0 {
			i++
		}
		for i < len(format) && format[i] >= '0' && format[i] <= '9' {
			i++
		}
		if i < len(format) && format[i] == '.' {
			i++
			p := 0
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				p = p*10 + int(format[i]-'0')
				i++
			}
			prec = p
		}
		for i < len(format) && strings.IndexByte("hlLqjzt", format[i]) >= 0 {
			i++
		}
		if i >= len(format) || argIdx >= len(args) {
			return nil
		}
		verb := format[i]
		i++
		arg := args[argIdx]
		argIdx++
		switch verb {
		case 'd', 'i', 'u', 'c', 's', 'x':
			flushText()
			emit(arg)
		case 'f', 'F', 'e', 'g':
			flushText()
			if prec < 0 {
				prec = 6
			}
			if !fixedEmitted {
				emit(ident("fixed"))
				fixedEmitted = true
			}
			sp := &cppast.CallExpr{Fun: ident("setprecision")}
			sp.Args = []cppast.Node{&cppast.Lit{LitKind: "int", Text: strconv.Itoa(prec)}}
			emit(sp)
			emit(arg)
		default:
			return nil
		}
	}
	flushText()
	return chain
}
