package transform

import (
	"fmt"
	"sync/atomic"
	"time"

	"gptattr/internal/cppast"
	"gptattr/internal/cppcheck"
	"gptattr/internal/cppinterp"
	"gptattr/internal/fault"
)

// PointVerifyInterp is the fault-injection point on every interpreter
// run inside Verify (see internal/fault). Injected transient faults
// are retried with backoff; real interpreter failures — the actual
// verification verdicts — are never retried.
const PointVerifyInterp = "transform.verify.interp"

// verifyRetries and verifyBackoff bound the retry supervisor around
// transient verification faults.
const (
	verifyRetries = 3
	verifyBackoff = time.Millisecond
)

// VerifyMaxSteps is the interpreter step budget per verification run.
// A transformation that introduces non-termination fails verification
// with a step-budget error instead of stalling the pipeline.
const VerifyMaxSteps = cppinterp.DefaultMaxSteps

// StaticResult is the verdict of the static equivalence pre-screen.
type StaticResult int

const (
	// StaticUnknown: the screen cannot decide; run the interpreter.
	StaticUnknown StaticResult = iota
	// StaticEquivalent: canonical fingerprints match; the programs are
	// behaviourally identical and interpreter runs can be skipped.
	StaticEquivalent
	// StaticSuspect: the transformed program shows more gated
	// uninitialized-read findings than the original. The gating is a
	// may-analysis whose exclusions (params, multi-declarator and
	// escaped variables) are not invariant under behaviour-preserving
	// rewrites — extracting a local into a parameter or splitting a
	// multi-declarator can surface a pre-existing finding on the
	// rewritten side only — so this is a suspicion, not a verdict:
	// Verify always consults the interpreter, which is the system's
	// definition of behaviour, and only fails if it disagrees.
	StaticSuspect
)

// VerifyStats counts verification work across goroutines (NCTParallel
// runs Verify concurrently, so all fields are atomics).
type VerifyStats struct {
	StaticChecks   atomic.Int64 // StaticVerify invocations
	StaticHits     atomic.Int64 // fingerprint matches (interpreter skipped)
	StaticSuspects atomic.Int64 // uninit-read suspicions (interpreter consulted)
	InterpRuns     atomic.Int64 // individual cppinterp.Run invocations
}

// Snapshot returns a plain-value copy for reporting.
func (s *VerifyStats) Snapshot() (checks, hits, suspects, interpRuns int64) {
	return s.StaticChecks.Load(), s.StaticHits.Load(), s.StaticSuspects.Load(), s.InterpRuns.Load()
}

// Stats is the process-wide verification counter set, reported by
// gpttransform -stats and the experiment pipeline.
var Stats VerifyStats

// StaticVerify is the conservative equivalence pre-screen run before
// the interpreter. Equivalence claims rest on the cppcheck canonical
// fingerprint (normalized CFG shape + def-use summary), which erases
// exactly the axes the transformation passes rewrite — names, layout,
// comments, std:: qualification, increment style, for/while form —
// and preserves operators, literals, switch case values, and I/O.
// A transformed program that gained uninitialized-read findings
// relative to the original is reported StaticSuspect: the diagnostics
// gating is not invariant under behaviour-preserving rewrites, so the
// suspicion is confirmed or refuted by the interpreter, never taken as
// a verdict on its own. Anything the static layer cannot model
// (unsupported constructs, parse failures, diagnostic noise present in
// the original) yields StaticUnknown and defers to the interpreter.
func StaticVerify(origSrc, newSrc string) StaticResult {
	Stats.StaticChecks.Add(1)
	origTU, err := cppast.Parse(origSrc)
	if err != nil {
		return StaticUnknown
	}
	newTU, err := cppast.Parse(newSrc)
	if err != nil {
		return StaticUnknown
	}
	if countRule(cppcheck.Analyze(newTU), cppcheck.RuleUninitRead) >
		countRule(cppcheck.Analyze(origTU), cppcheck.RuleUninitRead) {
		Stats.StaticSuspects.Add(1)
		return StaticSuspect
	}
	origFP, ok := cppcheck.Fingerprint(origTU)
	if !ok {
		return StaticUnknown
	}
	newFP, ok := cppcheck.Fingerprint(newTU)
	if !ok {
		return StaticUnknown
	}
	if origFP == newFP {
		Stats.StaticHits.Add(1)
		return StaticEquivalent
	}
	return StaticUnknown
}

func countRule(ds []cppcheck.Diagnostic, rule string) int {
	n := 0
	for _, d := range ds {
		if d.Rule == rule {
			n++
		}
	}
	return n
}

// Verify checks that two programs are behaviourally equivalent on the
// given inputs under the cppinterp semantics: equal stdout on every
// input. This is the executable form of the paper's requirement that
// code transformations maintain the original functionality. A static
// pre-screen (StaticVerify) short-circuits the interpreter when the
// canonical fingerprints match; every interpreter run is bounded by
// VerifyMaxSteps so non-terminating rewrites fail instead of hanging.
//
// On a fingerprint match equivalence is certified without executing
// either program, so Verify does not guarantee that the programs run
// successfully on the inputs — an original that fails on every input
// verifies cleanly against an equivalent-fingerprint rewrite. Callers
// that need runnability (the corpus generator does, and validates it
// when rendering solutions) must run the program separately.
//
// A StaticSuspect pre-screen verdict (the rewrite gained gated
// uninitialized-read findings) never fails Verify on its own: the
// gating is a may-analysis that behaviour-preserving rewrites can
// perturb, so the interpreter arbitrates and the suspicion only
// annotates its error when it confirms a divergence.
func Verify(origSrc, newSrc string, inputs []string) error {
	if len(inputs) == 0 {
		return fmt.Errorf("transform: no verification inputs")
	}
	static := StaticVerify(origSrc, newSrc)
	if static == StaticEquivalent {
		return nil
	}
	suspectNote := ""
	if static == StaticSuspect {
		suspectNote = " (static analysis flagged new uninitialized-variable reads)"
	}
	for i, in := range inputs {
		want, err := runInterp(origSrc, in)
		if err != nil {
			return fmt.Errorf("transform: input %d: original failed: %w", i, err)
		}
		got, err := runInterp(newSrc, in)
		if err != nil {
			return fmt.Errorf("transform: input %d: transformed failed%s: %w", i, suspectNote, err)
		}
		if got != want {
			return fmt.Errorf("transform: input %d: output mismatch%s: got %q want %q", i, suspectNote, got, want)
		}
	}
	return nil
}

// runInterp is one supervised, step-bounded interpreter run. Injected
// transient faults at PointVerifyInterp are retried with backoff so a
// simulated flaky executor cannot change a verification verdict; the
// interpreter's own errors return immediately — they ARE the verdict.
func runInterp(src, input string) (string, error) {
	var out string
	err := fault.Retry(verifyRetries, verifyBackoff, func() error {
		if err := fault.Hit(PointVerifyInterp); err != nil {
			return err
		}
		Stats.InterpRuns.Add(1)
		var rerr error
		out, rerr = cppinterp.Run(src, input, cppinterp.WithMaxSteps(VerifyMaxSteps))
		return rerr
	})
	return out, err
}
