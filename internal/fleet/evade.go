package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"gptattr/internal/fault"
	"gptattr/internal/serve"
)

// Evasion jobs are stateful: the replica that accepts a submit holds
// the job's entire lifecycle, so the router pins each job to its ring
// owner and NEVER hedges or fails an evade dispatch over — a duplicate
// dispatch would run the search twice and hand the client an ID its
// next poll cannot find. Job IDs leave the router namespaced
// "replica/jobID"; a poll parses the prefix and goes straight back to
// that replica. A replica lost mid-job takes its jobs with it (shared-
// nothing fleet): polls for them answer 503, clients resubmit, and the
// ring routes the retry to a healthy owner.

// EvadeEnabled implements serve.Evader: the router always exposes the
// endpoints; the owning replica is the authority on whether evasion
// is actually served (its 404 passes through).
func (rt *Router) EvadeEnabled() bool { return true }

// EvadeSubmit implements serve.Evader: owner-routed, un-hedged
// forwarding of one search submit.
func (rt *Router) EvadeSubmit(ctx context.Context, req serve.EvadeRequest) (serve.EvadeJobResponse, error) {
	var out serve.EvadeJobResponse
	body, err := json.Marshal(req)
	if err != nil {
		return out, err
	}
	rt.met.Counter("fleet_evade_forwards_total").Inc()
	if err := fault.Hit(PointForward); err != nil {
		return out, &serve.StatusError{Code: http.StatusServiceUnavailable, Msg: "router degraded: " + err.Error()}
	}
	// Note: no flip gate. A search outlives any reload window, so the
	// generation-consistency guarantee of the inference path cannot and
	// does not apply here; the replica's answer carries its own truth.
	order := rt.pickOrder(req.Source)
	if len(order) == 0 {
		return out, &serve.StatusError{Code: http.StatusServiceUnavailable, Msg: "no alive replicas"}
	}
	name := order[0]
	ctr := rt.inflight[name]
	ctr.Add(1)
	defer ctr.Add(-1)
	if err := fault.Hit(PointForwardReplica(name)); err != nil {
		rt.replicaDown(name, err)
		return out, &serve.StatusError{Code: http.StatusServiceUnavailable,
			Msg: fmt.Sprintf("evasion owner %s unavailable: %v", name, err)}
	}
	status, rbody, err := rt.reps[name].Forward(ctx, "evade", serve.RequestIDFrom(ctx), body)
	if err != nil {
		if ctx.Err() != nil {
			return out, ctx.Err()
		}
		rt.replicaDown(name, err)
		return out, &serve.StatusError{Code: http.StatusServiceUnavailable,
			Msg: fmt.Sprintf("evasion owner %s unavailable: %v", name, err)}
	}
	if status != http.StatusOK && status != http.StatusAccepted {
		// The owner answered: its verdict (429, 503, 422, ...) passes
		// through.
		return out, &serve.StatusError{Code: status, Msg: errorBody(rbody)}
	}
	if err := json.Unmarshal(rbody, &out); err != nil {
		return out, &serve.StatusError{Code: http.StatusBadGateway, Msg: "bad replica response: " + err.Error()}
	}
	out.JobID = name + "/" + out.JobID
	return out, nil
}

// EvadeStatus implements serve.Evader: the namespaced ID names the
// replica holding the job; the poll goes there and nowhere else.
func (rt *Router) EvadeStatus(ctx context.Context, id string, wait bool) (serve.EvadeJobResponse, error) {
	var out serve.EvadeJobResponse
	name, jobID, ok := strings.Cut(id, "/")
	if !ok || name == "" || jobID == "" {
		return out, &serve.StatusError{Code: http.StatusBadRequest,
			Msg: fmt.Sprintf("malformed fleet job id %q (want replica/job)", id)}
	}
	rep, exists := rt.reps[name]
	if !exists {
		return out, &serve.StatusError{Code: http.StatusNotFound, Msg: "unknown replica " + name}
	}
	status, rbody, err := rep.EvadeStatus(ctx, jobID, wait, serve.RequestIDFrom(ctx))
	if err != nil {
		if ctx.Err() != nil {
			return out, ctx.Err()
		}
		rt.replicaDown(name, err)
		return out, &serve.StatusError{Code: http.StatusServiceUnavailable,
			Msg: fmt.Sprintf("evasion job %s lost: replica %s unreachable: %v", id, name, err)}
	}
	if status != http.StatusOK {
		return out, &serve.StatusError{Code: status, Msg: errorBody(rbody)}
	}
	if err := json.Unmarshal(rbody, &out); err != nil {
		return out, &serve.StatusError{Code: http.StatusBadGateway, Msg: "bad replica response: " + err.Error()}
	}
	out.JobID = name + "/" + out.JobID
	return out, nil
}
