package stylometry

import "testing"

func TestFamilyClassification(t *testing.T) {
	tests := []struct {
		name string
		want FeatureFamily
	}{
		{"WordUnigram:numCases", FamilyLexical},
		{"LnKeywordDensity:for", FamilyLexical},
		{"AvgIdentLength", FamilyLexical},
		{"NameFracSnake", FamilyLexical},
		{"AvgLineLength", FamilyLexical},
		{"LnTabDensity", FamilyLayout},
		{"LnSpaceDensity", FamilyLayout},
		{"WhitespaceRatio", FamilyLayout},
		{"IndentUnit", FamilyLayout},
		{"NewlineBeforeOpenBrace", FamilyLayout},
		{"SpaceAfterCommaRatio", FamilyLayout},
		{"ASTNodeTF:For", FamilySyntactic},
		{"ASTBigramTF:Block>For", FamilySyntactic},
		{"MaxASTDepth", FamilySyntactic},
		{"LeafTF:main", FamilySyntactic},
		{"ForWhileRatio", FamilySyntactic},
		{"HelperFunctionCount", FamilySyntactic},
		{"SemCyclomaticMean", FamilySemantic},
		{"SemLoopDepthMax", FamilySemantic},
		{"SemShape:(+= v lit:int)", FamilySemantic},
		{"SemFanOutMax", FamilySemantic},
	}
	for _, tt := range tests {
		if got := Family(tt.name); got != tt.want {
			t.Errorf("Family(%q) = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestFamilyString(t *testing.T) {
	if FamilyLexical.String() != "lexical" || FamilyLayout.String() != "layout" ||
		FamilySyntactic.String() != "syntactic" || FamilySemantic.String() != "semantic" {
		t.Error("family names wrong")
	}
	if FeatureFamily(99).String() != "unknown" {
		t.Error("unknown family name wrong")
	}
}

func TestFilterFamily(t *testing.T) {
	doc := Features{
		"WordUnigram:x": 1,
		"LnTabDensity":  2,
		"ASTNodeTF:For": 3,
	}
	lay := FilterFamily(doc, FamilyLayout)
	if len(lay) != 1 || lay["LnTabDensity"] != 2 {
		t.Errorf("layout filter wrong: %v", lay)
	}
	syn := FilterFamily(doc, FamilySyntactic)
	if len(syn) != 1 || syn["ASTNodeTF:For"] != 3 {
		t.Errorf("syntactic filter wrong: %v", syn)
	}
	// Original untouched.
	if len(doc) != 3 {
		t.Error("FilterFamily mutated input")
	}
}

// TestEveryExtractedFeatureHasAFamily guards against new features
// falling into the wrong family silently: every extracted feature must
// classify into one of the four families, and a realistic source must
// produce features in all four.
func TestEveryExtractedFeatureHasAFamily(t *testing.T) {
	f, err := Extract(sampleA)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[FeatureFamily]int{}
	for name := range f {
		fam := Family(name)
		switch fam {
		case FamilyLexical, FamilyLayout, FamilySyntactic, FamilySemantic:
			seen[fam]++
		default:
			t.Errorf("feature %q has unknown family", name)
		}
	}
	for _, fam := range AllFamilies {
		if seen[fam] == 0 {
			t.Errorf("no %v features extracted from sampleA", fam)
		}
	}
}
