package semstats

import (
	"reflect"
	"testing"

	"gptattr/internal/cppast"
	"gptattr/internal/cppcheck"
)

func analyze(t *testing.T, src string) *FileStats {
	t.Helper()
	tu, err := cppast.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Analyze(tu)
}

func fn(t *testing.T, fs *FileStats, name string) *FuncStats {
	t.Helper()
	for _, f := range fs.Funcs {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("function %q not analyzed", name)
	return nil
}

const forSrc = `#include <iostream>
using namespace std;
int main() {
    int s = 0;
    for (int i = 0; i < 10; i++) {
        s += i;
    }
    cout << s << endl;
    return 0;
}`

const whileSrc = `#include <iostream>
using namespace std;
int main() {
    int s = 0;
    int i = 0;
    while (i < 10) {
        s += i;
        i++;
    }
    cout << s << endl;
    return 0;
}`

// The compact graph is the for/while normal form: both loop spellings
// must produce identical shape, loop, and back-edge numbers.
func TestForWhileShapeIdentical(t *testing.T) {
	a := fn(t, analyze(t, forSrc), "main")
	b := fn(t, analyze(t, whileSrc), "main")
	type shape struct {
		blocks, edges, branches, cyclo, back, loops, maxDepth int
	}
	sa := shape{a.Blocks, a.Edges, a.Branches, a.Cyclomatic, a.BackEdges, a.Loops, a.MaxLoopDepth}
	sb := shape{b.Blocks, b.Edges, b.Branches, b.Cyclomatic, b.BackEdges, b.Loops, b.MaxLoopDepth}
	if sa != sb {
		t.Errorf("for/while shapes differ: for=%+v while=%+v", sa, sb)
	}
	if a.Loops != 1 || a.MaxLoopDepth != 1 || a.BackEdges != 1 {
		t.Errorf("single loop expected: %+v", sa)
	}
}

func TestLoopNestingDepthProfile(t *testing.T) {
	src := `int main() {
    int s = 0;
    for (int i = 0; i < 3; i++) {
        for (int j = 0; j < 3; j++) {
            for (int k = 0; k < 3; k++) {
                s += i * j * k;
            }
        }
        s += i;
    }
    while (s > 0) { s -= 2; }
    return s;
}`
	st := fn(t, analyze(t, src), "main")
	if st.Loops != 4 {
		t.Errorf("Loops = %d, want 4", st.Loops)
	}
	if st.MaxLoopDepth != 3 {
		t.Errorf("MaxLoopDepth = %d, want 3", st.MaxLoopDepth)
	}
	if want := [3]int{2, 1, 1}; st.LoopsAtDepth != want {
		t.Errorf("LoopsAtDepth = %v, want %v", st.LoopsAtDepth, want)
	}
}

func TestStraightLineFunction(t *testing.T) {
	src := `int add(int a, int b) { return a + b; }`
	st := fn(t, analyze(t, src), "add")
	if st.Cyclomatic != 1 {
		t.Errorf("Cyclomatic = %d, want 1 (straight line)", st.Cyclomatic)
	}
	if st.Loops != 0 || st.BackEdges != 0 || st.Branches != 0 {
		t.Errorf("straight line function has loops/branches: %+v", st)
	}
}

func TestIfElseCyclomatic(t *testing.T) {
	src := `int sign(int x) {
    if (x > 0) { return 1; }
    else if (x < 0) { return -1; }
    return 0;
}`
	st := fn(t, analyze(t, src), "sign")
	if st.Cyclomatic != 3 {
		t.Errorf("Cyclomatic = %d, want 3 (two decisions)", st.Cyclomatic)
	}
	if st.Branches != 2 {
		t.Errorf("Branches = %d, want 2", st.Branches)
	}
}

func TestDominatorProperties(t *testing.T) {
	src := `int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        if (i % 2 == 0) { s += i; } else { s -= i; }
    }
    return s;
}`
	tu, err := cppast.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g := compact(buildCFGFor(t, tu, "f"))
	idom := dominators(g)
	if idom[0] != 0 {
		t.Errorf("idom[entry] = %d, want 0", idom[0])
	}
	for i := 1; i < len(idom); i++ {
		if idom[i] < 0 || idom[i] >= i {
			t.Errorf("idom[%d] = %d: must be in [0,%d)", i, idom[i], i)
		}
		if !dominates(idom, 0, i) {
			t.Errorf("entry does not dominate node %d", i)
		}
	}
}

func buildCFGFor(t *testing.T, tu *cppast.TranslationUnit, name string) *cppcheck.CFG {
	t.Helper()
	for _, f := range tu.Functions() {
		if f.Name == name && f.Body != nil {
			return NewFuncContext(f, nil, nil).CFG()
		}
	}
	t.Fatalf("function %q not found", name)
	return nil
}

func TestCallGraphFanAndRecursion(t *testing.T) {
	src := `int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
int twice(int x) { return fact(x) + fact(x); }
int main() { return twice(3) + fact(2); }`
	fs := analyze(t, src)
	if !fn(t, fs, "fact").Recursive {
		t.Error("fact not marked recursive")
	}
	if fn(t, fs, "twice").Recursive || fn(t, fs, "main").Recursive {
		t.Error("non-recursive function marked recursive")
	}
	// Fan-in counts distinct callers, the recursive self-edge included.
	if got := fn(t, fs, "fact").FanIn; got != 3 {
		t.Errorf("fact FanIn = %d, want 3 (fact, twice, main)", got)
	}
	if got := fn(t, fs, "main").FanOut; got != 2 {
		t.Errorf("main FanOut = %d, want 2 (twice, fact)", got)
	}
	if fs.CallEdges != 4 {
		t.Errorf("CallEdges = %d, want 4", fs.CallEdges)
	}
	if fs.RecursiveFuncs != 1 {
		t.Errorf("RecursiveFuncs = %d, want 1", fs.RecursiveFuncs)
	}
}

func TestMutualRecursion(t *testing.T) {
	src := `int odd(int n);
int even(int n) { if (n == 0) return 1; return odd(n - 1); }
int odd(int n) { if (n == 0) return 0; return even(n - 1); }
int main() { return even(4); }`
	fs := analyze(t, src)
	if !fn(t, fs, "even").Recursive || !fn(t, fs, "odd").Recursive {
		t.Error("mutually recursive pair not detected")
	}
	if fn(t, fs, "main").Recursive {
		t.Error("main wrongly recursive")
	}
}

// Shape grams must be identical under consistent renaming: every
// user-chosen name is erased to its binding class.
func TestShapeGramsRenameInvariant(t *testing.T) {
	a := `int total;
int helper(int x) { return x * 2; }
int main() { int n; std::cin >> n; total = helper(n) + 1; return total; }`
	b := `int accumulated_sum;
int doubleIt(int value) { return value * 2; }
int main() { int count; std::cin >> count; accumulated_sum = doubleIt(count) + 1; return accumulated_sum; }`
	fa := analyze(t, a)
	fb := analyze(t, b)
	for i := range fa.Funcs {
		if !reflect.DeepEqual(fa.Funcs[i].ExprGrams, fb.Funcs[i].ExprGrams) {
			t.Errorf("grams differ for func %d:\n a=%v\n b=%v",
				i, fa.Funcs[i].ExprGrams, fb.Funcs[i].ExprGrams)
		}
	}
}

func TestDefUseAndLiveStats(t *testing.T) {
	src := `int main() {
    int a = 1;
    int b = a + 2;
    int c = a + b;
    return c;
}`
	st := fn(t, analyze(t, src), "main")
	if st.Chains != 3 {
		t.Errorf("Chains = %d, want 3", st.Chains)
	}
	// a is used twice, b once, c once.
	if st.ChainUses != 4 {
		t.Errorf("ChainUses = %d, want 4", st.ChainUses)
	}
	if st.MaxChainLen != 2 {
		t.Errorf("MaxChainLen = %d, want 2", st.MaxChainLen)
	}
	if st.Vars != 3 {
		t.Errorf("Vars = %d, want 3", st.Vars)
	}
	// A single-block body keeps every variable block-local: no live-out.
	if st.MaxLiveWidth != 0 {
		t.Errorf("MaxLiveWidth = %d, want 0 for one-block body", st.MaxLiveWidth)
	}
	// A loop-carried variable must be live across blocks.
	looped := fn(t, analyze(t, forSrc), "main")
	if looped.MaxLiveWidth <= 0 {
		t.Errorf("loop MaxLiveWidth = %d, want > 0", looped.MaxLiveWidth)
	}
	if looped.MeanLiveWidth <= 0 {
		t.Errorf("loop MeanLiveWidth = %v, want > 0", looped.MeanLiveWidth)
	}
}

func TestAnalyzeAllMatchesSequential(t *testing.T) {
	srcs := []string{forSrc, whileSrc,
		`int f(int n) { if (n <= 1) return 1; return n * f(n - 1); } int main() { return f(5); }`,
		`int main() { return 0; }`,
	}
	tus := make([]*cppast.TranslationUnit, len(srcs))
	for i, s := range srcs {
		tu, err := cppast.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		tus[i] = tu
	}
	want := AnalyzeAll(tus, 1)
	for _, workers := range []int{2, 4, 8} {
		got := AnalyzeAll(tus, workers)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("AnalyzeAll(workers=%d) differs from sequential", workers)
		}
	}
}

func TestPassCaching(t *testing.T) {
	tu, err := cppast.Parse(forSrc)
	if err != nil {
		t.Fatal(err)
	}
	var c *FuncContext
	for _, f := range tu.Functions() {
		if f.Name == "main" {
			c = NewFuncContext(f, map[string]*cppast.FuncDecl{"main": f}, nil)
		}
	}
	g1 := c.compactGraph()
	d1 := c.dominatorTree()
	if c.compactGraph() != g1 {
		t.Error("compact graph rebuilt instead of cached")
	}
	if &c.dominatorTree()[0] != &d1[0] {
		t.Error("dominator tree rebuilt instead of cached")
	}
	l1, _ := c.loopNest()
	l2, _ := c.loopNest()
	if len(l1) != len(l2) {
		t.Error("loop nest unstable across cached calls")
	}
}
