package metrics

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	// 1..1000 ms uniformly: p50 ≈ 500ms, p95 ≈ 950ms, p99 ≈ 990ms.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Millisecond},
		{0.95, 950 * time.Millisecond},
		{0.99, 990 * time.Millisecond},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		// Log-bucketed histograms with 2 buckets/doubling estimate
		// within ~25% of the true value.
		if err := math.Abs(got.Seconds()-c.want.Seconds()) / c.want.Seconds(); err > 0.25 {
			t.Errorf("q%.2f = %v, want ~%v (err %.0f%%)", c.q, got, c.want, 100*err)
		}
	}
	if h.Min() != 1*time.Millisecond {
		t.Errorf("min = %v", h.Min())
	}
	if h.Max() != 1000*time.Millisecond {
		t.Errorf("max = %v", h.Max())
	}
	if m := h.Mean(); m < 495*time.Millisecond || m > 505*time.Millisecond {
		t.Errorf("mean = %v, want ~500ms", m)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram not all-zero")
	}
	h.Observe(0)
	h.Observe(-time.Second) // clamped to 0
	h.Observe(5 * time.Minute)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 0 {
		t.Errorf("min = %v, want 0", h.Min())
	}
	if h.Max() != 5*time.Minute {
		t.Errorf("max = %v", h.Max())
	}
	// Quantiles stay inside [min, max] even at bucket extremes.
	if q := h.Quantile(1); q > 5*time.Minute {
		t.Errorf("q100 = %v exceeds max", q)
	}
	if q := h.Quantile(0); q != 0 {
		t.Errorf("q0 = %v, want 0", q)
	}
}

func TestRegistryTextRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total").Add(12)
	r.Gauge("inflight").Set(3)
	for i := 0; i < 10; i++ {
		r.Histogram("latency").Observe(10 * time.Millisecond)
	}
	// Same name returns the same metric.
	if r.Counter("requests_total").Value() != 12 {
		t.Error("counter not idempotent by name")
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"requests_total 12\n",
		"inflight 3\n",
		"latency_count 10\n",
		"latency_p50_seconds ",
		"latency_p95_seconds ",
		"latency_p99_seconds ",
		"latency_sum_seconds 0.100000\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Sorted output: lines must be in order.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i] < lines[i-1] {
			t.Errorf("output not sorted: %q after %q", lines[i], lines[i-1])
		}
	}
}

func TestConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Gauge(fmt.Sprintf("g%d", g%2)).Add(1)
				r.Histogram("h").Observe(time.Duration(i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if r.Counter("c").Value() != 8000 {
		t.Errorf("counter = %d, want 8000", r.Counter("c").Value())
	}
	if r.Histogram("h").Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", r.Histogram("h").Count())
	}
}
