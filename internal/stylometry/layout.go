package stylometry

// layoutFeaturesVec derives formatting features — whitespace densities,
// indentation style, brace placement, comment style, operator spacing —
// from the Surface statistics the tokenizer accumulated during its
// single fused pass over the raw text (see cpptok.ScanSurface). The
// old implementation re-walked the source four times; the formulas
// here consume the same counts in the same arithmetic order, so the
// output is bit-identical (pinned by the golden corpus and the
// reference differential test).
import "gptattr/internal/cpptok"

func layoutFeaturesVec(fv *FeatureVec, surf *cpptok.Surface,
	lineComments, blockComments, srcLen int, length float64) {
	fv.Set(sidLnTabDensity, lnDensity(surf.Tabs, length))
	fv.Set(sidLnSpaceDensity, lnDensity(surf.Spaces, length))
	fv.Set(sidLnEmptyLineDensity, lnDensity(surf.EmptyLines, length))
	nonWs := srcLen - surf.WSChars
	if nonWs > 0 {
		fv.Set(sidWhitespaceRatio, float64(surf.WSChars)/float64(nonWs))
	}
	if surf.TabLeadLines > surf.SpaceLeadLines {
		fv.Set(sidTabsLeadLines, 1)
	}

	// Dominant indentation unit: the smallest leading-space width that
	// occurs often (>= 20% of indented lines); buckets 2/4/8. Every
	// space-led line contributes exactly one indent width, so the old
	// sum over the width histogram equals SpaceLeadLines.
	if total := surf.SpaceLeadLines; total > 0 {
		widths := [4]int{surf.Indent2, surf.Indent3, surf.Indent4, surf.Indent8}
		units := [4]float64{2, 3, 4, 8}
		for i, c := range widths {
			if float64(c) >= 0.2*float64(total) {
				fv.Set(sidIndentUnit, units[i])
				break
			}
		}
	}

	// Brace placement: newline before '{' (Allman) vs same-line (K&R).
	if surf.BraceOwnLine > surf.BraceSameLine {
		fv.Set(sidNewlineBeforeBrace, 1)
	}
	fv.Set(sidBraceOwnLineRatio, ratio(surf.BraceOwnLine, surf.BraceOwnLine+surf.BraceSameLine))

	// Comment style: line vs block.
	fv.Set(sidLineCommentRatio, ratio(lineComments, lineComments+blockComments))

	// Operator spacing: fraction of '=' assignments written with
	// surrounding spaces, and of commas followed by a space.
	fv.Set(sidSpacedAssignRatio, ratio(surf.EqSpaced, surf.EqTotal))
	fv.Set(sidSpaceAfterComma, ratio(surf.CommaSpaced, surf.CommaTotal))
}

func isOpChar(c byte) bool {
	switch c {
	case '=', '<', '>', '!', '+', '-', '*', '/', '%', '&', '|', '^':
		return true
	}
	return false
}
