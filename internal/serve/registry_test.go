package serve

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestRegistryLoadsBothModels(t *testing.T) {
	r, err := NewRegistry(modelDir(t))
	if err != nil {
		t.Fatal(err)
	}
	m := r.Current()
	if m.Oracle == nil || m.Detector == nil {
		t.Fatalf("oracle=%v detector=%v, want both non-nil", m.Oracle, m.Detector)
	}
	if m.Generation != 1 {
		t.Errorf("generation = %d, want 1", m.Generation)
	}
	if len(m.Oracle.Labels()) < 2 {
		t.Errorf("oracle labels = %v", m.Oracle.Labels())
	}
}

func TestRegistryEmptyDirStartsDegraded(t *testing.T) {
	r, err := NewRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := r.Current()
	if m.Oracle != nil || m.Detector != nil {
		t.Error("models loaded from empty dir")
	}
	if m.Generation != 1 {
		t.Errorf("generation = %d, want 1", m.Generation)
	}
}

func TestRegistryMissingDirFails(t *testing.T) {
	if _, err := NewRegistry(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("registry over missing dir succeeded")
	}
}

func TestRegistryCorruptModelFailsClosed(t *testing.T) {
	dir := modelDir(t)
	// Initial load must refuse a corrupt model outright.
	if err := os.WriteFile(filepath.Join(dir, OracleFile), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRegistry(dir); err == nil {
		t.Fatal("registry loaded corrupt oracle")
	}
}

func TestRegistryReloadKeepsOldGenerationOnError(t *testing.T) {
	dir := modelDir(t)
	r, err := NewRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	old := r.Current()

	// Corrupt the detector, then reload: the error must not disturb
	// the serving generation.
	if err := os.WriteFile(filepath.Join(dir, DetectorFile), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := r.Load(); err == nil {
		t.Fatal("reload of corrupt detector succeeded")
	}
	if got := r.Current(); got != old {
		t.Error("failed reload replaced the live generation")
	}

	// Repair and reload: generation advances, old pointer still valid.
	if err := os.WriteFile(filepath.Join(dir, DetectorFile), detBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := r.Load(); err != nil {
		t.Fatalf("reload after repair: %v", err)
	}
	now := r.Current()
	if now.Generation <= old.Generation {
		t.Errorf("generation %d did not advance past %d", now.Generation, old.Generation)
	}
	// A request that grabbed the old generation can still finish on it.
	if _, err := old.Oracle.Predict(sampleSource(t, 0)); err != nil {
		t.Errorf("old generation unusable after reload: %v", err)
	}
}

// TestRegistryHotSwapUnderLoad hammers Current from readers while
// reloads run — meaningful under -race: lookups must be lock-free and
// never observe a half-published generation.
func TestRegistryHotSwapUnderLoad(t *testing.T) {
	r, err := NewRegistry(modelDir(t))
	if err != nil {
		t.Fatal(err)
	}
	src := sampleSource(t, 0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m := r.Current()
				if m.Oracle == nil {
					t.Error("reader observed generation without oracle")
					return
				}
				if _, err := m.Oracle.Predict(src); err != nil {
					t.Errorf("predict: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 5; i++ {
		if err := r.Load(); err != nil {
			t.Errorf("reload %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if gen := r.Current().Generation; gen != 6 {
		t.Errorf("generation = %d, want 6 (1 initial + 5 reloads)", gen)
	}
}
