package cppinterp

import (
	"fmt"
	"strconv"
	"strings"

	"gptattr/internal/cppast"
)

// DefaultMaxSteps bounds evaluation so that a buggy transformation that
// breaks a loop condition surfaces as an error instead of a hang.
const DefaultMaxSteps = 5_000_000

// RunError is a runtime (or unsupported-construct) error with source
// position.
type RunError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *RunError) Error() string {
	return fmt.Sprintf("line %d: %s", e.Line, e.Msg)
}

// streamState tracks ostream formatting flags.
type streamState struct {
	fixed     bool
	precision int
}

// control is the statement-level control-flow signal.
type control int

const (
	ctrlNone control = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

// Interp executes one translation unit.
type Interp struct {
	funcs    map[string]*cppast.FuncDecl
	globals  map[string]*Value
	typedefs map[string]string
	defines  map[string]Value

	in    []byte
	inPos int
	out   strings.Builder

	stream   streamState
	steps    int
	maxSteps int
}

// Option configures an Interp.
type Option func(*Interp)

// WithMaxSteps overrides the evaluation step budget.
func WithMaxSteps(n int) Option {
	return func(ip *Interp) { ip.maxSteps = n }
}

// Run parses src and executes main with the given stdin, returning the
// program's stdout.
func Run(src, stdin string, opts ...Option) (string, error) {
	tu, err := cppast.Parse(src)
	if err != nil {
		return "", fmt.Errorf("lex: %w", err)
	}
	return RunAST(tu, stdin, opts...)
}

// RunAST executes an already-parsed unit.
func RunAST(tu *cppast.TranslationUnit, stdin string, opts ...Option) (string, error) {
	ip := &Interp{
		funcs:    make(map[string]*cppast.FuncDecl),
		globals:  make(map[string]*Value),
		typedefs: make(map[string]string),
		defines:  make(map[string]Value),
		in:       []byte(stdin),
		stream:   streamState{precision: 6},
		maxSteps: DefaultMaxSteps,
	}
	for _, o := range opts {
		o(ip)
	}
	if err := ip.loadUnit(tu); err != nil {
		return ip.out.String(), err
	}
	main := ip.funcs["main"]
	if main == nil || main.Body == nil {
		return "", &RunError{Msg: "no main function"}
	}
	_, err := ip.callFunc(main, nil)
	return ip.out.String(), err
}

func (ip *Interp) loadUnit(tu *cppast.TranslationUnit) error {
	// First pass: functions, typedefs, defines, so globals can use them.
	for _, d := range tu.Decls {
		switch n := d.(type) {
		case *cppast.FuncDecl:
			if n.Body != nil || ip.funcs[n.Name] == nil {
				ip.funcs[n.Name] = n
			}
		case *cppast.TypedefDecl:
			ip.loadTypedef(n.Text)
		case *cppast.Preproc:
			ip.loadDefine(n.Text)
		}
	}
	// Second pass: global variables.
	frame := &frame{ip: ip}
	for _, d := range tu.Decls {
		if vd, ok := d.(*cppast.VarDecl); ok {
			if err := ip.declare(frame, vd, ip.globals); err != nil {
				return err
			}
		}
	}
	return nil
}

// loadTypedef records "typedef <underlying...> <name> ;".
func (ip *Interp) loadTypedef(text string) {
	fields := strings.Fields(strings.TrimSuffix(text, ";"))
	// fields[0] == "typedef"; last non-";" field is the alias.
	if len(fields) < 3 {
		return
	}
	last := fields[len(fields)-1]
	if last == ";" {
		fields = fields[:len(fields)-1]
		if len(fields) < 3 {
			return
		}
		last = fields[len(fields)-1]
	}
	underlying := strings.Join(fields[1:len(fields)-1], " ")
	ip.typedefs[last] = underlying
}

// loadDefine records simple object-like constant macros:
// "#define NAME 123" or "#define NAME 1.5".
func (ip *Interp) loadDefine(text string) {
	rest := strings.TrimSpace(strings.TrimPrefix(text, "#"))
	if !strings.HasPrefix(rest, "define") {
		return
	}
	fields := strings.Fields(rest)
	if len(fields) != 3 {
		return
	}
	name, val := fields[1], fields[2]
	if strings.ContainsAny(name, "()") {
		return // function-like macro: unsupported
	}
	if i, err := strconv.ParseInt(val, 0, 64); err == nil {
		ip.defines[name] = IntVal(i)
		return
	}
	if f, err := strconv.ParseFloat(strings.TrimSuffix(val, "f"), 64); err == nil {
		ip.defines[name] = FloatVal(f)
	}
}

// resolveType expands typedef aliases before kind mapping.
func (ip *Interp) resolveType(typ string) (ValueKind, ValueKind) {
	t := strings.TrimSpace(typ)
	for i := 0; i < 4; i++ {
		base := strings.TrimPrefix(strings.TrimPrefix(t, "const "), "static ")
		base = strings.TrimSuffix(strings.TrimSuffix(base, " &"), "&")
		base = strings.TrimSpace(base)
		under, ok := ip.typedefs[base]
		if !ok {
			break
		}
		t = under
	}
	return kindOfType(t)
}

// frame is one function activation.
type frame struct {
	ip      *Interp
	scopes  []map[string]*Value
	retKind ValueKind
	retVal  Value
}

func (f *frame) push() { f.scopes = append(f.scopes, make(map[string]*Value)) }
func (f *frame) pop()  { f.scopes = f.scopes[:len(f.scopes)-1] }

// lookup finds a variable in the innermost scope that declares it.
func (f *frame) lookup(name string) (*Value, bool) {
	for i := len(f.scopes) - 1; i >= 0; i-- {
		if v, ok := f.scopes[i][name]; ok {
			return v, true
		}
	}
	if v, ok := f.ip.globals[name]; ok {
		return v, true
	}
	return nil, false
}

func (f *frame) bind(name string, v *Value) {
	if len(f.scopes) == 0 {
		f.push()
	}
	f.scopes[len(f.scopes)-1][name] = v
}

func (ip *Interp) step(line int) error {
	ip.steps++
	if ip.steps > ip.maxSteps {
		return &RunError{Line: line, Msg: "step budget exceeded (possible non-termination)"}
	}
	return nil
}

func (ip *Interp) errf(n cppast.Node, format string, args ...any) error {
	line := 0
	if n != nil {
		line = n.Line()
	}
	return &RunError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// callFunc invokes fn with evaluated arguments. Reference parameters
// receive the caller's storage.
func (ip *Interp) callFunc(fn *cppast.FuncDecl, args []*Value) (Value, error) {
	if fn.Body == nil {
		return Value{}, ip.errf(fn, "call of bodyless function %s", fn.Name)
	}
	retKind, _ := ip.resolveType(fn.RetType)
	f := &frame{ip: ip, retKind: retKind}
	f.push()
	for i, p := range fn.Params {
		if i >= len(args) {
			break
		}
		if p.Ref {
			f.bind(p.Name, args[i])
			continue
		}
		pk, pek := ip.resolveType(p.Type)
		v := *args[i]
		if pk != KindVector && pk != KindArray {
			v = coerce(v, pk)
		} else if v.Kind == KindVector || v.Kind == KindArray {
			// Pass containers by value: deep-copy the elements.
			elems := make([]Value, len(*v.Elems))
			copy(elems, *v.Elems)
			v = Value{Kind: v.Kind, Elems: &elems, ElemKind: pek}
		}
		nv := v
		f.bind(p.Name, &nv)
	}
	ctrl, err := ip.execBlock(f, fn.Body)
	if err != nil {
		return Value{}, err
	}
	if ctrl == ctrlReturn {
		return f.retVal, nil
	}
	return Value{}, nil
}

func (ip *Interp) execBlock(f *frame, b *cppast.Block) (control, error) {
	f.push()
	defer f.pop()
	for _, s := range b.Stmts {
		ctrl, err := ip.execStmt(f, s)
		if err != nil || ctrl != ctrlNone {
			return ctrl, err
		}
	}
	return ctrlNone, nil
}

func (ip *Interp) execStmt(f *frame, s cppast.Node) (control, error) {
	if err := ip.step(s.Line()); err != nil {
		return ctrlNone, err
	}
	switch n := s.(type) {
	case *cppast.Block:
		return ip.execBlock(f, n)
	case *cppast.EmptyStmt, *cppast.Preproc, *cppast.UsingDirective, *cppast.TypedefDecl, *cppast.Comment:
		if td, ok := s.(*cppast.TypedefDecl); ok {
			ip.loadTypedef(td.Text)
		}
		return ctrlNone, nil
	case *cppast.VarDecl:
		return ctrlNone, ip.declareLocal(f, n)
	case *cppast.ExprStmt:
		_, err := ip.evalExpr(f, n.X)
		return ctrlNone, err
	case *cppast.If:
		cond, err := ip.evalExpr(f, n.Cond)
		if err != nil {
			return ctrlNone, err
		}
		if cond.Truthy() {
			return ip.execStmt(f, n.Then)
		}
		if n.Else != nil {
			return ip.execStmt(f, n.Else)
		}
		return ctrlNone, nil
	case *cppast.While:
		for {
			if err := ip.step(n.Line()); err != nil {
				return ctrlNone, err
			}
			cond, err := ip.evalExpr(f, n.Cond)
			if err != nil {
				return ctrlNone, err
			}
			if !cond.Truthy() {
				return ctrlNone, nil
			}
			ctrl, err := ip.execStmt(f, n.Body)
			if err != nil {
				return ctrlNone, err
			}
			if ctrl == ctrlBreak {
				return ctrlNone, nil
			}
			if ctrl == ctrlReturn {
				return ctrl, nil
			}
		}
	case *cppast.DoWhile:
		for {
			if err := ip.step(n.Line()); err != nil {
				return ctrlNone, err
			}
			ctrl, err := ip.execStmt(f, n.Body)
			if err != nil {
				return ctrlNone, err
			}
			if ctrl == ctrlBreak {
				return ctrlNone, nil
			}
			if ctrl == ctrlReturn {
				return ctrl, nil
			}
			cond, err := ip.evalExpr(f, n.Cond)
			if err != nil {
				return ctrlNone, err
			}
			if !cond.Truthy() {
				return ctrlNone, nil
			}
		}
	case *cppast.For:
		f.push()
		defer f.pop()
		if n.Init != nil {
			if _, err := ip.execStmt(f, n.Init); err != nil {
				return ctrlNone, err
			}
		}
		for {
			if err := ip.step(n.Line()); err != nil {
				return ctrlNone, err
			}
			if n.Cond != nil {
				cond, err := ip.evalExpr(f, n.Cond)
				if err != nil {
					return ctrlNone, err
				}
				if !cond.Truthy() {
					return ctrlNone, nil
				}
			}
			ctrl, err := ip.execStmt(f, n.Body)
			if err != nil {
				return ctrlNone, err
			}
			if ctrl == ctrlBreak {
				return ctrlNone, nil
			}
			if ctrl == ctrlReturn {
				return ctrl, nil
			}
			if n.Post != nil {
				if _, err := ip.evalExpr(f, n.Post); err != nil {
					return ctrlNone, err
				}
			}
		}
	case *cppast.Switch:
		return ip.execSwitch(f, n)
	case *cppast.Return:
		if n.Value != nil {
			v, err := ip.evalExpr(f, n.Value)
			if err != nil {
				return ctrlNone, err
			}
			f.retVal = coerce(v, f.retKind)
		}
		return ctrlReturn, nil
	case *cppast.Break:
		return ctrlBreak, nil
	case *cppast.Continue:
		return ctrlContinue, nil
	case *cppast.Unknown:
		return ctrlNone, ip.errf(n, "unsupported construct: %.60s", n.Text)
	default:
		return ctrlNone, ip.errf(s, "unsupported statement kind %s", s.Kind())
	}
}

func (ip *Interp) execSwitch(f *frame, n *cppast.Switch) (control, error) {
	cond, err := ip.evalExpr(f, n.Cond)
	if err != nil {
		return ctrlNone, err
	}
	match := -1
	defaultIdx := -1
	for i, c := range n.Cases {
		if c.Value == nil {
			defaultIdx = i
			continue
		}
		v, err := ip.evalExpr(f, c.Value)
		if err != nil {
			return ctrlNone, err
		}
		if v.AsInt() == cond.AsInt() {
			match = i
			break
		}
	}
	if match < 0 {
		match = defaultIdx
	}
	if match < 0 {
		return ctrlNone, nil
	}
	f.push()
	defer f.pop()
	for i := match; i < len(n.Cases); i++ {
		for _, s := range n.Cases[i].Stmts {
			ctrl, err := ip.execStmt(f, s)
			if err != nil {
				return ctrlNone, err
			}
			switch ctrl {
			case ctrlBreak:
				return ctrlNone, nil
			case ctrlReturn, ctrlContinue:
				return ctrl, nil
			}
		}
	}
	return ctrlNone, nil
}

func (ip *Interp) declareLocal(f *frame, vd *cppast.VarDecl) error {
	scope := f.scopes[len(f.scopes)-1]
	return ip.declare(f, vd, scope)
}

func (ip *Interp) declare(f *frame, vd *cppast.VarDecl, scope map[string]*Value) error {
	kind, elemKind := ip.resolveType(vd.Type)
	for _, d := range vd.Names {
		v, err := ip.initialValue(f, vd, d, kind, elemKind)
		if err != nil {
			return err
		}
		nv := v
		scope[d.Name] = &nv
	}
	return nil
}

func (ip *Interp) initialValue(f *frame, vd *cppast.VarDecl, d *cppast.Declarator, kind, elemKind ValueKind) (Value, error) {
	// Array declarator: int a[n][m].
	if len(d.ArrayLen) > 0 {
		return ip.makeArray(f, vd, d.ArrayLen, kind)
	}
	switch kind {
	case KindVector:
		n := int64(0)
		var fill Value
		switch init := d.Init.(type) {
		case nil:
		case *cppast.CallExpr:
			if id, ok := init.Fun.(*cppast.Ident); ok && id.Name == "{}" {
				elems := make([]Value, 0, len(init.Args))
				for _, a := range init.Args {
					av, err := ip.evalExpr(f, a)
					if err != nil {
						return Value{}, err
					}
					elems = append(elems, coerce(av, elemKind))
				}
				return Value{Kind: KindVector, Elems: &elems, ElemKind: elemKind}, nil
			}
			return Value{}, ip.errf(vd, "unsupported vector initializer")
		default:
			// vector<int> v(n) or v(n, fill) parses Init as expr or comma expr.
			if be, ok := init.(*cppast.BinaryExpr); ok && be.Op == "," {
				nv, err := ip.evalExpr(f, be.L)
				if err != nil {
					return Value{}, err
				}
				fv, err := ip.evalExpr(f, be.R)
				if err != nil {
					return Value{}, err
				}
				n, fill = nv.AsInt(), coerce(fv, elemKind)
			} else {
				nv, err := ip.evalExpr(f, init)
				if err != nil {
					return Value{}, err
				}
				n = nv.AsInt()
				fill = zeroOf(elemKind)
			}
		}
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = fill
		}
		return Value{Kind: KindVector, Elems: &elems, ElemKind: elemKind}, nil
	default:
		if d.Init == nil {
			return zeroOf(kind), nil
		}
		v, err := ip.evalExpr(f, d.Init)
		if err != nil {
			return Value{}, err
		}
		return coerce(v, kind), nil
	}
}

func (ip *Interp) makeArray(f *frame, at cppast.Node, dims []cppast.Node, elemKind ValueKind) (Value, error) {
	if len(dims) == 0 {
		return zeroOf(elemKind), nil
	}
	if dims[0] == nil {
		return Value{}, ip.errf(at, "array dimension required")
	}
	nv, err := ip.evalExpr(f, dims[0])
	if err != nil {
		return Value{}, err
	}
	n := nv.AsInt()
	if n < 0 || n > 50_000_000 {
		return Value{}, ip.errf(at, "array dimension %d out of range", n)
	}
	elems := make([]Value, n)
	if len(dims) > 1 {
		for i := range elems {
			sub, err := ip.makeArray(f, at, dims[1:], elemKind)
			if err != nil {
				return Value{}, err
			}
			elems[i] = sub
		}
	} else {
		for i := range elems {
			elems[i] = zeroOf(elemKind)
		}
	}
	return Value{Kind: KindArray, Elems: &elems, ElemKind: elemKind}, nil
}

func zeroOf(k ValueKind) Value {
	switch k {
	case KindFloat:
		return FloatVal(0)
	case KindString:
		return StringVal("")
	case KindChar:
		return CharVal(0)
	case KindBool:
		return BoolVal(false)
	default:
		return IntVal(0)
	}
}
