package stylometry

import (
	"context"

	"gptattr/internal/cppast"
	"gptattr/internal/semstats"
)

// SemanticVersion tags the semantic feature group's layout. It is part
// of the featcache extractor fingerprint (see internal/featcache), so
// bumping it when the group's features change invalidates stale cached
// vectors instead of silently mixing schemas.
const SemanticVersion = 1

// semanticFeatures appends the semstats-derived feature group: CFG
// shape, loop nesting, def-use/live-range distributions, call-graph
// position, and alpha-normalized expression-shape grams. Every feature
// name carries the "Sem" prefix (FamilySemantic); "SemShape:" grams are
// open-vocabulary term features, everything else is a fixed scalar.
//
// The whole group is computed on normalized forms (compacted graphs,
// erased identifiers, block-count live ranges), so it is bit-identical
// under the rename and layout actions of internal/evade — pinned by
// TestSemanticInvariantUnderRenameAndLayout.
func semanticFeatures(f Features, tu *cppast.TranslationUnit) {
	_ = semanticFeaturesCtx(context.Background(), f, tu)
}

// semanticFeaturesCtx is the budgeted form: the semstats pipeline
// checks ctx at every function boundary, and on budget exhaustion NO
// semantic feature is written — the family is all-or-nothing so the
// degraded vector's content depends only on the level, never on how
// far the pass got (determinism under latency storms).
func semanticFeaturesCtx(ctx context.Context, f Features, tu *cppast.TranslationUnit) error {
	fs, err := semstats.AnalyzeContext(ctx, tu)
	if err != nil {
		return err
	}
	f["SemFuncCount"] = float64(len(fs.Funcs))
	f["SemCallEdges"] = float64(fs.CallEdges)
	f["SemRecursiveFuncs"] = float64(fs.RecursiveFuncs)
	if len(fs.Funcs) == 0 {
		return nil
	}
	var (
		blocks, edges, branches, cyclo, back    int
		loops, depth1, depth2, depth3           int
		chains, useTotal, vars, liveTotal       int
		chains0, chains1, chains2, chains3      int
		maxCyclo, maxLoopDepth, maxChain        int
		maxLive, maxFanOut, maxFanIn, maxBlocks int
		branchFactorSum                         float64
	)
	for _, st := range fs.Funcs {
		blocks += st.Blocks
		edges += st.Edges
		branches += st.Branches
		cyclo += st.Cyclomatic
		back += st.BackEdges
		loops += st.Loops
		depth1 += st.LoopsAtDepth[0]
		depth2 += st.LoopsAtDepth[1]
		depth3 += st.LoopsAtDepth[2]
		chains += st.Chains
		useTotal += st.ChainUses
		chains0 += st.ChainsAtLen[0]
		chains1 += st.ChainsAtLen[1]
		chains2 += st.ChainsAtLen[2]
		chains3 += st.ChainsAtLen[3]
		vars += st.Vars
		liveTotal += st.LiveWidthSum
		branchFactorSum += st.BranchFactor
		maxCyclo = maxi(maxCyclo, st.Cyclomatic)
		maxLoopDepth = maxi(maxLoopDepth, st.MaxLoopDepth)
		maxChain = maxi(maxChain, st.MaxChainLen)
		maxLive = maxi(maxLive, st.MaxLiveWidth)
		maxFanOut = maxi(maxFanOut, st.FanOut)
		maxFanIn = maxi(maxFanIn, st.FanIn)
		maxBlocks = maxi(maxBlocks, st.Blocks)
		for gram, n := range st.ExprGrams {
			f["SemShape:"+gram] += float64(n)
		}
	}
	nf := float64(len(fs.Funcs))
	f["SemBlocksTotal"] = float64(blocks)
	f["SemBlocksMax"] = float64(maxBlocks)
	f["SemEdgesTotal"] = float64(edges)
	f["SemBranchesTotal"] = float64(branches)
	f["SemBranchFactorMean"] = branchFactorSum / nf
	f["SemCyclomaticMean"] = float64(cyclo) / nf
	f["SemCyclomaticMax"] = float64(maxCyclo)
	f["SemBackEdgesTotal"] = float64(back)
	f["SemLoopsTotal"] = float64(loops)
	f["SemLoopDepthMax"] = float64(maxLoopDepth)
	f["SemLoopsDepth1"] = float64(depth1)
	f["SemLoopsDepth2"] = float64(depth2)
	f["SemLoopsDepth3"] = float64(depth3)
	f["SemChainsTotal"] = float64(chains)
	f["SemChainLenMax"] = float64(maxChain)
	if chains > 0 {
		f["SemChainLenMean"] = float64(useTotal) / float64(chains)
	}
	f["SemChains0"] = float64(chains0)
	f["SemChains1"] = float64(chains1)
	f["SemChains2"] = float64(chains2)
	f["SemChains3"] = float64(chains3)
	f["SemVarsTotal"] = float64(vars)
	f["SemLiveWidthMax"] = float64(maxLive)
	if vars > 0 {
		f["SemLiveWidthMean"] = float64(liveTotal) / float64(vars)
	}
	f["SemFanOutMax"] = float64(maxFanOut)
	f["SemFanInMax"] = float64(maxFanIn)
	return nil
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
