// Command attr trains an authorship model from a directory of labelled
// C++ sources and attributes query files.
//
// The training directory holds one subdirectory per author, each
// containing that author's .cc/.cpp files (the layout cmd/gencorpus
// writes under gcj<year>/):
//
//	attr -train datasets/gcj2017 query1.cc query2.cc
//	attr -train datasets/gcj2017 -cv 4            # cross-validated accuracy
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gptattr/attribution"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "attr:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("attr", flag.ContinueOnError)
	trainDir := fs.String("train", "", "directory with one subdirectory of sources per author")
	trees := fs.Int("trees", 100, "random-forest size")
	seed := fs.Int64("seed", 1, "random seed")
	cv := fs.Int("cv", 0, "run k-fold cross-validation instead of prediction")
	workers := fs.Int("workers", 0, "bound pipeline parallelism (0 = GOMAXPROCS); results are identical at any setting")
	cacheDir := fs.String("cache-dir", "", "content-addressed feature cache directory, reused across runs")
	maxAuthors := fs.Int("max-authors", 0, "limit the number of authors loaded (0 = all)")
	saveModel := fs.String("save", "", "write the trained model to this file")
	saveLadder := fs.String("save-ladder", "", "write the degrade-ladder (oracle.model + oracle.l1.model + oracle.l2.model) into this directory for brownout-capable serving")
	loadModel := fs.String("model", "", "load a previously saved model instead of training")
	if err := fs.Parse(args); err != nil {
		return err
	}
	queries := fs.Args()

	if *loadModel != "" {
		f, err := os.Open(*loadModel)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		model, err := attribution.LoadAuthorshipModel(f)
		if err != nil {
			return err
		}
		fmt.Printf("loaded model with %d authors from %s\n", len(model.Authors()), *loadModel)
		return predict(model, queries)
	}

	if *trainDir == "" {
		return fmt.Errorf("-train directory (or -model) is required")
	}
	samples, err := loadAuthors(*trainDir, *maxAuthors)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %d authors from %s\n", len(samples), *trainDir)
	params := attribution.Params{Trees: *trees, Seed: *seed, Workers: *workers, CacheDir: *cacheDir}

	if *cv > 0 {
		acc, err := attribution.CrossValidateAuthorship(samples, *cv, params)
		if err != nil {
			return err
		}
		fmt.Printf("%d-fold cross-validated accuracy: %.1f%%\n", *cv, 100*acc)
		return nil
	}

	if *saveLadder != "" {
		ladder, err := attribution.TrainAuthorshipLadder(samples, params)
		if err != nil {
			return err
		}
		if err := os.MkdirAll(*saveLadder, 0o755); err != nil {
			return err
		}
		for lvl := 0; lvl < ladder.Levels(); lvl++ {
			name := "oracle.model"
			if lvl > 0 {
				name = fmt.Sprintf("oracle.l%d.model", lvl)
			}
			path := filepath.Join(*saveLadder, name)
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := ladder.SaveLevel(lvl, f); err != nil {
				_ = f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Println("saved ladder rung to", path)
		}
		if len(queries) == 0 {
			return nil
		}
	}

	if len(queries) == 0 && *saveModel == "" && *saveLadder == "" {
		return fmt.Errorf("no query files given (or use -cv / -save / -save-ladder)")
	}
	model, err := attribution.TrainAuthorship(samples, params)
	if err != nil {
		return err
	}
	if *saveModel != "" {
		f, err := os.Create(*saveModel)
		if err != nil {
			return err
		}
		if err := model.Save(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("saved model to", *saveModel)
	}
	return predict(model, queries)
}

func predict(model *attribution.AuthorshipModel, queries []string) error {
	for _, q := range queries {
		data, err := os.ReadFile(q)
		if err != nil {
			return err
		}
		author, err := model.Predict(string(data))
		if err != nil {
			return fmt.Errorf("%s: %w", q, err)
		}
		fmt.Printf("%s: %s\n", q, author)
	}
	return nil
}

func loadAuthors(dir string, max int) (map[string][]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]string)
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if max > 0 && len(out) >= max {
			break
		}
		files, err := os.ReadDir(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		var srcs []string
		for _, f := range files {
			name := f.Name()
			if f.IsDir() || !(strings.HasSuffix(name, ".cc") || strings.HasSuffix(name, ".cpp")) {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name(), name))
			if err != nil {
				return nil, err
			}
			srcs = append(srcs, string(data))
		}
		if len(srcs) > 0 {
			out[e.Name()] = srcs
		}
	}
	if len(out) < 2 {
		return nil, fmt.Errorf("found %d author directories under %s, need >= 2", len(out), dir)
	}
	return out, nil
}
