package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"gptattr/internal/serve/metrics"
	"gptattr/internal/stylometry"
)

// Config wires a Server together.
type Config struct {
	// Registry supplies the current model generation (required).
	Registry *Registry
	// Batcher runs feature extraction (required).
	Batcher *Batcher
	// Metrics receives request counters and latency histograms; nil
	// creates a private registry.
	Metrics *metrics.Registry
	// Timeout is the per-request deadline (default 10s). Clients hold
	// the other end via their own context; whichever expires first
	// wins.
	Timeout time.Duration
	// MaxBodyBytes bounds request bodies (default 1MiB).
	MaxBodyBytes int64
}

// Server is the HTTP attribution service.
type Server struct {
	cfg Config
	mux *http.ServeMux
}

// AttributeRequest is the body of POST /v1/attribute and /v1/detect.
type AttributeRequest struct {
	// Source is the C++ source body to analyse.
	Source string `json:"source"`
}

// AttributeResponse answers POST /v1/attribute.
type AttributeResponse struct {
	Author          string             `json:"author"`
	Proba           map[string]float64 `json:"proba"`
	ModelGeneration uint64             `json:"model_generation"`
}

// DetectResponse answers POST /v1/detect.
type DetectResponse struct {
	ChatGPT         bool    `json:"chatgpt"`
	Confidence      float64 `json:"confidence"`
	ModelGeneration uint64  `json:"model_generation"`
}

// ErrorResponse is the body of every non-2xx answer. RequestID echoes
// the X-Request-Id header so clients that only keep bodies can still
// quote the ID when reporting a 429/504 saturation incident.
type ErrorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

// HealthResponse answers GET /healthz.
type HealthResponse struct {
	Status          string `json:"status"`
	ModelGeneration uint64 `json:"model_generation"`
	Oracle          bool   `json:"oracle"`
	Detector        bool   `json:"detector"`
}

// ReloadResponse answers POST /v1/reload.
type ReloadResponse struct {
	ModelGeneration uint64 `json:"model_generation"`
}

// New builds the server. Registry and Batcher are required.
func New(cfg Config) (*Server, error) {
	if cfg.Registry == nil || cfg.Batcher == nil {
		return nil, fmt.Errorf("serve: Registry and Batcher are required")
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux()}
	s.mux.HandleFunc("/v1/attribute", s.handleAttribute)
	s.mux.HandleFunc("/v1/detect", s.handleDetect)
	s.mux.HandleFunc("/v1/reload", s.handleReload)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	// Batch-size observability: average batch = batched_requests_total
	// / batches_total.
	cfg.Batcher.onBatch = func(n int) {
		cfg.Metrics.Counter("batches_total").Inc()
		cfg.Metrics.Counter("batched_requests_total").Add(uint64(n))
	}
	return s, nil
}

// Handler returns the routing handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the metrics registry the server reports into.
func (s *Server) Metrics() *metrics.Registry { return s.cfg.Metrics }

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError answers one failed request. The request ID rides along
// in the body for the statuses a saturated or degraded server emits,
// so incidents stay traceable from client logs alone.
func (s *Server) writeError(w http.ResponseWriter, status int, msg, reqID string) {
	if status == http.StatusTooManyRequests {
		// Closed-loop clients should back off; micro-batch turnaround
		// is milliseconds, so one second is conservative.
		w.Header().Set("Retry-After", "1")
	}
	s.writeJSON(w, status, ErrorResponse{Error: msg, RequestID: reqID})
}

// begin stamps a freshly minted request ID on the response and
// returns it; every request — success or failure — carries it in the
// X-Request-Id header.
func (s *Server) begin(w http.ResponseWriter) string {
	id := newRequestID()
	w.Header().Set("X-Request-Id", id)
	return id
}

// decodeSource parses the request body for the two inference
// endpoints.
func (s *Server) decodeSource(w http.ResponseWriter, r *http.Request, reqID string) (string, bool) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST required", reqID)
		return "", false
	}
	var req AttributeRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		s.writeError(w, status, "bad request body: "+err.Error(), reqID)
		return "", false
	}
	if req.Source == "" {
		s.writeError(w, http.StatusBadRequest, "empty source", reqID)
		return "", false
	}
	return req.Source, true
}

// extract runs the batched feature extraction for one request and
// translates failures to HTTP statuses. Returns ok=false after having
// written the error response.
func (s *Server) extract(ctx context.Context, w http.ResponseWriter, src string, m *metrics.Registry) (f stylometry.Features, ok bool) {
	reqID := RequestIDFrom(ctx)
	feats, err := s.cfg.Batcher.Extract(ctx, src)
	switch {
	case err == nil:
		return feats, true
	case errors.Is(err, ErrSaturated):
		m.Counter("rejected_total").Inc()
		s.writeError(w, http.StatusTooManyRequests, "server saturated, retry later", reqID)
	case errors.Is(err, ErrClosed):
		s.writeError(w, http.StatusServiceUnavailable, "server shutting down", reqID)
	case errors.Is(err, ErrInternal):
		m.Counter("batch_failures_total").Inc()
		s.writeError(w, http.StatusServiceUnavailable, "extraction failed, retry later: "+err.Error(), reqID)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		m.Counter("deadline_exceeded_total").Inc()
		s.writeError(w, http.StatusGatewayTimeout, "request deadline exceeded", reqID)
	default:
		// The source itself did not extract (e.g. not lexable C++).
		s.writeError(w, http.StatusUnprocessableEntity, "source rejected: "+err.Error(), reqID)
	}
	return nil, false
}

func (s *Server) handleAttribute(w http.ResponseWriter, r *http.Request) {
	met := s.cfg.Metrics
	met.Counter("attribute_requests_total").Inc()
	met.Gauge("inflight").Add(1)
	defer met.Gauge("inflight").Add(-1)
	start := time.Now()

	reqID := s.begin(w)
	src, ok := s.decodeSource(w, r, reqID)
	if !ok {
		return
	}
	models := s.cfg.Registry.Current()
	if models.Oracle == nil {
		s.writeError(w, http.StatusServiceUnavailable, "no attribution model loaded", reqID)
		return
	}
	ctx, cancel := context.WithTimeout(WithRequestID(r.Context(), reqID), s.cfg.Timeout)
	defer cancel()
	feats, ok := s.extract(ctx, w, src, met)
	if !ok {
		return
	}
	proba, best := models.Oracle.ProbaFeatures(feats)
	met.Histogram("attribute_latency").Observe(time.Since(start))
	met.Counter("attribute_ok_total").Inc()
	s.writeJSON(w, http.StatusOK, AttributeResponse{
		Author: best, Proba: proba, ModelGeneration: models.Generation,
	})
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	met := s.cfg.Metrics
	met.Counter("detect_requests_total").Inc()
	met.Gauge("inflight").Add(1)
	defer met.Gauge("inflight").Add(-1)
	start := time.Now()

	reqID := s.begin(w)
	src, ok := s.decodeSource(w, r, reqID)
	if !ok {
		return
	}
	models := s.cfg.Registry.Current()
	if models.Detector == nil {
		s.writeError(w, http.StatusServiceUnavailable, "no detector model loaded", reqID)
		return
	}
	ctx, cancel := context.WithTimeout(WithRequestID(r.Context(), reqID), s.cfg.Timeout)
	defer cancel()
	feats, ok := s.extract(ctx, w, src, met)
	if !ok {
		return
	}
	verdict, conf := models.Detector.DetectFeatures(feats)
	met.Histogram("detect_latency").Observe(time.Since(start))
	met.Counter("detect_ok_total").Inc()
	s.writeJSON(w, http.StatusOK, DetectResponse{
		ChatGPT: verdict, Confidence: conf, ModelGeneration: models.Generation,
	})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	reqID := s.begin(w)
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST required", reqID)
		return
	}
	if err := s.cfg.Registry.Load(); err != nil {
		// The previous generation is still serving.
		s.writeError(w, http.StatusInternalServerError, "reload failed: "+err.Error(), reqID)
		return
	}
	gen := s.cfg.Registry.Current().Generation
	s.cfg.Metrics.Counter("reloads_total").Inc()
	s.writeJSON(w, http.StatusOK, ReloadResponse{ModelGeneration: gen})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	m := s.cfg.Registry.Current()
	s.writeJSON(w, http.StatusOK, HealthResponse{
		Status:          "ok",
		ModelGeneration: m.Generation,
		Oracle:          m.Oracle != nil,
		Detector:        m.Detector != nil,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	met := s.cfg.Metrics
	met.Gauge("queue_depth").Set(int64(s.cfg.Batcher.QueueLen()))
	met.Gauge("model_generation").Set(int64(s.cfg.Registry.Current().Generation))
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	met.WriteText(w)
}
