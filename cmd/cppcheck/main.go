// Command cppcheck runs the internal/cppcheck static analyzer over
// C++ source files or a generated corpus tree and reports diagnostics
// with stable rule IDs and source positions.
//
//	cppcheck solution.cc other.cc
//	cppcheck -corpus corpusdir -json
//	cppcheck -metrics solution.cc
//
// With -metrics the command reports per-function semantic metrics
// (CFG shape, cyclomatic complexity, loop nesting, def-use chains,
// live-range widths, call-graph fan-in/out) from internal/semstats
// instead of diagnostics; -json switches the metrics to JSON too.
//
// The exit status is 0 when every analyzed file is clean, 1 when any
// diagnostic was reported, and 2 on usage or I/O errors — so the
// command slots directly into CI pipelines. Metrics mode always exits
// 0 unless an error occurred.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gptattr/internal/cppast"
	"gptattr/internal/cppcheck"
	"gptattr/internal/semstats"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cppcheck:", err)
	}
	os.Exit(code)
}

// fileReport is one file's findings in the JSON output.
type fileReport struct {
	File        string                `json:"file"`
	Diagnostics []cppcheck.Diagnostic `json:"diagnostics"`
}

func run(args []string, out *os.File) (int, error) {
	fs2 := flag.NewFlagSet("cppcheck", flag.ContinueOnError)
	corpusDir := fs2.String("corpus", "", "analyze every .cc file under this directory tree")
	jsonOut := fs2.Bool("json", false, "emit findings as JSON instead of text")
	metrics := fs2.Bool("metrics", false, "report per-function semantic metrics instead of diagnostics")
	if err := fs2.Parse(args); err != nil {
		return 2, err
	}
	files := fs2.Args()
	if *corpusDir != "" {
		found, err := collectCorpus(*corpusDir)
		if err != nil {
			return 2, err
		}
		files = append(files, found...)
	}
	if len(files) == 0 {
		return 2, fmt.Errorf("no input: pass .cc files or -corpus dir")
	}
	if *metrics {
		return runMetrics(files, *jsonOut, out)
	}

	var reports []fileReport
	total := 0
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			return 2, err
		}
		tu, err := cppast.Parse(string(data))
		if err != nil {
			return 2, fmt.Errorf("%s: parse: %w", path, err)
		}
		ds := cppcheck.Analyze(tu)
		total += len(ds)
		if *jsonOut {
			if ds == nil {
				ds = []cppcheck.Diagnostic{}
			}
			reports = append(reports, fileReport{File: path, Diagnostics: ds})
			continue
		}
		for _, d := range ds {
			fmt.Fprintf(out, "%s:%d: [%s] %s (in %s)\n", path, d.Line, d.Rule, d.Msg, d.Func)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return 2, err
		}
	} else {
		fmt.Fprintf(out, "cppcheck: %d file(s), %d finding(s)\n", len(files), total)
	}
	if total > 0 {
		return 1, nil
	}
	return 0, nil
}

// metricsReport is one file's per-function metrics in JSON output.
type metricsReport struct {
	File  string              `json:"file"`
	Stats *semstats.FileStats `json:"stats"`
}

// runMetrics implements -metrics: per-function semantic statistics
// from the internal/semstats pass framework, as aligned text columns
// or JSON.
func runMetrics(files []string, jsonOut bool, out *os.File) (int, error) {
	var reports []metricsReport
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			return 2, err
		}
		tu, err := cppast.Parse(string(data))
		if err != nil {
			return 2, fmt.Errorf("%s: parse: %w", path, err)
		}
		fs := semstats.Analyze(tu)
		if jsonOut {
			reports = append(reports, metricsReport{File: path, Stats: fs})
			continue
		}
		fmt.Fprintf(out, "%s: %d function(s), %d call edge(s), %d recursive\n",
			path, len(fs.Funcs), fs.CallEdges, fs.RecursiveFuncs)
		for _, st := range fs.Funcs {
			if st.Unsupported {
				fmt.Fprintf(out, "  %-20s (unsupported body)\n", st.Name)
				continue
			}
			rec := ""
			if st.Recursive {
				rec = " recursive"
			}
			fmt.Fprintf(out, "  %-20s blocks=%d edges=%d cyclo=%d loops=%d depth=%d chains=%d maxchain=%d vars=%d livemax=%d fanout=%d fanin=%d%s\n",
				st.Name, st.Blocks, st.Edges, st.Cyclomatic, st.Loops, st.MaxLoopDepth,
				st.Chains, st.MaxChainLen, st.Vars, st.MaxLiveWidth, st.FanOut, st.FanIn, rec)
		}
	}
	if jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return 2, err
		}
	}
	return 0, nil
}

// collectCorpus gathers every .cc file under root in deterministic
// (sorted) order — the layout corpus.Save writes, but any tree works.
func collectCorpus(root string) ([]string, error) {
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".cc") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	return files, nil
}
