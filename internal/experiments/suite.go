// Package experiments reproduces every table and figure of the paper's
// evaluation. A Suite lazily builds the per-year datasets (corpora,
// oracle models, style statistics) at a configurable scale and exposes
// one runner per table/figure; each runner returns both structured
// results and a formatted text table annotated with the paper's
// reported values for comparison.
package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"gptattr/internal/attrib"
	"gptattr/internal/corpus"
	"gptattr/internal/fault"
	"gptattr/internal/gpt"
	"gptattr/internal/style"
	"gptattr/internal/stylometry"
)

// PointYearBuild is the fault-injection point at the head of every
// per-year dataset build (see internal/fault). Transient injected
// faults are absorbed by a bounded retry; a real build error fails the
// year immediately.
const (
	PointYearBuild = "experiments.year.build"
	yearRetries    = 3
	yearBackoff    = time.Millisecond
)

// Scale sets the experiment size. PaperScale mirrors the paper;
// QuickScale finishes in seconds for tests and benchmarks.
type Scale struct {
	// Authors per year (paper: 204).
	Authors int
	// Rounds per transformation setting and challenge (paper: 50).
	Rounds int
	// Trees in every random forest (paper setup used WEKA-style RFs;
	// we default to 100).
	Trees int
	// TopFeatures kept by information-gain selection.
	TopFeatures int
	// NumStyles in the simulated ChatGPT repertoire (paper observes a
	// maximum of 12).
	NumStyles int
	// Seed drives the whole suite deterministically.
	Seed int64
	// Verify behaviour-checks every transformation (slower).
	Verify bool
	// Workers bounds pipeline parallelism (feature extraction,
	// per-fold cross-validation, per-year suite entries); 0 means
	// GOMAXPROCS. Results are identical at any worker count.
	Workers int
}

// PaperScale reproduces the paper's dataset sizes.
var PaperScale = Scale{Authors: 204, Rounds: 50, Trees: 100, TopFeatures: 700, NumStyles: 12, Seed: 1, Verify: true}

// QuickScale is a fast, shape-preserving configuration.
var QuickScale = Scale{Authors: 24, Rounds: 6, Trees: 24, TopFeatures: 300, NumStyles: 8, Seed: 1, Verify: false}

// YearData caches one year's datasets and models.
type YearData struct {
	Year        int
	Human       *corpus.Corpus
	Profiles    []style.Profile
	Transformed *corpus.Corpus
	Oracle      *attrib.Oracle
	Stats       *attrib.StyleStats
}

// Suite runs the reproduction.
type Suite struct {
	scale Scale
	cache stylometry.FeatureCache
	ckpt  *Checkpoint

	mu    sync.Mutex
	years map[int]*yearSlot
}

// yearSlot guards one year's lazily built data, so different years can
// build concurrently while repeat requests for one year wait on its
// first build.
type yearSlot struct {
	once sync.Once
	yd   *YearData
	err  error
}

// NewSuite builds a suite at the given scale.
func NewSuite(scale Scale) *Suite {
	if scale.Authors <= 0 {
		scale = QuickScale
	}
	return &Suite{scale: scale, years: make(map[int]*yearSlot)}
}

// UseCache installs a feature cache shared by every experiment in the
// suite (see internal/featcache). Must be called before running
// experiments.
func (s *Suite) UseCache(c stylometry.FeatureCache) { s.cache = c }

// UseCheckpoint installs a crash-safe progress file: completed
// evaluation units are persisted as they finish and replayed on a
// later run instead of recomputed. Must be called before running
// experiments.
func (s *Suite) UseCheckpoint(c *Checkpoint) { s.ckpt = c }

// lookupUnit replays a checkpointed unit when a checkpoint is armed.
func (s *Suite) lookupUnit(key string, v any) (bool, error) {
	if s.ckpt == nil {
		return false, nil
	}
	return s.ckpt.Lookup(key, v)
}

// storeUnit persists a completed unit when a checkpoint is armed.
func (s *Suite) storeUnit(key string, v any) error {
	if s.ckpt == nil {
		return nil
	}
	return s.ckpt.Store(key, v)
}

// Scale reports the configured scale.
func (s *Suite) Scale() Scale { return s.scale }

func (s *Suite) workers() int {
	if s.scale.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return s.scale.Workers
}

func (s *Suite) attribConfig() attrib.Config {
	return attrib.Config{
		Trees:       s.scale.Trees,
		TopFeatures: s.scale.TopFeatures,
		Seed:        s.scale.Seed,
		Workers:     s.scale.Workers,
		Cache:       s.cache,
	}
}

// forYears runs fn once per dataset year on a bounded worker pool and
// joins the per-year errors. Callers index output slices by the year's
// position, so results stay ordered regardless of scheduling.
func (s *Suite) forYears(fn func(i, year int) error) error {
	years := Years()
	workers := s.workers()
	if workers > len(years) {
		workers = len(years)
	}
	if workers <= 1 {
		for i, y := range years {
			if err := fn(i, y); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(years))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				errs[i] = fn(i, years[i])
			}
		}()
	}
	for i := range years {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return errors.Join(errs...)
}

// Year lazily builds and caches one year's data. Concurrent calls for
// different years build in parallel; calls for the same year share one
// build.
func (s *Suite) Year(year int) (*YearData, error) {
	s.mu.Lock()
	slot, ok := s.years[year]
	if !ok {
		slot = &yearSlot{}
		s.years[year] = slot
	}
	s.mu.Unlock()
	slot.once.Do(func() {
		// Supervised build: transient injected faults (chaos tests arm
		// them Limit-bounded) retry; real errors surface immediately.
		slot.err = fault.Retry(yearRetries, yearBackoff, func() error {
			if err := fault.Hit(PointYearBuild); err != nil {
				return err
			}
			yd, err := s.buildYear(year)
			if err != nil {
				return err
			}
			slot.yd = yd
			return nil
		})
	})
	return slot.yd, slot.err
}

// buildYear constructs one year's corpora, oracle, and style stats.
func (s *Suite) buildYear(year int) (*YearData, error) {
	yd := &YearData{Year: year}
	var err error
	yd.Human, yd.Profiles, err = corpus.GenerateYear(corpus.YearConfig{
		Year:       year,
		NumAuthors: s.scale.Authors,
		Seed:       s.scale.Seed + int64(year),
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: year %d corpus: %w", year, err)
	}
	// The paper's three collection periods show very different style
	// concentration (one label at 77.1% in 2017 versus a three-way
	// split in 2018), consistent with model/prompt drift between
	// collection runs. The simulation reflects that with a per-year
	// sampling skew: 2017 heavily concentrated, 2018 flat, 2019 in
	// between.
	skew := map[int]float64{2017: 3.2, 2018: 1.0, 2019: 1.3}[year]
	// One simulated ChatGPT across all years (shared StyleSeed =>
	// shared repertoire); only the usage distribution drifts per
	// collection period, like the paper's year-to-year inconsistency.
	model := gpt.NewModel(gpt.Config{
		Seed:      s.scale.Seed*31 + int64(year),
		StyleSeed: s.scale.Seed*997 + 13,
		NumStyles: s.scale.NumStyles,
		Skew:      skew,
	})
	yd.Transformed, err = corpus.GenerateTransformed(corpus.TransformedConfig{
		Year:       year,
		Rounds:     s.scale.Rounds,
		Model:      model,
		Seed:       s.scale.Seed*17 + int64(year),
		SkipVerify: !s.scale.Verify,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: year %d transformed: %w", year, err)
	}
	yd.Oracle, err = attrib.TrainOracle(yd.Human, s.attribConfig())
	if err != nil {
		return nil, fmt.Errorf("experiments: year %d oracle: %w", year, err)
	}
	transFeats, err := attrib.ExtractAllCached(yd.Transformed, s.scale.Workers, s.cache)
	if err != nil {
		return nil, fmt.Errorf("experiments: year %d features: %w", year, err)
	}
	yd.Stats, err = attrib.AnalyzeStyles(yd.Oracle, yd.Transformed, transFeats)
	if err != nil {
		return nil, fmt.Errorf("experiments: year %d styles: %w", year, err)
	}
	return yd, nil
}

// Years lists the simulated dataset years.
func Years() []int { return []int{2017, 2018, 2019} }
