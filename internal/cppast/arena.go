package cppast

// Arena owns all memory for trees built by ParseTokens: per-type node
// slabs, bump-allocated child slices, and an intern table for composed
// type/name strings. A pooled Arena makes steady-state parsing
// allocation-free; Reset recycles the slabs for the next parse and
// invalidates every tree previously built from the arena.
//
// Arena-built trees are ordinary ASTs: child slices are capped at their
// length, so appending (as transformation passes do) copies out of the
// slab instead of clobbering a sibling, and nodes built by hand with
// struct literals mix freely with arena nodes.
type Arena struct {
	units     bump[TranslationUnit]
	preprocs  bump[Preproc]
	usings    bump[UsingDirective]
	typedefs  bump[TypedefDecl]
	unknowns  bump[Unknown]
	structs   bump[StructDecl]
	empties   bump[EmptyStmt]
	funcs     bump[FuncDecl]
	params    bump[Param]
	decltors  bump[Declarator]
	vardecls  bump[VarDecl]
	blocks    bump[Block]
	ifs       bump[If]
	fors      bump[For]
	whiles    bump[While]
	dos       bump[DoWhile]
	switches  bump[Switch]
	cases     bump[SwitchCase]
	returns   bump[Return]
	breaks    bump[Break]
	conts     bump[Continue]
	exprstmts bump[ExprStmt]
	binaries  bump[BinaryExpr]
	unaries   bump[UnaryExpr]
	ternaries bump[TernaryExpr]
	calls     bump[CallExpr]
	indexes   bump[IndexExpr]
	members   bump[MemberExpr]
	casts     bump[CastExpr]
	parens    bump[ParenExpr]
	idents    bump[Ident]
	lits      bump[Lit]

	// Backing stores for child slices, filled by copying spans off the
	// scratch stacks below once a node's child list is complete.
	nodeBack  bump[Node]
	paramBack bump[*Param]
	declBack  bump[*Declarator]
	caseBack  bump[*SwitchCase]

	// Scratch stacks shared by all in-flight child lists; mark/take
	// discipline keeps nested productions from interleaving.
	nodeStk  []Node
	paramStk []*Param
	declStk  []*Declarator
	caseStk  []*SwitchCase

	// String-building scratch. buf backs joins and recovery text, buf2
	// backs qualified-name composition (the two can be live at once),
	// parts collects type-name fragments before joining.
	buf   []byte
	buf2  []byte
	parts []string

	// intern deduplicates composed strings ("long long", "std::max",
	// "vector<int>") so steady-state reparses of similar code build no
	// new strings. It survives Reset; size and entry length are capped.
	intern map[string]string

	ps parser
}

// NewArena returns an empty arena. The zero value is also ready to use.
func NewArena() *Arena { return &Arena{} }

// Reset recycles the arena for the next parse. Every tree previously
// returned by ParseTokens with this arena becomes invalid: its nodes
// will be overwritten. The intern table is retained.
func (a *Arena) Reset() {
	a.units.reset()
	a.preprocs.reset()
	a.usings.reset()
	a.typedefs.reset()
	a.unknowns.reset()
	a.structs.reset()
	a.empties.reset()
	a.funcs.reset()
	a.params.reset()
	a.decltors.reset()
	a.vardecls.reset()
	a.blocks.reset()
	a.ifs.reset()
	a.fors.reset()
	a.whiles.reset()
	a.dos.reset()
	a.switches.reset()
	a.cases.reset()
	a.returns.reset()
	a.breaks.reset()
	a.conts.reset()
	a.exprstmts.reset()
	a.binaries.reset()
	a.unaries.reset()
	a.ternaries.reset()
	a.calls.reset()
	a.indexes.reset()
	a.members.reset()
	a.casts.reset()
	a.parens.reset()
	a.idents.reset()
	a.lits.reset()
	a.nodeBack.reset()
	a.paramBack.reset()
	a.declBack.reset()
	a.caseBack.reset()
	a.nodeStk = a.nodeStk[:0]
	a.paramStk = a.paramStk[:0]
	a.declStk = a.declStk[:0]
	a.caseStk = a.caseStk[:0]
	a.buf = a.buf[:0]
	a.buf2 = a.buf2[:0]
	a.parts = a.parts[:0]
	a.ps = parser{}
}

const (
	maxInternEntries = 4096
	maxInternLen     = 96
)

// internBytes returns b as a string, deduplicated through the intern
// table when small enough. The map lookup on a []byte key does not
// allocate; only first-seen strings do.
func (a *Arena) internBytes(b []byte) string {
	if s, ok := a.intern[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(s) <= maxInternLen && len(a.intern) < maxInternEntries {
		if a.intern == nil {
			a.intern = make(map[string]string, 64)
		}
		a.intern[s] = s
	}
	return s
}

// bump is a grow-by-abandonment slab: alloc and take hand out slots in
// buf, and when buf fills, a larger one replaces it — previously handed
// out pointers keep the old array alive, so nothing moves. reset keeps
// only the newest (largest) buffer, which is what makes a pooled arena
// converge to zero steady-state allocations.
type bump[T any] struct{ buf []T }

func (b *bump[T]) grow(n int) {
	c := 2 * cap(b.buf)
	if c < 64 {
		c = 64
	}
	if c < n {
		c = n
	}
	b.buf = make([]T, 0, c)
}

func (b *bump[T]) reset() { b.buf = b.buf[:0] }

// alloc returns a pointer to a zeroed slot.
func alloc[T any](b *bump[T]) *T {
	if len(b.buf) == cap(b.buf) {
		b.grow(1)
	}
	var zero T
	b.buf = append(b.buf, zero)
	return &b.buf[len(b.buf)-1]
}

// take copies src into the slab and returns the copy, capped at its
// length so a later append by tree-mutating callers reallocates instead
// of overwriting the adjacent sibling slice.
func (b *bump[T]) take(src []T) []T {
	n := len(src)
	if n == 0 {
		return nil
	}
	if cap(b.buf)-len(b.buf) < n {
		b.grow(n)
	}
	s := len(b.buf)
	b.buf = b.buf[:s+n]
	out := b.buf[s : s+n : s+n]
	copy(out, src)
	return out
}
