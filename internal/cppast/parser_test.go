package cppast

import (
	"testing"
	"time"
)

// figure3 is the original code from the paper's Figure 3 (the GCJ
// "Cruise Control"-style horse race problem), lightly fixed for the
// typos introduced by the paper's typesetting.
const figure3 = `#include <iostream>
#include <algorithm>
using namespace std;
int main() {
    int nCase;
    cin >> nCase;
    for (int iCase = 1; iCase <= nCase; ++iCase) {
        int d, n;
        double t = 0;
        cin >> d >> n;
        for (int i = 0; i < n; ++i) {
            int x, y;
            cin >> x >> y;
            x = d - x;
            t = max(t, (double)x / (double)y);
        }
        printf("Case #%d: %.6lf\n", iCase, (double)d / t);
    }
}`

// figure4a is the paper's first NCT transformation of figure3.
const figure4a = `#include <iostream>
#include <algorithm>
#include <cstdio>
using namespace std;
double solveTestCase(int d, int n) {
    double maxTime = 0;
    for (int i = 0; i < n; ++i) {
        int x, y;
        cin >> x >> y;
        x = d - x;
        maxTime = max(maxTime, (double)x / (double)y);
    }
    return (double)d / maxTime;
}
int main() {
    int numCase;
    cin >> numCase;
    for (int iCase = 1; iCase <= numCase; ++iCase) {
        int distance, numHorses;
        cin >> distance >> numHorses;
        double result = solveTestCase(distance, numHorses);
        printf("Case #%d: %.6lf\n", iCase, result);
    }
}`

func TestParseFigure3(t *testing.T) {
	tu, err := Parse(figure3)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	main := tu.Function("main")
	if main == nil {
		t.Fatal("main not found")
	}
	if main.RetType != "int" {
		t.Errorf("main return type = %q, want int", main.RetType)
	}
	kinds := CountKinds(tu)
	if kinds["Unknown"] != 0 {
		t.Errorf("figure3 produced %d Unknown nodes", kinds["Unknown"])
	}
	if kinds["For"] != 2 {
		t.Errorf("For count = %d, want 2", kinds["For"])
	}
	if kinds["CastExpr"] != 3 {
		t.Errorf("CastExpr count = %d, want 3", kinds["CastExpr"])
	}
	if kinds["Preproc"] != 2 {
		t.Errorf("Preproc count = %d, want 2", kinds["Preproc"])
	}
	if kinds["Using"] != 1 {
		t.Errorf("Using count = %d, want 1", kinds["Using"])
	}
}

func TestParseFigure4aFunctions(t *testing.T) {
	tu, err := Parse(figure4a)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	fns := tu.Functions()
	if len(fns) != 2 {
		t.Fatalf("got %d functions, want 2", len(fns))
	}
	solve := tu.Function("solveTestCase")
	if solve == nil {
		t.Fatal("solveTestCase not found")
	}
	if len(solve.Params) != 2 {
		t.Fatalf("solveTestCase has %d params, want 2", len(solve.Params))
	}
	if solve.Params[0].Type != "int" || solve.Params[0].Name != "d" {
		t.Errorf("param 0 = (%q, %q), want (int, d)", solve.Params[0].Type, solve.Params[0].Name)
	}
	if solve.RetType != "double" {
		t.Errorf("return type = %q, want double", solve.RetType)
	}
	if CountKinds(tu)["Unknown"] != 0 {
		t.Errorf("figure4a produced Unknown nodes")
	}
}

func TestParseStatements(t *testing.T) {
	tests := []struct {
		name string
		body string
		want map[string]int // node kind -> exact count within the function subtree
	}{
		{
			name: "if else chain",
			body: "if (a) x = 1; else if (b) x = 2; else x = 3;",
			want: map[string]int{"If": 2},
		},
		{
			name: "while",
			body: "while (n--) { s += n; }",
			want: map[string]int{"While": 1, "Block": 2},
		},
		{
			name: "do while",
			body: "do { n /= 2; } while (n > 0);",
			want: map[string]int{"DoWhile": 1},
		},
		{
			name: "switch",
			body: "switch (k) { case 1: x = 1; break; case 2: x = 2; break; default: x = 0; }",
			want: map[string]int{"Switch": 1, "SwitchCase": 3, "Break": 2},
		},
		{
			name: "nested for",
			body: "for (int i = 0; i < n; i++) for (int j = 0; j < m; j++) s += i * j;",
			want: map[string]int{"For": 2},
		},
		{
			name: "multi declarator",
			body: "int a = 1, b, c = 3;",
			want: map[string]int{"VarDecl": 1, "Declarator": 3},
		},
		{
			name: "array decl",
			body: "int arr[100]; double grid[10][20];",
			want: map[string]int{"VarDecl": 2, "Declarator": 2},
		},
		{
			name: "ternary",
			body: "int m = a > b ? a : b;",
			want: map[string]int{"TernaryExpr": 1},
		},
		{
			name: "stream io",
			body: "cin >> a >> b; cout << a + b << endl;",
			want: map[string]int{"BinaryExpr": 5},
		},
		{
			name: "break continue",
			body: "for (;;) { if (x) break; continue; }",
			want: map[string]int{"Break": 1, "Continue": 1, "For": 1},
		},
		{
			name: "empty statement",
			body: ";;",
			want: map[string]int{"EmptyStmt": 2},
		},
		{
			name: "constructor init",
			body: "vector<int> v(n); string s(x);",
			want: map[string]int{"VarDecl": 2},
		},
		{
			name: "member call",
			body: "v.push_back(3); n = v.size();",
			want: map[string]int{"MemberExpr": 2, "CallExpr": 2},
		},
		{
			name: "range for",
			body: "for (auto x : xs) s += x;",
			want: map[string]int{"For": 1},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			src := "int main() {\n" + tt.body + "\n}"
			tu, err := Parse(src)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			kinds := CountKinds(tu)
			if kinds["Unknown"] != 0 {
				t.Errorf("Unknown nodes: %d (body %q)", kinds["Unknown"], tt.body)
			}
			for k, want := range tt.want {
				if kinds[k] != want {
					t.Errorf("%s count = %d, want %d", k, kinds[k], want)
				}
			}
		})
	}
}

func TestParseExprPrecedence(t *testing.T) {
	// a + b * c must parse as a + (b * c).
	tu := MustParse("int main() { x = a + b * c; }")
	main := tu.Function("main")
	es := main.Body.Stmts[0].(*ExprStmt)
	assign := es.X.(*BinaryExpr)
	if assign.Op != "=" {
		t.Fatalf("root op = %q, want =", assign.Op)
	}
	add := assign.R.(*BinaryExpr)
	if add.Op != "+" {
		t.Fatalf("rhs op = %q, want +", add.Op)
	}
	mul := add.R.(*BinaryExpr)
	if mul.Op != "*" {
		t.Fatalf("inner op = %q, want *", mul.Op)
	}
}

func TestParseRightAssociativeAssignment(t *testing.T) {
	tu := MustParse("int main() { a = b = c; }")
	es := tu.Function("main").Body.Stmts[0].(*ExprStmt)
	outer := es.X.(*BinaryExpr)
	if outer.Op != "=" {
		t.Fatalf("outer op %q", outer.Op)
	}
	if l, ok := outer.L.(*Ident); !ok || l.Name != "a" {
		t.Fatalf("left of outer assignment = %#v, want ident a", outer.L)
	}
	inner, ok := outer.R.(*BinaryExpr)
	if !ok || inner.Op != "=" {
		t.Fatalf("right of outer assignment = %#v, want inner assignment", outer.R)
	}
}

func TestParseStreamChainLeftAssociative(t *testing.T) {
	tu := MustParse("int main() { cin >> a >> b >> c; }")
	es := tu.Function("main").Body.Stmts[0].(*ExprStmt)
	outer := es.X.(*BinaryExpr)
	if outer.Op != ">>" {
		t.Fatalf("outer op %q", outer.Op)
	}
	if r, ok := outer.R.(*Ident); !ok || r.Name != "c" {
		t.Fatalf("rightmost operand = %#v, want c", outer.R)
	}
	mid := outer.L.(*BinaryExpr)
	if l, ok := mid.L.(*BinaryExpr); !ok || l.Op != ">>" {
		t.Fatalf("chain shape wrong: %#v", mid.L)
	}
}

func TestParseCasts(t *testing.T) {
	tests := []struct {
		src       string
		wantCasts int
	}{
		{"int main() { t = (double)x / (double)y; }", 2},
		{"int main() { t = double(x) / y; }", 1},
		{"int main() { t = (long long)a * b; }", 1},
		{"int main() { t = (a) * b; }", 0}, // paren expr, not a cast
		{"int main() { t = (unsigned int)z; }", 1},
	}
	for _, tt := range tests {
		kinds := CountKinds(MustParse(tt.src))
		if kinds["CastExpr"] != tt.wantCasts {
			t.Errorf("%q: casts = %d, want %d", tt.src, kinds["CastExpr"], tt.wantCasts)
		}
		if kinds["Unknown"] != 0 {
			t.Errorf("%q: unknown nodes present", tt.src)
		}
	}
}

func TestParseRecovery(t *testing.T) {
	// A lambda is outside the subset; the parser must produce an Unknown
	// node and keep going.
	src := `int main() {
    int a = 1;
    auto f = [](int v) { return v * 2; };
    int b = 2;
}`
	tu, _ := Parse(src)
	main := tu.Function("main")
	if main == nil {
		t.Fatal("main lost during recovery")
	}
	kinds := CountKinds(tu)
	if kinds["Unknown"] == 0 {
		t.Error("expected at least one Unknown node for the lambda")
	}
	if kinds["VarDecl"] < 2 {
		t.Errorf("VarDecl count = %d, want >= 2 (statements around the lambda)", kinds["VarDecl"])
	}
}

func TestParseRecoveryTopLevel(t *testing.T) {
	src := `@@@ garbage @@@
int ok() { return 1; }`
	tu, _ := Parse(src)
	if tu.Function("ok") == nil {
		t.Fatal("function after garbage not recovered")
	}
}

func TestParseGlobalsTypedefUsing(t *testing.T) {
	src := `#include <vector>
using namespace std;
typedef long long ll;
const int MAXN = 100005;
int memo[MAXN];
ll solve(ll x) { return x * 2; }
int main() { return 0; }`
	tu, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	kinds := CountKinds(tu)
	for k, want := range map[string]int{
		"Typedef": 1, "Using": 1, "Preproc": 1, "FuncDecl": 2, "Unknown": 0,
	} {
		if kinds[k] != want {
			t.Errorf("%s = %d, want %d", k, kinds[k], want)
		}
	}
	// Globals: MAXN and memo.
	var globals int
	for _, d := range tu.Decls {
		if _, ok := d.(*VarDecl); ok {
			globals++
		}
	}
	if globals != 2 {
		t.Errorf("global VarDecls = %d, want 2", globals)
	}
}

func TestParseStructDecl(t *testing.T) {
	src := `struct Point { int x; int y; };
int main() { return 0; }`
	tu, _ := Parse(src)
	var sd *StructDecl
	for _, d := range tu.Decls {
		if s, ok := d.(*StructDecl); ok {
			sd = s
		}
	}
	if sd == nil {
		t.Fatal("struct not parsed")
	}
	if sd.Name != "Point" || len(sd.Members) != 2 {
		t.Errorf("struct = %q with %d members, want Point with 2", sd.Name, len(sd.Members))
	}
}

func TestParseReferenceParams(t *testing.T) {
	tu := MustParse("void f(int &x, const vector<int> &v, double y) {}")
	f := tu.Function("f")
	if f == nil {
		t.Fatal("f not found")
	}
	if len(f.Params) != 3 {
		t.Fatalf("params = %d, want 3", len(f.Params))
	}
	if !f.Params[0].Ref || !f.Params[1].Ref || f.Params[2].Ref {
		t.Errorf("ref flags = %v %v %v, want true true false",
			f.Params[0].Ref, f.Params[1].Ref, f.Params[2].Ref)
	}
	if f.Params[1].Type != "const vector<int> &" {
		t.Errorf("param 1 type = %q", f.Params[1].Type)
	}
}

func TestMaxDepthAndWalk(t *testing.T) {
	tu := MustParse("int main() { if (a) { while (b) { x = y + z * w; } } }")
	d := MaxDepth(tu)
	// TU > FuncDecl > Block > If > Block > While > Block > ExprStmt >
	// BinaryExpr(=) > BinaryExpr(+) > BinaryExpr(*) > Ident.
	if d < 10 {
		t.Errorf("MaxDepth = %d, want >= 10", d)
	}
	var visited int
	Walk(tu, func(n Node, depth int) bool {
		visited++
		return true
	})
	if visited < 15 {
		t.Errorf("Walk visited %d nodes, want >= 15", visited)
	}
	// Pruning: skip function bodies.
	var pruned int
	Walk(tu, func(n Node, depth int) bool {
		pruned++
		return n.Kind() != "FuncDecl"
	})
	if pruned != 2 { // TU + FuncDecl
		t.Errorf("pruned walk visited %d nodes, want 2", pruned)
	}
}

func TestParseTemplateFunction(t *testing.T) {
	src := `template <typename T>
T sq(T x) { return x * x; }
int main() { return 0; }`
	tu, _ := Parse(src)
	if tu.Function("sq") == nil {
		t.Error("template function sq not parsed")
	}
}

func TestParseCommaOperatorInFor(t *testing.T) {
	tu := MustParse("int main() { int i, j; for (i = 0, j = 9; i < j; i++, j--) {} }")
	kinds := CountKinds(tu)
	if kinds["Unknown"] != 0 {
		t.Errorf("comma-for produced Unknown nodes")
	}
	if kinds["For"] != 1 {
		t.Errorf("For = %d, want 1", kinds["For"])
	}
}

func TestParsePreprocInsideFunction(t *testing.T) {
	src := "int main() {\n#ifdef DEBUG\n    x = 1;\n#endif\n    return 0;\n}"
	tu, _ := Parse(src)
	kinds := CountKinds(tu)
	if kinds["Preproc"] != 2 {
		t.Errorf("Preproc = %d, want 2", kinds["Preproc"])
	}
	if tu.Function("main") == nil {
		t.Error("main not parsed")
	}
}

func TestLinePositions(t *testing.T) {
	tu := MustParse("int main() {\n  int x = 1;\n  x++;\n}")
	main := tu.Function("main")
	if main.Line() != 1 {
		t.Errorf("main at line %d, want 1", main.Line())
	}
	if got := main.Body.Stmts[0].Line(); got != 2 {
		t.Errorf("first stmt at line %d, want 2", got)
	}
	if got := main.Body.Stmts[1].Line(); got != 3 {
		t.Errorf("second stmt at line %d, want 3", got)
	}
}

func TestParseMalformedParamListTerminates(t *testing.T) {
	// Regression: an unparseable parameter followed by a comma used to
	// loop forever — skipToCommaOrClose stopped at the separator and
	// the retry never advanced past it (found by FuzzBuildCFG).
	for _, src := range []string{
		"A A({retw,",
		"int f({,{,{, int x) { return 0; }",
		"int f(,,,) { return 1; } int main() { return f(); }",
	} {
		done := make(chan struct{})
		go func() {
			_, _ = Parse(src)
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("parser hung on %q", src)
		}
	}
}
