package stylometry

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"gptattr/internal/fault"
	"gptattr/internal/ml"
)

// PointExtract is the fault-injection point on the per-sample
// extraction path (see internal/fault). Injected transient errors and
// injected panics are absorbed by the bounded retry supervisor;
// non-injected panics are contained into per-sample errors.
const PointExtract = "stylometry.extract"

// extractRetries and extractBackoff bound the retry-with-backoff
// supervisor around transient extraction faults.
const (
	extractRetries = 3
	extractBackoff = time.Millisecond
)

// FeatureCache is a pluggable source->Features cache consulted before
// extraction (see internal/featcache for the content-addressed
// implementation with an in-memory LRU and an optional on-disk layer).
// Implementations must be safe for concurrent use and must return
// feature maps the caller may treat as read-only.
type FeatureCache interface {
	Get(src string) (Features, bool)
	Put(src string, f Features)
}

// ExtractConfig controls parallel feature extraction.
type ExtractConfig struct {
	// Workers bounds the extraction worker pool; 0 means GOMAXPROCS.
	Workers int
	// Cache, when non-nil, is consulted before extracting and updated
	// after.
	Cache FeatureCache
}

func (c ExtractConfig) workers(n int) int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ExtractError records which source of a batch failed to extract.
type ExtractError struct {
	Index int
	Err   error
}

func (e *ExtractError) Error() string {
	return fmt.Sprintf("stylometry: source %d: %v", e.Index, e.Err)
}

func (e *ExtractError) Unwrap() error { return e.Err }

// ExtractAll computes features for every source on a bounded worker
// pool, preserving input order. Results are deterministic for any
// worker count: each output slot is written only by the worker that
// drew its index. The first failing source is reported as an
// *ExtractError.
func ExtractAll(sources []string, cfg ExtractConfig) ([]Features, error) {
	out, errs := ExtractEach(sources, cfg)
	for i, err := range errs {
		if err != nil {
			return nil, &ExtractError{Index: i, Err: err}
		}
	}
	return out, nil
}

// ExtractEach is the batch entry point behind ExtractAll: it computes
// features for every source on the same bounded worker pool but
// reports per-source errors instead of failing the whole batch. A
// serving layer coalescing independent requests into one batch needs
// this — one malformed request must not poison its batch-mates.
// out[i] is valid iff errs[i] is nil.
func ExtractEach(sources []string, cfg ExtractConfig) (out []Features, errs []error) {
	out, _, errs = ExtractEachDegraded(nil, sources, DegradeNone, cfg)
	return out, errs
}

// ExtractEachDegraded is ExtractEach with per-source budgets and a
// brownout floor: ctxs[i] (nil = no budget; ctxs itself may be nil)
// bounds source i's extraction, and force is the admission
// controller's current degrade level — every vector is extracted at
// least that degraded. levels[i] reports each vector's actual level
// (budget exhaustion can push it past force). Worker scheduling never
// affects content: each slot is written only by the worker that drew
// its index, and a degraded vector's features depend only on its
// level.
func ExtractEachDegraded(ctxs []context.Context, sources []string, force DegradeLevel,
	cfg ExtractConfig) (out []Features, levels []DegradeLevel, errs []error) {
	out = make([]Features, len(sources))
	levels = make([]DegradeLevel, len(sources))
	errs = make([]error, len(sources))
	ctxAt := func(i int) context.Context {
		if i < len(ctxs) && ctxs[i] != nil {
			return ctxs[i]
		}
		return context.Background()
	}
	workers := cfg.workers(len(sources))
	if workers == 1 {
		for i, src := range sources {
			out[i], levels[i], errs[i] = extractCached(ctxAt(i), src, force, cfg.Cache)
		}
		return out, levels, errs
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i], levels[i], errs[i] = extractCached(ctxAt(i), sources[i], force, cfg.Cache)
			}
		}()
	}
	for i := range sources {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out, levels, errs
}

// PanicError is a panic contained by the extraction worker pool and
// converted into a per-sample error. A panicking sample fails alone —
// with provenance — instead of killing the whole run; ExtractAll
// callers see it wrapped in an *ExtractError carrying the sample
// index, and the attrib layer adds author/challenge provenance.
type PanicError struct {
	// Value is the stringified panic value.
	Value string
	// Stack is the panicking goroutine's stack (empty for injected
	// panics, which have no diagnostic value).
	Stack []byte
	// injected marks fault-injected panics as transient so the retry
	// supervisor absorbs them.
	injected bool
}

// Error describes the contained panic.
func (e *PanicError) Error() string {
	return fmt.Sprintf("stylometry: extraction panicked: %s", e.Value)
}

// Transient reports whether the panic was fault-injected (retryable).
func (e *PanicError) Transient() bool { return e.injected }

// safeExtract runs one extraction with panic containment: a panic —
// injected or real — becomes an error instead of unwinding the worker
// goroutine and killing the process.
func safeExtract(ctx context.Context, src string, force DegradeLevel) (f Features, level DegradeLevel, err error) {
	defer func() {
		if r := recover(); r != nil {
			if pv, ok := r.(fault.PanicValue); ok {
				err = &PanicError{Value: pv.String(), injected: true}
				return
			}
			err = &PanicError{Value: fmt.Sprint(r), Stack: debug.Stack()}
		}
	}()
	if err := fault.HitContext(ctx, PointExtract); err != nil {
		return nil, force, err
	}
	return ExtractDegraded(ctx, src, force)
}

// extractCached is the per-source serving path: cache lookup, then
// supervised budgeted extraction. A cache hit is always a full
// (level-0) vector regardless of the forced floor — the cached work is
// already paid for, so the cache absorbs degradation; conversely only
// full vectors are ever cached, so a brownout never poisons the cache
// with partial vectors.
func extractCached(ctx context.Context, src string, force DegradeLevel, cache FeatureCache) (Features, DegradeLevel, error) {
	if cache != nil {
		if f, ok := cache.Get(src); ok {
			return f, DegradeNone, nil
		}
	}
	var f Features
	level := force
	err := fault.Retry(extractRetries, extractBackoff, func() error {
		var rerr error
		f, level, rerr = safeExtract(ctx, src, force)
		return rerr
	})
	if err != nil {
		return nil, level, err
	}
	if cache != nil && level == DegradeNone {
		cache.Put(src, f)
	}
	return f, level, nil
}

// BuildDatasetWith extracts features for every source (in parallel,
// through the optional cache), learns a vectorizer on them, and
// assembles an ml.Dataset with the given labels. The vocabulary is
// learned from the documents in input order and column names are
// sorted, so the dataset is bit-identical at any worker count.
func BuildDatasetWith(sources []string, labels []int, numClasses int,
	cfg VectorizerConfig, ex ExtractConfig) (*ml.Dataset, *Vectorizer, error) {
	docs, err := ExtractAll(sources, ex)
	if err != nil {
		return nil, nil, err
	}
	v := NewVectorizer(docs, cfg)
	d := &ml.Dataset{
		Y:            labels,
		NumClasses:   numClasses,
		FeatureNames: v.FeatureNames(),
	}
	d.X = make([][]float64, len(docs))
	for i, doc := range docs {
		d.X[i] = v.Vector(doc)
	}
	return d, v, nil
}
