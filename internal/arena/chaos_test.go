package arena

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"gptattr/internal/fault"
	"gptattr/internal/transform"
)

// attackTable renders the deterministic artifact a fault storm must
// not perturb: per-budget campaign outcomes over the fixture oracle,
// run through the parallel driver.
func attackTable(t *testing.T) string {
	t.Helper()
	oracle := NewLocalOracle(testOracle(t))
	cases := victimCases(t, "A001", 3)
	if len(cases) == 0 {
		t.Skip("no attackable files")
	}
	targets := make([]Target, len(cases))
	for i, vc := range cases {
		targets[i] = Target{ID: vc.id, Source: vc.source, TrueAuthor: vc.author, VerifyInputs: vc.inputs}
	}
	var sb strings.Builder
	for _, budget := range []int{10, 25} {
		res, err := AttackAll(context.Background(), oracle, targets,
			Config{Budget: budget, Seed: 42}, 2)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		for i, r := range res {
			fmt.Fprintf(&sb, "b%d %s success=%v pred=%s p=%.6f evals=%d gate=%d/%d trace=%v\n",
				budget, targets[i].ID, r.Success, r.Predicted, r.TrueAuthorProb,
				r.Evaluations, r.GateRejects, r.GateChecks, r.Trace)
		}
	}
	return sb.String()
}

// arenaStorm arms the search-loop fault points. All are Limit-bounded
// strictly below the retry supervisors' budgets (3 attempts tolerate 2
// consecutive transient failures), which is what lets the test demand
// bit-identical output rather than mere completion.
func arenaStorm(seed int64, kind fault.Kind) {
	fault.Enable(seed)
	fault.Set(PointOracle, fault.Policy{Kind: kind, Limit: 2, Latency: time.Millisecond})
	fault.Set(PointVerify, fault.Policy{Kind: kind, Limit: 2, Latency: time.Millisecond})
	fault.Set(transform.PointVerifyInterp, fault.Policy{Kind: kind, Limit: 2, Latency: time.Millisecond})
}

// TestAttackTableIdenticalUnderFaultStorm is the arena's chaos gate:
// a seeded storm across the oracle, gate, and interpreter fault
// points must leave the attack table byte-identical to a clean run.
func TestAttackTableIdenticalUnderFaultStorm(t *testing.T) {
	defer fault.Disable()
	fault.Disable()
	want := attackTable(t)

	storms := []struct {
		seed int64
		kind fault.Kind
	}{
		{111, fault.KindError},
		{222, fault.KindLatency},
		{333, fault.KindError},
	}
	for _, st := range storms {
		arenaStorm(st.seed, st.kind)
		got := attackTable(t)
		stats := fault.Stats()
		fault.Disable()
		if got != want {
			t.Fatalf("seed %d (%v): storm output diverged\n--- clean ---\n%s\n--- storm ---\n%s",
				st.seed, st.kind, want, got)
		}
		fired := uint64(0)
		for _, ps := range stats {
			fired += ps.Fires
		}
		if fired == 0 {
			t.Fatalf("seed %d: no fault ever fired; the storm proves nothing", st.seed)
		}
		t.Logf("seed %d (%v): identical attack table through %d fired faults", st.seed, st.kind, fired)
	}
}

// TestAttackSurfacesUnboundedStorm pins the failure mode: a storm
// exceeding the retry budget is an error, never a silently different
// verdict.
func TestAttackSurfacesUnboundedStorm(t *testing.T) {
	defer fault.Disable()
	fault.Enable(9)
	fault.Set(PointOracle, fault.Policy{Kind: fault.KindError})
	_, err := Attack(context.Background(), constOracle{"A002"}, tinySrc,
		Goal{TrueAuthor: "A001"}, Config{Budget: 5, Seed: 1})
	if err == nil {
		t.Fatal("persistent oracle faults did not surface as an error")
	}
}
