// Package evade implements the Monte-Carlo tree search evasion attack
// of Quiring et al. (USENIX Security 2019) that the paper builds on:
// given a trained attribution model and a source file, search over
// sequences of style transformations for a variant that the model no
// longer attributes to the true author — while provably preserving
// behaviour. The paper reports MCTS reaching up to a 99% untargeted
// evasion rate; this package reproduces the attack against the
// repository's own oracle and is exercised as an experiment extension.
package evade

import (
	"fmt"
	"math"
	"math/rand"

	"gptattr/internal/cppast"
	"gptattr/internal/cppprint"
	"gptattr/internal/style"
	"gptattr/internal/transform"
)

// Action is one atomic transformation move in the search space.
type Action struct {
	// Name describes the move for traces.
	Name string
	// Apply rewrites the tree in place.
	Apply func(tu *cppast.TranslationUnit)
	// Print renders the tree after this action's pipeline; nil keeps
	// the previous config.
	Print *cppprint.Config
}

// ActionSpace returns the default move set: naming conversions, I/O
// conversion, loop conversion, namespace toggles, structure changes,
// and layout reconfigurations.
func ActionSpace() []Action {
	var out []Action
	for _, n := range []style.Naming{
		style.NamingCamel, style.NamingSnake, style.NamingHungarian,
		style.NamingShort, style.NamingVerbose,
	} {
		n := n
		out = append(out, Action{
			Name:  "rename-" + n.String(),
			Apply: func(tu *cppast.TranslationUnit) { transform.Rename(tu, n) },
		})
	}
	out = append(out,
		Action{Name: "io-stdio", Apply: func(tu *cppast.TranslationUnit) { transform.ConvertIO(tu, transform.ToStdio) }},
		Action{Name: "io-streams", Apply: func(tu *cppast.TranslationUnit) { transform.ConvertIO(tu, transform.ToStreams) }},
		Action{Name: "for-to-while", Apply: transform.ForToWhile},
		Action{Name: "while-to-for", Apply: transform.WhileToFor},
		Action{Name: "use-namespace", Apply: func(tu *cppast.TranslationUnit) { transform.SetUsingNamespace(tu, true) }},
		Action{Name: "qualify-std", Apply: func(tu *cppast.TranslationUnit) { transform.SetUsingNamespace(tu, false) }},
		Action{Name: "pre-increment", Apply: func(tu *cppast.TranslationUnit) { transform.SetIncrementStyle(tu, true) }},
		Action{Name: "post-increment", Apply: func(tu *cppast.TranslationUnit) { transform.SetIncrementStyle(tu, false) }},
		Action{Name: "extract-solve", Apply: func(tu *cppast.TranslationUnit) { transform.ExtractSolve(tu, "solveCase") }},
		Action{Name: "inline-helpers", Apply: func(tu *cppast.TranslationUnit) { transform.InlineVoidCalls(tu) }},
		Action{Name: "strip-comments", Apply: transform.StripComments},
	)
	layouts := []struct {
		name string
		cfg  cppprint.Config
	}{
		{"layout-allman-tabs", cppprint.Config{Allman: true, IndentTabs: true}},
		{"layout-kr-2sp", cppprint.Config{IndentWidth: 2}},
		{"layout-kr-tight", cppprint.Config{TightOps: true, TightCommas: true}},
		{"layout-allman-8sp", cppprint.Config{Allman: true, IndentWidth: 8}},
	}
	for _, l := range layouts {
		cfg := l.cfg
		out = append(out, Action{
			Name:  l.name,
			Apply: func(*cppast.TranslationUnit) {},
			Print: &cfg,
		})
	}
	return out
}

// Scorer judges a candidate: it returns the probability mass the
// attribution model assigns to the TRUE author (lower is better for
// the attacker) and the predicted label.
type Scorer interface {
	Score(src string) (trueAuthorProb float64, predicted string, err error)
}

// Config controls the search.
type Config struct {
	// Iterations is the MCTS budget (default 60).
	Iterations int
	// MaxDepth is the transformation-sequence length cap (default 4).
	MaxDepth int
	// Exploration is the UCT constant (default 1.2).
	Exploration float64
	// Seed drives rollouts.
	Seed int64
	// VerifyInputs: behaviour must be preserved on these inputs; a
	// candidate failing verification scores worst.
	VerifyInputs []string
}

func (c Config) withDefaults() Config {
	if c.Iterations <= 0 {
		c.Iterations = 60
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 4
	}
	if c.Exploration <= 0 {
		c.Exploration = 1.2
	}
	return c
}

// Result is the attack outcome.
type Result struct {
	// Evaded is true when the best variant is no longer attributed to
	// the true author.
	Evaded bool
	// Source is the best variant found.
	Source string
	// Predicted is the model's label for Source.
	Predicted string
	// TrueAuthorProb is the model's vote share for the true author on
	// Source.
	TrueAuthorProb float64
	// Trace is the winning action sequence.
	Trace []string
	// Evaluations counts scorer calls.
	Evaluations int
}

// node is one MCTS tree node; children expand lazily over the action
// space.
type node struct {
	parent   *node
	action   int // index into the action space; -1 at root
	children []*node
	visits   int
	value    float64 // cumulative reward (1 - trueAuthorProb)
	depth    int
}

// Attack runs MCTS over transformation sequences starting from src by
// the given true author.
func Attack(src, trueAuthor string, scorer Scorer, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	actions := ActionSpace()

	baseProb, basePred, err := scorer.Score(src)
	if err != nil {
		return nil, fmt.Errorf("evade: scoring original: %w", err)
	}
	best := &Result{
		Source:         src,
		Predicted:      basePred,
		TrueAuthorProb: baseProb,
		Evaded:         basePred != trueAuthor,
	}

	root := &node{action: -1}
	evals := 0

	// render applies an action sequence to the original and reprints.
	render := func(seq []int) (string, bool) {
		tu := cppast.MustParse(src)
		printCfg := cppprint.Config{}
		for _, ai := range seq {
			a := actions[ai]
			a.Apply(tu)
			if a.Print != nil {
				printCfg = *a.Print
			}
		}
		transform.RegenerateHeaders(tu, false)
		out := cppprint.Print(tu, printCfg)
		if len(cfg.VerifyInputs) > 0 {
			if err := transform.Verify(src, out, cfg.VerifyInputs); err != nil {
				return "", false
			}
		}
		return out, true
	}

	seqOf := func(n *node) []int {
		var rev []int
		for cur := n; cur != nil && cur.action >= 0; cur = cur.parent {
			rev = append(rev, cur.action)
		}
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		return rev
	}

	for it := 0; it < cfg.Iterations; it++ {
		// Selection: UCT descent until a node with unexpanded moves or
		// max depth.
		cur := root
		for cur.depth < cfg.MaxDepth && len(cur.children) == len(actions) {
			bestChild, bestUCT := (*node)(nil), math.Inf(-1)
			for _, ch := range cur.children {
				var uct float64
				if ch.visits == 0 {
					uct = math.Inf(1)
				} else {
					uct = ch.value/float64(ch.visits) +
						cfg.Exploration*math.Sqrt(math.Log(float64(cur.visits+1))/float64(ch.visits))
				}
				if uct > bestUCT {
					bestChild, bestUCT = ch, uct
				}
			}
			if bestChild == nil {
				break
			}
			cur = bestChild
		}
		// Expansion.
		if cur.depth < cfg.MaxDepth {
			tried := make(map[int]bool, len(cur.children))
			for _, ch := range cur.children {
				tried[ch.action] = true
			}
			var untried []int
			for ai := range actions {
				if !tried[ai] {
					untried = append(untried, ai)
				}
			}
			if len(untried) > 0 {
				ai := untried[rng.Intn(len(untried))]
				child := &node{parent: cur, action: ai, depth: cur.depth + 1}
				cur.children = append(cur.children, child)
				cur = child
			}
		}
		// Rollout: random completion up to MaxDepth.
		seq := seqOf(cur)
		for len(seq) < cfg.MaxDepth && rng.Float64() < 0.5 {
			seq = append(seq, rng.Intn(len(actions)))
		}
		reward := 0.0
		if out, ok := render(seq); ok {
			prob, pred, err := scorer.Score(out)
			if err == nil {
				evals++
				reward = 1 - prob
				if pred != trueAuthor && (best.Predicted == trueAuthor || prob < best.TrueAuthorProb) {
					names := make([]string, len(seq))
					for i, ai := range seq {
						names[i] = actions[ai].Name
					}
					best = &Result{
						Evaded:         true,
						Source:         out,
						Predicted:      pred,
						TrueAuthorProb: prob,
						Trace:          names,
					}
				}
			}
		}
		// Backpropagation.
		for n := cur; n != nil; n = n.parent {
			n.visits++
			n.value += reward
		}
	}
	best.Evaluations = evals
	return best, nil
}
