package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"gptattr/internal/arena"
)

// The /v1/evade endpoints expose the adversarial arena as a serving
// workload: POST /v1/evade submits one evasion search as a bounded
// asynchronous job (or blocks for the result with "wait": true), and
// GET /v1/evade/status polls it. Searches are orders of magnitude
// heavier than inference, so they run on their own small admission
// budget (arena.Manager) behind the same saturation contract as the
// inference path: exact-N 429 + Retry-After on overflow, 504 when a
// blocking wait outlives the request deadline, 503 while draining.

// EvadeRequest is the body of POST /v1/evade.
type EvadeRequest struct {
	// Source is the C++ source to disguise.
	Source string `json:"source"`
	// TrueAuthor is the label the attack must escape (required).
	TrueAuthor string `json:"true_author"`
	// TargetAuthor, when set, switches to impersonation.
	TargetAuthor string `json:"target_author,omitempty"`
	// Strategy is "mcts" (default) or "beam".
	Strategy string `json:"strategy,omitempty"`
	// Budget caps oracle evaluations (clamped to EvadeOptions.MaxBudget).
	Budget int `json:"budget,omitempty"`
	// MaxDepth caps the transformation-sequence length (clamped to
	// EvadeOptions.MaxDepth).
	MaxDepth int `json:"max_depth,omitempty"`
	// Seed drives the search PRNG; equal seeds give equal searches.
	Seed int64 `json:"seed,omitempty"`
	// VerifyInputs upgrade the candidate gate from static screening to
	// full behaviour verification on these stdin payloads.
	VerifyInputs []string `json:"verify_inputs,omitempty"`
	// Wait blocks the submit until the job finishes (or the request
	// deadline expires with 504). Default is async: 202 + job ID.
	Wait bool `json:"wait,omitempty"`
}

// EvadeResult is the wire form of one finished search.
type EvadeResult struct {
	Success        bool     `json:"success"`
	Source         string   `json:"source,omitempty"`
	Predicted      string   `json:"predicted,omitempty"`
	TrueAuthorProb float64  `json:"true_author_prob"`
	TargetProb     float64  `json:"target_prob,omitempty"`
	Trace          []string `json:"trace,omitempty"`
	Evaluations    int      `json:"evaluations"`
	GateChecks     int      `json:"gate_checks"`
	GateRejects    int      `json:"gate_rejects"`
	Truncated      bool     `json:"truncated,omitempty"`
}

// EvadeJobResponse answers POST /v1/evade and GET /v1/evade/status.
// Through the fleet router the JobID is namespaced "replica/jobID" so
// a later poll routes back to the replica holding the job.
type EvadeJobResponse struct {
	JobID string `json:"job_id"`
	State string `json:"state"`
	// Result is set once State is "done".
	Result *EvadeResult `json:"result,omitempty"`
	// Error is set once State is "failed" or "canceled".
	Error string `json:"error,omitempty"`
}

// evadeTerminal mirrors arena.JobState.Terminal over the wire states,
// so the router can answer 200-vs-202 from a replica's body alone.
func evadeTerminal(state string) bool {
	return arena.JobState(state).Terminal()
}

// EvadeOptions sizes the evasion workload on a replica. Zero values
// select the defaults.
type EvadeOptions struct {
	// MaxRunning is the number of concurrently running searches
	// (default 2).
	MaxRunning int
	// MaxQueued bounds accepted-but-waiting jobs; overflow answers 429
	// (default 8).
	MaxQueued int
	// JobTimeout bounds one search; a job hitting it completes with a
	// truncated best-so-far result (default 60s).
	JobTimeout time.Duration
	// MaxBudget clamps the per-request oracle budget (default 200).
	MaxBudget int
	// MaxDepth clamps the per-request sequence length (default 6).
	MaxDepth int

	// runFn substitutes the search executor in tests (the production
	// path attacks the registry's current oracle).
	runFn arena.RunFunc
}

func (o EvadeOptions) withDefaults() EvadeOptions {
	if o.MaxBudget <= 0 {
		o.MaxBudget = 200
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 6
	}
	return o
}

// Evader is the optional evasion face of a Backend. Server exposes it
// as POST /v1/evade + GET /v1/evade/status when the backend implements
// it and reports it enabled; LocalBackend implements it over an
// arena.Manager, the fleet router by owner-routed forwarding.
type Evader interface {
	// EvadeEnabled reports whether the evade endpoints should be
	// served (LocalBackend: an arena manager is wired; Router: always,
	// the owning replica is the authority).
	EvadeEnabled() bool
	// EvadeSubmit accepts one search job; with req.Wait it blocks for
	// the result under ctx.
	EvadeSubmit(ctx context.Context, req EvadeRequest) (EvadeJobResponse, error)
	// EvadeStatus polls one job; with wait it blocks under ctx.
	EvadeStatus(ctx context.Context, id string, wait bool) (EvadeJobResponse, error)
}

// EnableEvade wires the bounded evasion-job manager into the backend.
// Call before serve.New (or set Config.Evade and let New do it); pair
// with CloseEvade on shutdown.
func (l *LocalBackend) EnableEvade(opts EvadeOptions) {
	opts = opts.withDefaults()
	run := opts.runFn
	if run == nil {
		run = func(ctx context.Context, spec arena.JobSpec) (*arena.Result, error) {
			models := l.reg.Current()
			if models.Oracle == nil {
				return nil, ErrNoOracle
			}
			return arena.Attack(ctx, arena.NewLocalOracle(models.Oracle), spec.Source,
				arena.Goal{TrueAuthor: spec.TrueAuthor, Target: spec.TargetAuthor},
				arena.Config{
					Strategy:     spec.Strategy,
					Budget:       spec.Budget,
					MaxDepth:     spec.MaxDepth,
					Seed:         spec.Seed,
					VerifyInputs: spec.VerifyInputs,
				})
		}
	}
	l.evadeOpts = opts
	l.evade = arena.NewManager(arena.ManagerConfig{
		MaxRunning: opts.MaxRunning,
		MaxQueued:  opts.MaxQueued,
		JobTimeout: opts.JobTimeout,
	}, run)
}

// CloseEvade drains the evasion manager: running searches finish with
// truncated best-so-far results, queued jobs are canceled. No-op when
// evasion was never enabled; idempotent.
func (l *LocalBackend) CloseEvade() {
	if manager := l.evade; manager != nil {
		manager.Close()
	}
}

// EvadeEnabled implements Evader.
func (l *LocalBackend) EvadeEnabled() bool { return l.evade != nil }

// EvadeSubmit implements Evader.
func (l *LocalBackend) EvadeSubmit(ctx context.Context, req EvadeRequest) (EvadeJobResponse, error) {
	spec := arena.JobSpec{
		Source:       req.Source,
		TrueAuthor:   req.TrueAuthor,
		TargetAuthor: req.TargetAuthor,
		Strategy:     arena.Strategy(req.Strategy),
		Budget:       min(req.Budget, l.evadeOpts.MaxBudget),
		MaxDepth:     min(req.MaxDepth, l.evadeOpts.MaxDepth),
		Seed:         req.Seed,
		VerifyInputs: req.VerifyInputs,
	}
	id, err := l.evade.Submit(spec)
	if err != nil {
		return EvadeJobResponse{}, mapEvadeErr(err)
	}
	if req.Wait {
		return l.evadeWait(ctx, id)
	}
	st, err := l.evade.Status(id)
	if err != nil {
		return EvadeJobResponse{}, mapEvadeErr(err)
	}
	return evadeResponse(st), nil
}

// EvadeStatus implements Evader.
func (l *LocalBackend) EvadeStatus(ctx context.Context, id string, wait bool) (EvadeJobResponse, error) {
	if wait {
		return l.evadeWait(ctx, id)
	}
	st, err := l.evade.Status(id)
	if err != nil {
		return EvadeJobResponse{}, mapEvadeErr(err)
	}
	return evadeResponse(st), nil
}

// evadeWait blocks for a terminal state; a ctx expiry passes through
// untouched so FailBackend maps it to 504.
func (l *LocalBackend) evadeWait(ctx context.Context, id string) (EvadeJobResponse, error) {
	st, err := l.evade.Wait(ctx, id)
	if err != nil {
		return EvadeJobResponse{}, mapEvadeErr(err)
	}
	return evadeResponse(st), nil
}

// mapEvadeErr folds the arena's admission sentinels onto the serving
// layer's, so FailBackend applies one saturation contract to both the
// inference queue and the evasion queue.
func mapEvadeErr(err error) error {
	switch {
	case errors.Is(err, arena.ErrSaturated):
		return fmt.Errorf("%w: %v", ErrSaturated, err)
	case errors.Is(err, arena.ErrClosed):
		return fmt.Errorf("%w: %v", ErrClosed, err)
	case errors.Is(err, arena.ErrUnknownJob):
		return &StatusError{Code: http.StatusNotFound, Msg: err.Error()}
	default:
		return err
	}
}

// evadeResponse converts a manager snapshot to the wire form.
func evadeResponse(st arena.JobStatus) EvadeJobResponse {
	out := EvadeJobResponse{JobID: st.ID, State: string(st.State), Error: st.Err}
	if st.Result != nil {
		r := st.Result
		out.Result = &EvadeResult{
			Success:        r.Success,
			Source:         r.Source,
			Predicted:      r.Predicted,
			TrueAuthorProb: r.TrueAuthorProb,
			TargetProb:     r.TargetProb,
			Trace:          r.Trace,
			Evaluations:    r.Evaluations,
			GateChecks:     r.GateChecks,
			GateRejects:    r.GateRejects,
			Truncated:      r.Truncated,
		}
	}
	return out
}

// CloseEvade drains the backend's evasion manager when it owns one
// (the router's jobs live on its replicas, not here). attrserve calls
// it during graceful shutdown, after the listener stops accepting.
func (s *Server) CloseEvade() {
	if lb, ok := s.backend.(*LocalBackend); ok {
		lb.CloseEvade()
	}
}

// decodeEvade parses and validates the submit body, answering the
// error itself (and returning ok=false) when it is unacceptable.
func (s *Server) decodeEvade(w http.ResponseWriter, r *http.Request, reqID string) (EvadeRequest, bool) {
	var req EvadeRequest
	if r.Method != http.MethodPost {
		s.core.WriteError(w, http.StatusMethodNotAllowed, "POST required", reqID)
		return req, false
	}
	body := http.MaxBytesReader(w, r.Body, s.core.maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		s.core.WriteError(w, status, "bad request body: "+err.Error(), reqID)
		return req, false
	}
	if req.Source == "" {
		s.core.WriteError(w, http.StatusBadRequest, "empty source", reqID)
		return req, false
	}
	if req.TrueAuthor == "" {
		s.core.WriteError(w, http.StatusBadRequest, "true_author is required", reqID)
		return req, false
	}
	switch arena.Strategy(req.Strategy) {
	case "", arena.StrategyMCTS, arena.StrategyBeam:
	default:
		s.core.WriteError(w, http.StatusBadRequest, fmt.Sprintf("unknown strategy %q", req.Strategy), reqID)
		return req, false
	}
	return req, true
}

// handleEvade answers POST /v1/evade: 202 + job ID for an accepted
// async search, 200 + result when the response state is terminal
// (wait, or a baseline that already met the goal).
func (s *Server) handleEvade(w http.ResponseWriter, r *http.Request) {
	met := s.core.Metrics()
	met.Counter("evade_requests_total").Inc()
	met.Gauge("inflight").Add(1)
	defer met.Gauge("inflight").Add(-1)
	start := time.Now()

	reqID := s.core.Begin(w, r)
	if !s.core.Admit(w, reqID) {
		return
	}
	defer s.core.Release()
	req, ok := s.decodeEvade(w, r, reqID)
	if !ok {
		return
	}
	ctx, cancel := s.core.RequestContext(r.Context(), reqID)
	defer cancel()
	resp, err := s.evader.EvadeSubmit(ctx, req)
	if err != nil {
		s.core.FailBackend(w, err, reqID)
		return
	}
	observeEndpoint(met, "evade", start)
	status := http.StatusAccepted
	if evadeTerminal(resp.State) {
		status = http.StatusOK
	}
	s.core.WriteJSON(w, status, resp)
}

// handleEvadeStatus answers GET /v1/evade/status?id=...&wait=true.
func (s *Server) handleEvadeStatus(w http.ResponseWriter, r *http.Request) {
	met := s.core.Metrics()
	met.Counter("evade_status_requests_total").Inc()
	reqID := s.core.Begin(w, r)
	if r.Method != http.MethodGet {
		s.core.WriteError(w, http.StatusMethodNotAllowed, "GET required", reqID)
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		s.core.WriteError(w, http.StatusBadRequest, "id is required", reqID)
		return
	}
	wait := r.URL.Query().Get("wait") == "true"
	ctx, cancel := s.core.RequestContext(r.Context(), reqID)
	defer cancel()
	resp, err := s.evader.EvadeStatus(ctx, id, wait)
	if err != nil {
		s.core.FailBackend(w, err, reqID)
		return
	}
	s.core.WriteJSON(w, http.StatusOK, resp)
}
