package main

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"gptattr/internal/challenge"
	"gptattr/internal/codegen"
	"gptattr/internal/style"
)

// writeCorpus writes n authors x 8 files under dir.
func writeCorpus(t *testing.T, dir string, n int) []style.Profile {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	var profs []style.Profile
	for a := 0; a < n; a++ {
		prof := style.Random(string(rune('A'+a)), rng)
		profs = append(profs, prof)
		adir := filepath.Join(dir, "author"+string(rune('A'+a)))
		if err := os.MkdirAll(adir, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, ch := range challenge.ByYear(2017) {
			src := codegen.Render(ch.Prog, prof, rng.Int63())
			if err := os.WriteFile(filepath.Join(adir, ch.ID+".cc"), []byte(src), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	return profs
}

func TestRunPredict(t *testing.T) {
	dir := t.TempDir()
	profs := writeCorpus(t, dir, 4)
	// Query: a fresh 2018 file by authorB.
	ch, err := challenge.Get(2018, "C2")
	if err != nil {
		t.Fatal(err)
	}
	q := filepath.Join(t.TempDir(), "query.cc")
	if err := os.WriteFile(q, []byte(codegen.Render(ch.Prog, profs[1], 99)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-train", dir, "-trees", "20", q}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunCV(t *testing.T) {
	dir := t.TempDir()
	writeCorpus(t, dir, 3)
	if err := run([]string{"-train", dir, "-trees", "12", "-cv", "3"}); err != nil {
		t.Fatalf("run -cv: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -train accepted")
	}
	dir := t.TempDir()
	writeCorpus(t, dir, 2)
	if err := run([]string{"-train", dir}); err == nil {
		t.Error("no queries and no -cv accepted")
	}
	if err := run([]string{"-train", filepath.Join(dir, "nope")}); err == nil {
		t.Error("missing train dir accepted")
	}
	empty := t.TempDir()
	if err := run([]string{"-train", empty, "-cv", "2"}); err == nil {
		t.Error("empty train dir accepted")
	}
}

func TestRunSaveAndLoadModel(t *testing.T) {
	dir := t.TempDir()
	profs := writeCorpus(t, dir, 3)
	modelPath := filepath.Join(t.TempDir(), "model.json")
	if err := run([]string{"-train", dir, "-trees", "12", "-save", modelPath}); err != nil {
		t.Fatalf("train+save: %v", err)
	}
	if st, err := os.Stat(modelPath); err != nil || st.Size() == 0 {
		t.Fatalf("model file missing: %v", err)
	}
	ch, err := challenge.Get(2018, "C3")
	if err != nil {
		t.Fatal(err)
	}
	q := filepath.Join(t.TempDir(), "q.cc")
	if err := os.WriteFile(q, []byte(codegen.Render(ch.Prog, profs[0], 7)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-model", modelPath, q}); err != nil {
		t.Fatalf("predict from saved model: %v", err)
	}
	if err := run([]string{"-model", filepath.Join(dir, "missing.json"), q}); err == nil {
		t.Error("missing model file accepted")
	}
}

func TestRunMaxAuthors(t *testing.T) {
	dir := t.TempDir()
	writeCorpus(t, dir, 5)
	if err := run([]string{"-train", dir, "-max-authors", "3", "-trees", "10", "-cv", "2"}); err != nil {
		t.Fatalf("run with -max-authors: %v", err)
	}
}
