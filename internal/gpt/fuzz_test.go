package gpt

import (
	"fmt"
	"math/rand"
	"testing"

	"gptattr/internal/codegen"
	"gptattr/internal/cppinterp"
	"gptattr/internal/ir"
	"gptattr/internal/style"
)

// TestDifferentialTransformRandomPrograms pushes random IR programs
// through the full simulated-ChatGPT pipeline: render in a random
// style, transform (NCT and a short CT chain), and require every
// variant to reproduce the IR evaluator's ground-truth output. This is
// the end-to-end guarantee the measurement study rests on, checked far
// beyond the 24 fixed challenges.
func TestDifferentialTransformRandomPrograms(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 15
	}
	m := NewModel(Config{Seed: 4242})
	for seed := int64(0); seed < int64(trials); seed++ {
		prog := ir.RandomProgram(rand.New(rand.NewSource(seed + 100)))
		run, err := ir.Synthesize(prog, 3, rand.New(rand.NewSource(seed+7000)))
		if err != nil {
			t.Fatalf("seed %d: synthesize: %v", seed, err)
		}
		prof := style.Random(fmt.Sprintf("G%d", seed), rand.New(rand.NewSource(seed+8000)))
		src := codegen.Render(prog, prof, seed)
		inputs := []string{run.Input}

		nct, err := m.NCT(src, 2, inputs)
		if err != nil {
			t.Fatalf("seed %d: NCT: %v\n--- source ---\n%s", seed, err, src)
		}
		ct, err := m.CT(src, 2, inputs)
		if err != nil {
			t.Fatalf("seed %d: CT: %v\n--- source ---\n%s", seed, err, src)
		}
		for vi, v := range append(nct, ct...) {
			got, err := cppinterp.Run(v.Source, run.Input)
			if err != nil {
				t.Fatalf("seed %d variant %d: %v\n--- variant ---\n%s", seed, vi, err, v.Source)
			}
			if got != run.Output {
				t.Fatalf("seed %d variant %d: mismatch\n got %q\nwant %q\n--- variant ---\n%s",
					seed, vi, got, run.Output, v.Source)
			}
		}
	}
}
