package experiments

import (
	"runtime"
	"strings"
	"testing"
)

func TestExtensionCrossYear(t *testing.T) {
	s := testSuite(t)
	out, err := s.ExtensionCrossYear()
	if err != nil {
		t.Fatalf("ExtensionCrossYear: %v", err)
	}
	if !strings.Contains(out, "2017") || !strings.Contains(out, "train\\test") {
		t.Errorf("malformed cross-year table:\n%s", out)
	}
}

func TestExtensionMultiLLM(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-LLM extension regenerates three transformed corpora")
	}
	s := testSuite(t)
	out, err := s.ExtensionMultiLLM()
	if err != nil {
		t.Fatalf("ExtensionMultiLLM: %v", err)
	}
	for _, want := range []string{"SimGPT", "SimGemini", "SimClaude", "transfer"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestExtensionDegradeLadder(t *testing.T) {
	s := testSuite(t)
	out, err := s.ExtensionDegradeLadder()
	if err != nil {
		t.Fatalf("ExtensionDegradeLadder: %v", err)
	}
	for _, want := range []string{"full", "no-semantic", "surface", "Matched rung", "Rung OOB"} {
		if !strings.Contains(out, want) {
			t.Errorf("degrade-ladder table missing %q:\n%s", want, out)
		}
	}
}

func TestExtensionsRegistry(t *testing.T) {
	s := testSuite(t)
	exts := s.Extensions()
	for _, name := range []string{"multillm", "crossyear", "chaindepth", "gen500", "generated", "evasion", "arena", "semantic-ablation", "degrade-ladder"} {
		if exts[name] == nil {
			t.Errorf("extension %q missing", name)
		}
	}
	if len(exts) != 9 {
		t.Errorf("extensions = %d, want 9", len(exts))
	}
}

func TestExtensionGeneratedAttribution(t *testing.T) {
	s := testSuite(t)
	out, err := s.ExtensionGeneratedAttribution()
	if err != nil {
		t.Fatalf("ExtensionGeneratedAttribution: %v", err)
	}
	if !strings.Contains(out, "naive") || !strings.Contains(out, "feature-based") {
		t.Errorf("malformed generated-attribution table:\n%s", out)
	}
}

func TestExtensionGeneration500(t *testing.T) {
	if testing.Short() {
		t.Skip("generates 500 sources")
	}
	s := testSuite(t)
	out, err := s.ExtensionGeneration500()
	if err != nil {
		t.Fatalf("ExtensionGeneration500: %v", err)
	}
	if !strings.Contains(out, "distinct oracle labels") {
		t.Errorf("malformed gen500 output:\n%s", out)
	}
}

func TestExtensionEvasion(t *testing.T) {
	s := testSuite(t)
	out, err := s.ExtensionEvasion()
	if err != nil {
		t.Fatalf("ExtensionEvasion: %v", err)
	}
	if !strings.Contains(out, "MCTS") && !strings.Contains(out, "nothing to attack") {
		t.Errorf("malformed evasion output:\n%s", out)
	}
}

func TestExtensionArena(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full attack campaigns and retrains a hardened forest")
	}
	s := testSuite(t)
	out, err := s.ExtensionArena()
	if err != nil {
		t.Fatalf("ExtensionArena: %v", err)
	}
	if strings.Contains(out, "nothing to attack") {
		t.Skipf("oracle never attributed the victim at test scale:\n%s", out)
	}
	for _, want := range []string{"untargeted", "targeted", "Surface ASR", "Full ASR"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in arena table:\n%s", want, out)
		}
	}
	// The hardened re-attack and robustness rankings only exist when
	// some baseline campaign evaded; at test scale that is the common
	// case, and then the per-family table must ride along.
	if strings.Contains(out, "Hardened ASR") && !strings.Contains(out, "per-family robustness") {
		t.Errorf("hardened table without the per-family robustness table:\n%s", out)
	}
}

func TestExtensionSemanticAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("trains six family-restricted oracles")
	}
	s := testSuite(t)
	out, err := s.ExtensionSemanticAblation()
	if err != nil {
		t.Fatalf("ExtensionSemanticAblation: %v", err)
	}
	for _, want := range []string{"layout-only", "lexical-only", "syntactic-only",
		"semantic-only", "surface", "combined", "k=0", "k=6"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in ablation table:\n%s", want, out)
		}
	}
}

// TestExtensionSemanticAblationWorkersBitIdentical pins the
// determinism contract for the new extension: byte-identical output
// at any worker count.
func TestExtensionSemanticAblationWorkersBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("trains six oracles per worker setting")
	}
	scale := Scale{Authors: 8, Rounds: 3, Trees: 8, TopFeatures: 150, NumStyles: 4, Seed: 11}
	var first string
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		sc := scale
		sc.Workers = workers
		out, err := NewSuite(sc).ExtensionSemanticAblation()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if first == "" {
			first = out
		} else if out != first {
			t.Fatalf("output differs at workers=%d:\n%s\n-- vs --\n%s", workers, out, first)
		}
	}
}

func TestExtensionChainDepth(t *testing.T) {
	s := testSuite(t)
	out, err := s.ExtensionChainDepth()
	if err != nil {
		t.Fatalf("ExtensionChainDepth: %v", err)
	}
	if !strings.Contains(out, "Rounds") || !strings.Contains(out, "BalancedAcc") {
		t.Errorf("malformed chain-depth table:\n%s", out)
	}
}
