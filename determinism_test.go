// Determinism harness: the parallel experiment pipeline must produce
// bit-identical outputs at any worker count, with or without the
// feature cache. Every test here runs the same computation for
// Workers ∈ {1, 2, GOMAXPROCS} with a fixed seed and asserts exact
// equality — feature-name ordering, fold assignment, per-fold
// predictions, and rendered table text included.
package gptattr

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"gptattr/internal/corpus"
	"gptattr/internal/experiments"
	"gptattr/internal/featcache"
	"gptattr/internal/ml"
	"gptattr/internal/stylometry"
)

// workerCounts is the table every determinism test runs over.
func workerCounts() []int {
	counts := []int{1, 2}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 {
		counts = append(counts, p)
	}
	return counts
}

// determinismCorpus renders a small labelled corpus once per test run.
func determinismCorpus(t *testing.T) ([]string, []int, int) {
	t.Helper()
	human, _, err := corpus.GenerateYear(corpus.YearConfig{Year: 2017, NumAuthors: 6, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	authors := human.Authors()
	index := make(map[string]int, len(authors))
	for i, a := range authors {
		index[a] = i
	}
	sources := make([]string, len(human.Samples))
	labels := make([]int, len(human.Samples))
	for i, s := range human.Samples {
		sources[i] = s.Source
		labels[i] = index[s.Author]
	}
	return sources, labels, len(authors)
}

// TestBuildDatasetWorkersDeterministic locks down parallel feature
// extraction: identical datasets (feature names, rows, labels) at any
// worker count, with and without a cache, cold and warm.
func TestBuildDatasetWorkersDeterministic(t *testing.T) {
	sources, labels, classes := determinismCorpus(t)
	vcfg := stylometry.VectorizerConfig{MinDocFreq: 2}

	ref, _, err := stylometry.BuildDatasetWith(sources, labels, classes, vcfg,
		stylometry.ExtractConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.FeatureNames) == 0 || len(ref.X) != len(sources) {
		t.Fatalf("degenerate reference dataset: %d features, %d rows", len(ref.FeatureNames), len(ref.X))
	}

	cache, err := featcache.New(featcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		cache stylometry.FeatureCache
	}{
		{"nocache", nil},
		{"cache-cold", cache},
		{"cache-warm", cache},
	}
	for _, tc := range cases {
		for _, w := range workerCounts() {
			t.Run(fmt.Sprintf("%s/workers=%d", tc.name, w), func(t *testing.T) {
				d, _, err := stylometry.BuildDatasetWith(sources, labels, classes, vcfg,
					stylometry.ExtractConfig{Workers: w, Cache: tc.cache})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(d.FeatureNames, ref.FeatureNames) {
					t.Error("feature-name ordering differs from sequential reference")
				}
				if !reflect.DeepEqual(d.X, ref.X) {
					t.Error("feature rows differ from sequential reference")
				}
				if !reflect.DeepEqual(d.Y, ref.Y) {
					t.Error("labels differ from sequential reference")
				}
			})
		}
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Error("warm cache runs never hit the cache")
	}
}

// TestCrossValidatePipelineWorkersDeterministic locks down the full
// dataset -> feature selection -> stratified folds -> fold-parallel CV
// path: identical fold assignment, predictions, and accuracies at any
// worker count.
func TestCrossValidatePipelineWorkersDeterministic(t *testing.T) {
	sources, labels, classes := determinismCorpus(t)
	d, _, err := stylometry.BuildDataset(sources, labels, classes,
		stylometry.VectorizerConfig{MinDocFreq: 2})
	if err != nil {
		t.Fatal(err)
	}
	reduced, _ := ml.ReduceByInformationGain(d, 150, 10)
	folds, err := ml.StratifiedKFold(reduced.Y, 4, nil)
	if err != nil {
		t.Fatal(err)
	}

	var ref []ml.FoldResult
	var refFolds []ml.Fold
	for _, w := range workerCounts() {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			// Fold assignment must not depend on prior runs or workers.
			again, err := ml.StratifiedKFold(reduced.Y, 4, nil)
			if err != nil {
				t.Fatal(err)
			}
			if refFolds == nil {
				refFolds = again
			} else if !reflect.DeepEqual(again, refFolds) {
				t.Error("fold assignment not deterministic")
			}
			results, err := ml.CrossValidateForest(reduced, folds,
				ml.ForestConfig{NumTrees: 12, Seed: 5, Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = results
				return
			}
			if !reflect.DeepEqual(results, ref) {
				t.Error("cross-validation results differ across worker counts")
			}
		})
	}
}

// determinismScale keeps full-suite runs to a few seconds.
var determinismScale = experiments.Scale{
	Authors: 6, Rounds: 2, Trees: 8, TopFeatures: 120, NumStyles: 4, Seed: 1,
}

// suiteOutputs runs the experiment entries that exercise the whole
// pipeline (year build, oracle, attribution CV, binary CV) and returns
// their rendered text.
func suiteOutputs(t *testing.T, s *experiments.Suite) []string {
	t.Helper()
	var out []string
	for _, fn := range []func() (string, error){s.TableIV, s.TableVIII, s.TableX} {
		text, err := fn()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, text)
	}
	return out
}

// TestExperimentsSuiteWorkersDeterministic locks down end-to-end
// experiment runs: the rendered tables must be byte-identical at any
// worker count and with the feature cache installed.
func TestExperimentsSuiteWorkersDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite determinism run is not short")
	}
	var ref []string
	run := func(name string, s *experiments.Suite) {
		t.Run(name, func(t *testing.T) {
			got := suiteOutputs(t, s)
			if ref == nil {
				ref = got
				return
			}
			if !reflect.DeepEqual(got, ref) {
				for i := range got {
					if got[i] != ref[i] {
						t.Errorf("output %d differs:\n--- got ---\n%s\n--- want ---\n%s", i, got[i], ref[i])
					}
				}
			}
		})
	}
	for _, w := range workerCounts() {
		scale := determinismScale
		scale.Workers = w
		run(fmt.Sprintf("workers=%d", w), experiments.NewSuite(scale))
	}
	// Cached suite (shared across two runs: cold then warm) must match.
	cache, err := featcache.New(featcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for pass, name := range []string{"cache-cold", "cache-warm"} {
		scale := determinismScale
		scale.Workers = 2
		s := experiments.NewSuite(scale)
		s.UseCache(cache)
		run(name, s)
		if pass == 1 {
			if st := cache.Stats(); st.Hits == 0 {
				t.Error("warm cached suite never hit the cache")
			}
		}
	}
}
