package cppcheck

import (
	"reflect"
	"strings"
	"testing"

	"gptattr/internal/cppast"
)

func analyzeSrc(t *testing.T, src string) []Diagnostic {
	t.Helper()
	tu, err := cppast.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Analyze(tu)
}

func rulesOf(ds []Diagnostic) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Rule
	}
	return out
}

func wantOnly(t *testing.T, ds []Diagnostic, rule, variable string) {
	t.Helper()
	if len(ds) != 1 {
		t.Fatalf("want exactly one %s finding, got %v", rule, ds)
	}
	if ds[0].Rule != rule {
		t.Fatalf("want rule %s, got %v", rule, ds[0])
	}
	if variable != "" && ds[0].Var != variable {
		t.Fatalf("want var %q, got %v", variable, ds[0])
	}
	if ds[0].Line <= 0 {
		t.Fatalf("finding has no source position: %v", ds[0])
	}
}

func TestUninitRead(t *testing.T) {
	ds := analyzeSrc(t, `
#include <cstdio>
int main() {
    int x;
    int y = x + 1;
    printf("%d\n", y);
    return 0;
}
`)
	wantOnly(t, ds, RuleUninitRead, "x")
}

func TestUninitReadOnOneBranchOnly(t *testing.T) {
	ds := analyzeSrc(t, `
#include <cstdio>
int main() {
    int n;
    scanf("%d", &n);
    int x;
    if (n > 0) {
        x = 1;
    }
    printf("%d\n", x);
    return 0;
}
`)
	wantOnly(t, ds, RuleUninitRead, "x")
}

func TestNoUninitWhenAllPathsAssign(t *testing.T) {
	ds := analyzeSrc(t, `
#include <cstdio>
int main() {
    int n;
    scanf("%d", &n);
    int x;
    if (n > 0) {
        x = 1;
    } else {
        x = 2;
    }
    printf("%d\n", x);
    return 0;
}
`)
	if len(ds) != 0 {
		t.Fatalf("want clean, got %v", ds)
	}
}

func TestScanfTargetNotUninit(t *testing.T) {
	ds := analyzeSrc(t, `
#include <cstdio>
int main() {
    int n;
    scanf("%d", &n);
    printf("%d\n", n + 1);
    return 0;
}
`)
	if len(ds) != 0 {
		t.Fatalf("want clean (address-taken var is escaped), got %v", ds)
	}
}

func TestCinTargetDefined(t *testing.T) {
	ds := analyzeSrc(t, `
#include <iostream>
using namespace std;
int main() {
    int a, b;
    cin >> a >> b;
    cout << a + b << endl;
    return 0;
}
`)
	if len(ds) != 0 {
		t.Fatalf("want clean (cin chain defines targets), got %v", ds)
	}
}

func TestDeadStore(t *testing.T) {
	ds := analyzeSrc(t, `
#include <cstdio>
int main() {
    int x;
    x = 5;
    x = 7;
    printf("%d\n", x);
    return 0;
}
`)
	wantOnly(t, ds, RuleDeadStore, "x")
	if ds[0].Line != 5 {
		t.Fatalf("dead store should point at the first assignment (line 5), got %v", ds[0])
	}
}

func TestDeclInitializerNotDeadStore(t *testing.T) {
	ds := analyzeSrc(t, `
#include <cstdio>
int main() {
    int sum = 0;
    sum = 10;
    printf("%d\n", sum);
    return 0;
}
`)
	if len(ds) != 0 {
		t.Fatalf("decl initializer must be exempt from dead-store, got %v", ds)
	}
}

func TestLoopCarriedStoreNotDead(t *testing.T) {
	ds := analyzeSrc(t, `
#include <cstdio>
int main() {
    int acc = 0;
    for (int i = 0; i < 10; i++) {
        acc = acc + i;
    }
    printf("%d\n", acc);
    return 0;
}
`)
	if len(ds) != 0 {
		t.Fatalf("loop-carried store is live across the back edge, got %v", ds)
	}
}

func TestUnreachableAfterReturn(t *testing.T) {
	ds := analyzeSrc(t, `
#include <cstdio>
int main() {
    printf("hi\n");
    return 0;
    printf("never\n");
}
`)
	wantOnly(t, ds, RuleUnreachable, "")
	if ds[0].Line != 6 {
		t.Fatalf("unreachable finding should point at line 6, got %v", ds[0])
	}
}

func TestUnreachableReportedOncePerRegion(t *testing.T) {
	ds := analyzeSrc(t, `
#include <cstdio>
int main() {
    return 0;
    printf("a\n");
    printf("b\n");
    printf("c\n");
}
`)
	if got := rulesOf(ds); len(got) != 1 || got[0] != RuleUnreachable {
		t.Fatalf("want one region-head finding, got %v", ds)
	}
}

func TestUnusedDecl(t *testing.T) {
	ds := analyzeSrc(t, `
#include <cstdio>
int main() {
    int x = 3;
    int unused = 0;
    printf("%d\n", x);
    return 0;
}
`)
	wantOnly(t, ds, RuleUnusedDecl, "unused")
}

func TestConstCond(t *testing.T) {
	ds := analyzeSrc(t, `
#include <cstdio>
int main() {
    if (1 < 2) {
        printf("yes\n");
    }
    return 0;
}
`)
	wantOnly(t, ds, RuleConstCond, "")
}

func TestWhileTrueNotFlaggedAsBug(t *testing.T) {
	// while(true) with a break is the standard read-until-EOF idiom in
	// the corpus; it IS a constant condition, so SA005 fires — the test
	// pins that it fires exactly once and nothing else does.
	ds := analyzeSrc(t, `
#include <cstdio>
int main() {
    int n;
    while (true) {
        if (scanf("%d", &n) != 1) break;
        printf("%d\n", n);
    }
    return 0;
}
`)
	wantOnly(t, ds, RuleConstCond, "")
}

func TestConstCondIntegerDivisionIsTruncating(t *testing.T) {
	// 1/2 is integer division in C++: the condition folds to 0, so the
	// branch is always false — folding it in float64 would report the
	// opposite verdict.
	ds := analyzeSrc(t, `
#include <cstdio>
int main() {
    if (1 / 2) {
        printf("yes\n");
    }
    return 0;
}
`)
	wantOnly(t, ds, RuleConstCond, "")
	if !strings.Contains(ds[0].Msg, "always false") {
		t.Fatalf("1/2 folds to 0, want an always-false finding: %v", ds[0])
	}
}

func TestConstCondIntegerDivisionComparison(t *testing.T) {
	ds := analyzeSrc(t, `
#include <cstdio>
int main() {
    if (5 / 2 == 2) {
        printf("yes\n");
    }
    return 0;
}
`)
	wantOnly(t, ds, RuleConstCond, "")
	if !strings.Contains(ds[0].Msg, "always true") {
		t.Fatalf("5/2 truncates to 2, want an always-true finding: %v", ds[0])
	}
}

func TestConstCondFloatDivisionStaysExact(t *testing.T) {
	ds := analyzeSrc(t, `
#include <cstdio>
int main() {
    if (1 / 2.0) {
        printf("yes\n");
    }
    return 0;
}
`)
	wantOnly(t, ds, RuleConstCond, "")
	if !strings.Contains(ds[0].Msg, "always true") {
		t.Fatalf("1/2.0 is 0.5, want an always-true finding: %v", ds[0])
	}
}

func TestConstCondModulo(t *testing.T) {
	ds := analyzeSrc(t, `
#include <cstdio>
int main() {
    if (4 % 2) {
        printf("yes\n");
    }
    return 0;
}
`)
	wantOnly(t, ds, RuleConstCond, "")
	if !strings.Contains(ds[0].Msg, "always false") {
		t.Fatalf("4%%2 is 0, want an always-false finding: %v", ds[0])
	}
}

func TestForInfiniteNoCondNotConstCond(t *testing.T) {
	ds := analyzeSrc(t, `
#include <cstdio>
int main() {
    for (;;) {
        break;
    }
    return 0;
}
`)
	if len(ds) != 0 {
		t.Fatalf("for(;;) is an idiom, not a finding: %v", ds)
	}
}

func TestCleanTypicalGeneratedProgram(t *testing.T) {
	// Mirrors the codegen output shape: read N, loop, accumulate, print.
	ds := analyzeSrc(t, `
#include <iostream>
#include <vector>
using namespace std;

int solve(int n) {
    int total = 0;
    for (int i = 1; i <= n; i++) {
        total += i;
    }
    return total;
}

int main() {
    int n;
    cin >> n;
    vector<int> vals(n);
    for (int i = 0; i < n; i++) {
        cin >> vals[i];
    }
    long long sum = 0;
    for (int i = 0; i < n; i++) {
        sum += vals[i];
    }
    cout << sum << "\n";
    cout << solve(n) << endl;
    return 0;
}
`)
	if len(ds) != 0 {
		t.Fatalf("typical generated program must be clean, got %v", ds)
	}
}

func TestRefParamArgEscapes(t *testing.T) {
	ds := analyzeSrc(t, `
#include <iostream>
using namespace std;
void fill(int &out) { out = 7; }
int main() {
    int x;
    fill(x);
    cout << x << endl;
    return 0;
}
`)
	if len(ds) != 0 {
		t.Fatalf("ref-param argument must count as defined, got %v", ds)
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	src := `
#include <cstdio>
int main() {
    int a;
    int b;
    int c = a + b;
    c = 1;
    return 0;
    printf("%d\n", c);
}
`
	first := analyzeSrc(t, src)
	if len(first) == 0 {
		t.Fatal("fixture should produce findings")
	}
	for i := 0; i < 20; i++ {
		if got := analyzeSrc(t, src); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d differs:\n%v\nvs\n%v", i, got, first)
		}
	}
}

func TestDefUseChains(t *testing.T) {
	tu := cppast.MustParse(`
int main() {
    int x = 1;
    int y = x + 2;
    x = y;
    return x;
}
`)
	fn := tu.Function("main")
	g := BuildCFG(fn)
	chains := DefUseChains(g, nil)
	if len(chains) == 0 {
		t.Fatal("want def-use chains")
	}
	found := false
	for _, ch := range chains {
		if ch.Var == "x" && len(ch.UseLines) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("want a chain from a def of x to its uses, got %+v", chains)
	}
}

// --- CFG structural tests ---

func TestBuildCFGNilForPrototype(t *testing.T) {
	tu := cppast.MustParse("int solve(int n);\nint main() { return 0; }")
	if g := BuildCFG(tu.Function("solve")); g != nil {
		t.Fatal("prototype must produce a nil CFG")
	}
	if g := BuildCFG(nil); g != nil {
		t.Fatal("nil function must produce a nil CFG")
	}
}

func TestCFGBreakContinue(t *testing.T) {
	tu := cppast.MustParse(`
int main() {
    for (int i = 0; i < 10; i++) {
        if (i == 3) continue;
        if (i == 7) break;
    }
    return 0;
}
`)
	g := BuildCFG(tu.Function("main"))
	if g.Unsupported {
		t.Fatal("break/continue inside a loop are supported")
	}
	reach := g.Reachable()
	if !reach[g.Exit] {
		t.Fatal("exit must be reachable")
	}
}

func TestCFGStrayBreakUnsupported(t *testing.T) {
	tu := cppast.MustParse("int main() { break; return 0; }")
	g := BuildCFG(tu.Function("main"))
	if !g.Unsupported {
		t.Fatal("stray break must mark the CFG unsupported")
	}
	if Analyze(tu) != nil {
		t.Fatal("unsupported functions must produce no diagnostics")
	}
}

func TestCFGSwitch(t *testing.T) {
	tu := cppast.MustParse(`
#include <cstdio>
int main() {
    int n = 2;
    switch (n) {
    case 1:
        printf("one\n");
        break;
    case 2:
        printf("two\n");
    default:
        printf("other\n");
    }
    return 0;
}
`)
	g := BuildCFG(tu.Function("main"))
	if g.Unsupported {
		t.Fatal("switch is supported")
	}
	if !g.Reachable()[g.Exit] {
		t.Fatal("exit must be reachable through the switch")
	}
}

// --- Fingerprint tests ---

func fp(t *testing.T, src string) (string, bool) {
	t.Helper()
	tu, err := cppast.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Fingerprint(tu)
}

func mustFP(t *testing.T, src string) string {
	t.Helper()
	h, ok := fp(t, src)
	if !ok {
		t.Fatalf("fingerprint unavailable for:\n%s", src)
	}
	return h
}

const fpBase = `
#include <iostream>
using namespace std;
int main() {
    int n;
    cin >> n;
    int total = 0;
    for (int i = 0; i < n; i++) {
        total += i;
    }
    cout << total << endl;
    return 0;
}
`

func TestFingerprintDeterministic(t *testing.T) {
	a := mustFP(t, fpBase)
	for i := 0; i < 10; i++ {
		if b := mustFP(t, fpBase); b != a {
			t.Fatal("fingerprint must be deterministic")
		}
	}
}

func TestFingerprintRenameInvariant(t *testing.T) {
	renamed := `
#include <iostream>
using namespace std;
int main() {
    int count;
    cin >> count;
    int acc = 0;
    for (int idx = 0; idx < count; idx++) {
        acc += idx;
    }
    cout << acc << endl;
    return 0;
}
`
	if mustFP(t, fpBase) != mustFP(t, renamed) {
		t.Fatal("alpha-renaming must not change the fingerprint")
	}
}

func TestFingerprintCommentAndLayoutInvariant(t *testing.T) {
	noisy := `
#include <iostream>
using namespace std;

// entry point
int main()
{
    int n; // the count
    cin >> n;
    /* accumulator */
    int total = 0;
    for (int i = 0; i < n; i++) { total += i; }
    cout << total << endl;
    return 0;
}
`
	if mustFP(t, fpBase) != mustFP(t, noisy) {
		t.Fatal("comments and layout must not change the fingerprint")
	}
}

func TestFingerprintForWhileInvariant(t *testing.T) {
	while := `
#include <iostream>
using namespace std;
int main() {
    int n;
    cin >> n;
    int total = 0;
    int i = 0;
    while (i < n) {
        total += i;
        i++;
    }
    cout << total << endl;
    return 0;
}
`
	if mustFP(t, fpBase) != mustFP(t, while) {
		t.Fatal("for and its while rewrite must fingerprint identically")
	}
}

func TestFingerprintIncrementStyleInvariant(t *testing.T) {
	pre := `
int main() {
    int x = 0;
    ++x;
    return x;
}
`
	post := `
int main() {
    int x = 0;
    x++;
    return x;
}
`
	plusEq := `
int main() {
    int x = 0;
    x += 1;
    return x;
}
`
	a, b, c := mustFP(t, pre), mustFP(t, post), mustFP(t, plusEq)
	if a != b || b != c {
		t.Fatal("statement-position increments must normalize identically")
	}
}

func TestFingerprintStdQualificationInvariant(t *testing.T) {
	qualified := `
#include <iostream>
int main() {
    int n;
    std::cin >> n;
    int total = 0;
    for (int i = 0; i < n; i++) {
        total += i;
    }
    std::cout << total << std::endl;
    return 0;
}
`
	if mustFP(t, fpBase) != mustFP(t, qualified) {
		t.Fatal("std:: qualification must not change the fingerprint")
	}
}

func TestFingerprintSensitiveToOperator(t *testing.T) {
	mutated := `
#include <iostream>
using namespace std;
int main() {
    int n;
    cin >> n;
    int total = 0;
    for (int i = 0; i < n; i++) {
        total -= i;
    }
    cout << total << endl;
    return 0;
}
`
	if mustFP(t, fpBase) == mustFP(t, mutated) {
		t.Fatal("operator change must change the fingerprint")
	}
}

func TestFingerprintSensitiveToLiteral(t *testing.T) {
	mutated := `
#include <iostream>
using namespace std;
int main() {
    int n;
    cin >> n;
    int total = 1;
    for (int i = 0; i < n; i++) {
        total += i;
    }
    cout << total << endl;
    return 0;
}
`
	if mustFP(t, fpBase) == mustFP(t, mutated) {
		t.Fatal("literal change must change the fingerprint")
	}
}

func TestFingerprintSensitiveToComparisonFlip(t *testing.T) {
	mutated := `
#include <iostream>
using namespace std;
int main() {
    int n;
    cin >> n;
    int total = 0;
    for (int i = 0; i <= n; i++) {
        total += i;
    }
    cout << total << endl;
    return 0;
}
`
	if mustFP(t, fpBase) == mustFP(t, mutated) {
		t.Fatal("comparison flip must change the fingerprint")
	}
}

func TestFingerprintUnavailableForStructs(t *testing.T) {
	if _, ok := fp(t, `
struct Point { int x; int y; };
int main() { return 0; }
`); ok {
		t.Fatal("structs are outside the canonical subset")
	}
}

func TestFingerprintSensitiveToCaseValues(t *testing.T) {
	// Case labels are behaviour: two switches differing only in their
	// case values dispatch differently and must never hash equal.
	tmpl := func(a, b string) string {
		return `
#include <cstdio>
int main() {
    int n;
    scanf("%d", &n);
    switch (n) {
    case ` + a + `:
        printf("a\n");
        break;
    case ` + b + `:
        printf("b\n");
        break;
    }
    return 0;
}
`
	}
	if mustFP(t, tmpl("1", "2")) == mustFP(t, tmpl("5", "7")) {
		t.Fatal("changed case values must change the fingerprint")
	}
}

func TestFingerprintSwitchNotConfusedWithIfElse(t *testing.T) {
	// switch(n){case 0: X; default: Y} runs X when n is zero; if(n) X
	// else Y runs X when n is nonzero. Identical graph shapes, inverted
	// semantics — the sw/br opcode split keeps them apart.
	sw := `
#include <cstdio>
int main() {
    int n;
    scanf("%d", &n);
    switch (n) {
    case 0:
        printf("x\n");
        break;
    default:
        printf("y\n");
        break;
    }
    return 0;
}
`
	ifElse := `
#include <cstdio>
int main() {
    int n;
    scanf("%d", &n);
    if (n) {
        printf("x\n");
    } else {
        printf("y\n");
    }
    return 0;
}
`
	if mustFP(t, sw) == mustFP(t, ifElse) {
		t.Fatal("a switch must not fingerprint like an if/else of the same shape")
	}
}

func TestFingerprintDistinguishesLibraryCalls(t *testing.T) {
	a := mustFP(t, `
#include <cmath>
int main() { double d = sqrt(2.0); return d > 1.0; }
`)
	b := mustFP(t, `
#include <cmath>
int main() { double d = fabs(2.0); return d > 1.0; }
`)
	if a == b {
		t.Fatal("different library calls must fingerprint differently")
	}
}
