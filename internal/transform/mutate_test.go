package transform

import (
	"fmt"
	"math/rand"
	"testing"

	"gptattr/internal/challenge"
	"gptattr/internal/codegen"
	"gptattr/internal/cppast"
	"gptattr/internal/cppprint"
	"gptattr/internal/ir"
	"gptattr/internal/style"
)

// TestVerifierCatchesSemanticMutations is the failure-injection test
// for the whole verification pathway: semantically-mutated programs
// must be rejected by Verify. A small fraction of mutants can be
// behaviourally equivalent on the sampled inputs (mutation in a branch
// the inputs never take), so the assertion is a high kill rate, not
// 100%.
func TestVerifierCatchesSemanticMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	killed, total := 0, 0
	for i, c := range challenge.All() {
		prof := style.Random(fmt.Sprintf("M%d", i), rng)
		src := codegen.Render(c.Prog, prof, int64(i))
		run, err := ir.Synthesize(c.Prog, 4, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 4; trial++ {
			tu := cppast.MustParse(src)
			if !MutateSemantics(tu, rng) {
				t.Fatalf("%s: no mutation site found", c.Key())
			}
			mutant := cppprint.Print(tu, cppprint.Config{})
			if mutant == cppprint.Print(cppast.MustParse(src), cppprint.Config{}) {
				continue // mutation produced identical text; skip
			}
			total++
			if err := Verify(src, mutant, []string{run.Input}); err != nil {
				killed++
			}
		}
	}
	if total == 0 {
		t.Fatal("no mutants generated")
	}
	rate := float64(killed) / float64(total)
	t.Logf("mutation kill rate: %d/%d = %.0f%%", killed, total, 100*rate)
	if rate < 0.7 {
		t.Errorf("kill rate %.2f too low; the verifier misses behaviour changes", rate)
	}
}

// TestMutateNoSites checks the degenerate case.
func TestMutateNoSites(t *testing.T) {
	tu := cppast.MustParse("void f() {}")
	if MutateSemantics(tu, rand.New(rand.NewSource(1))) {
		t.Error("mutation site reported in empty function")
	}
}

// TestTransformPipelineNeverMutatesSemantics is the converse
// property-based check: random pass compositions over random sources
// must always verify. This is the strongest guarantee the simulated
// ChatGPT relies on.
func TestTransformPipelineNeverMutatesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	namings := []style.Naming{style.NamingCamel, style.NamingSnake, style.NamingHungarian, style.NamingShort, style.NamingVerbose}
	for trial := 0; trial < 40; trial++ {
		c := challenge.All()[rng.Intn(24)]
		prof := style.Random(fmt.Sprintf("P%d", trial), rng)
		src := codegen.Render(c.Prog, prof, int64(trial))
		run, err := ir.Synthesize(c.Prog, 3, rand.New(rand.NewSource(int64(trial))))
		if err != nil {
			t.Fatal(err)
		}
		tu := cppast.MustParse(src)
		// Random pass composition.
		if rng.Intn(2) == 0 {
			Rename(tu, namings[rng.Intn(len(namings))])
		}
		switch rng.Intn(3) {
		case 0:
			ConvertIO(tu, ToStdio)
		case 1:
			ConvertIO(tu, ToStreams)
		}
		if rng.Intn(2) == 0 {
			ForToWhile(tu)
		}
		if rng.Intn(2) == 0 {
			SetUsingNamespace(tu, rng.Intn(2) == 0)
		}
		if rng.Intn(2) == 0 {
			SetIncrementStyle(tu, rng.Intn(2) == 0)
		}
		if rng.Intn(2) == 0 {
			ExtractSolve(tu, "solveCase")
		} else {
			InlineVoidCalls(tu)
		}
		if rng.Intn(2) == 0 {
			InjectComments(tu, 0.5, rng.Intn(2) == 0, rng)
		}
		RegenerateHeaders(tu, rng.Intn(2) == 0)
		printed := cppprint.Print(tu, cppprint.Config{
			IndentTabs:  rng.Intn(2) == 0,
			Allman:      rng.Intn(2) == 0,
			TightOps:    rng.Intn(2) == 0,
			TightCommas: rng.Intn(2) == 0,
		})
		if err := Verify(src, printed, []string{run.Input}); err != nil {
			t.Fatalf("trial %d (%s): random pipeline changed behaviour: %v\n--- original ---\n%s\n--- transformed ---\n%s",
				trial, c.Key(), err, src, printed)
		}
	}
}
