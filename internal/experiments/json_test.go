package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestResultsJSON(t *testing.T) {
	s := testSuite(t)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var res Results
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if res.MaxStyles < 1 {
		t.Errorf("MaxStyles = %d", res.MaxStyles)
	}
	for _, y := range Years() {
		if len(res.StyleCounts[y]) != 8 {
			t.Errorf("year %d: style counts cover %d challenges, want 8", y, len(res.StyleCounts[y]))
		}
		if _, ok := res.Naive[y]; !ok {
			t.Errorf("year %d missing naive results", y)
		}
		if fb, ok := res.FeatureBased[y]; !ok || fb.TargetLabel == "" {
			t.Errorf("year %d missing feature-based results", y)
		}
		if b, ok := res.Binary[y]; !ok || len(b.FoldAccuracy) != 8 {
			t.Errorf("year %d binary malformed", y)
		}
	}
	if _, ok := res.Binary[-1]; !ok {
		t.Error("combined binary dataset missing (year -1)")
	}
	if len(settingsAsStrings()) != 4 {
		t.Error("settings helper wrong")
	}
}
