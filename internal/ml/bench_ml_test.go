package ml

import (
	"math/rand"
	"testing"
)

// benchRow fills one bench-scale feature row for class c using rng.
// The mix models a reduced stylometric design matrix: mostly sparse
// token/word-unigram frequencies (zero-heavy, small quantized counts),
// a band of quantized layout ratios, and a few continuous AST metrics.
func benchRow(row []float64, c int, rng *rand.Rand) {
	for j := range row {
		switch {
		case j < 200: // sparse term frequencies
			if rng.Float64() < 0.12+0.5*float64((c*31+j)%7)/7 {
				row[j] = float64(1+rng.Intn(4)) / 16
			} else {
				row[j] = 0
			}
		case j < 260: // quantized layout ratios
			row[j] = float64(rng.Intn(9)+(c+j)%25) / 32
		default: // continuous AST-depth style metrics
			row[j] = float64((c+j)%13)*0.35 + rng.NormFloat64()
		}
	}
}

// benchDataset builds the "bench scale" training set the recorded
// BENCH_ml.json baseline refers to: 50 authors x 8 samples over 300
// features — the shape and sparsity profile of one year's reduced
// stylometric design matrix. Keep this in sync with the baseline file;
// changing the shape invalidates recorded numbers.
func benchDataset() *Dataset {
	rng := rand.New(rand.NewSource(97))
	d := &Dataset{NumClasses: 50}
	for c := 0; c < 50; c++ {
		for s := 0; s < 8; s++ {
			row := make([]float64, 300)
			benchRow(row, c, rng)
			d.X = append(d.X, row)
			d.Y = append(d.Y, c)
		}
	}
	return d
}

// BenchmarkFitForest is the acceptance benchmark for the training
// engine: 25 trees at bench scale, sequential (Workers=1) so the
// number measures induction cost, not scheduling.
func BenchmarkFitForest(b *testing.B) {
	d := benchDataset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitForest(d, ForestConfig{NumTrees: 25, Seed: 7, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBestSplit isolates one full root-node split search (the
// per-node inner loop of induction) over a bootstrap sample.
func BenchmarkBestSplit(b *testing.B) {
	d := benchDataset()
	n := len(d.X)
	rng := rand.New(rand.NewSource(3))
	boot := make([]int, n)
	for i := range boot {
		boot[i] = rng.Intn(n)
	}
	cfg := TreeConfig{MTry: 17, MaxDepth: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(11))
		if _, err := FitTree(d, boot, cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictAll measures batch prediction of 1000 rows through a
// 40-tree forest.
func BenchmarkPredictAll(b *testing.B) {
	d := benchDataset()
	f, err := FitForest(d, ForestConfig{NumTrees: 40, Seed: 13, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	X := make([][]float64, 1000)
	for i := range X {
		row := make([]float64, 300)
		benchRow(row, i%50, rng)
		X[i] = row
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := f.PredictAll(X); len(out) != len(X) {
			b.Fatal("short prediction")
		}
	}
}
