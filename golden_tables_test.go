// Golden experiment tables: the rendered text of the experiment suite
// is pinned by hash against the seed (per-node re-sorting) training
// engine. The pre-sorted engine must reproduce every table byte-for-
// byte at every worker count; -update rewrites the goldens and is only
// legitimate when training semantics change on purpose.
package gptattr

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"gptattr/internal/experiments"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files from the current implementation")

// TestGoldenExperimentTables hashes the end-to-end tables (dataset
// build -> feature selection -> forest CV) at two worker counts
// against hashes recorded from the seed implementation.
func TestGoldenExperimentTables(t *testing.T) {
	if testing.Short() {
		t.Skip("golden suite run is not short")
	}
	goldenPath := filepath.Join("testdata", "golden_tables.json")
	got := map[string]string{}
	for _, w := range []int{1, 2} {
		scale := determinismScale
		scale.Workers = w
		s := experiments.NewSuite(scale)
		for i, text := range suiteOutputs(t, s) {
			sum := sha256.Sum256([]byte(text))
			got[fmt.Sprintf("workers=%d/output=%d", w, i)] = hex.EncodeToString(sum[:])
		}
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("golden tables updated")
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run `go test . -run TestGoldenExperimentTables -update` to create): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("golden table set changed: %d entries, golden has %d", len(got), len(want))
	}
	for name, wantSum := range want {
		if got[name] != wantSum {
			t.Errorf("%s: experiment table diverged from seed implementation", name)
		}
	}
}
