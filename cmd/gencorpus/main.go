// Command gencorpus generates the synthetic GCJ datasets (Tables I-II)
// and writes them to disk in a GCJ-like layout:
//
//	<out>/gcj<year>/<author>/<challenge>[_<setting>_<round>].cc
//
// Usage:
//
//	gencorpus -out datasets [-years 2017,2018,2019] [-authors 204]
//	          [-rounds 50] [-styles 12] [-seed 1] [-skip-verify]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"gptattr/internal/corpus"
	"gptattr/internal/gpt"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gencorpus:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gencorpus", flag.ContinueOnError)
	out := fs.String("out", "datasets", "output directory")
	yearsFlag := fs.String("years", "2017,2018,2019", "comma-separated years")
	authors := fs.Int("authors", 204, "authors per year")
	rounds := fs.Int("rounds", 50, "transformation rounds per setting")
	styles := fs.Int("styles", 12, "simulated-ChatGPT style repertoire size")
	seed := fs.Int64("seed", 1, "random seed")
	skipVerify := fs.Bool("skip-verify", false, "skip behaviour verification of transformations")
	humanOnly := fs.Bool("human-only", false, "generate only the non-ChatGPT corpus")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var years []int
	for _, part := range strings.Split(*yearsFlag, ",") {
		y, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("bad year %q: %w", part, err)
		}
		years = append(years, y)
	}

	for _, y := range years {
		start := time.Now()
		human, _, err := corpus.GenerateYear(corpus.YearConfig{
			Year: y, NumAuthors: *authors, Seed: *seed + int64(y),
		})
		if err != nil {
			return err
		}
		if err := corpus.Save(human, *out); err != nil {
			return err
		}
		fmt.Printf("gcj%d: %d human samples (%d authors x 8 challenges) in %.1fs\n",
			y, len(human.Samples), *authors, time.Since(start).Seconds())
		if *humanOnly {
			continue
		}

		start = time.Now()
		model := gpt.NewModel(gpt.Config{Seed: *seed*31 + int64(y), NumStyles: *styles})
		transformed, err := corpus.GenerateTransformed(corpus.TransformedConfig{
			Year: y, Rounds: *rounds, Model: model,
			Seed: *seed*17 + int64(y), SkipVerify: *skipVerify,
		})
		if err != nil {
			return err
		}
		if err := corpus.Save(transformed, *out); err != nil {
			return err
		}
		fmt.Printf("gcj%d: %d transformed samples (4 settings x %d rounds x 8 challenges) in %.1fs\n",
			y, len(transformed.Samples), *rounds, time.Since(start).Seconds())
	}
	fmt.Println("wrote", *out)
	return nil
}
