package ml

import (
	"fmt"
	"math/rand"
	"sort"
)

// Fold is one train/test index split.
type Fold struct {
	Train []int
	Test  []int
}

// StratifiedKFold splits sample indices into k folds preserving class
// proportions. Classes with fewer than k samples still appear in some
// test folds (round-robin).
func StratifiedKFold(y []int, k int, rng *rand.Rand) ([]Fold, error) {
	if k < 2 {
		return nil, fmt.Errorf("ml: k = %d, want >= 2", k)
	}
	if len(y) < k {
		return nil, fmt.Errorf("ml: %d samples for %d folds", len(y), k)
	}
	byClass := make(map[int][]int)
	for i, c := range y {
		byClass[c] = append(byClass[c], i)
	}
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)

	assign := make([]int, len(y))
	for _, c := range classes {
		idx := byClass[c]
		if rng != nil {
			rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		}
		for j, i := range idx {
			assign[i] = j % k
		}
	}
	return foldsFromAssignment(assign, k), nil
}

// GroupKFold produces one fold per distinct group value: the paper's
// leave-one-challenge-out protocol, where each fold tests on the
// held-out challenge and trains on the rest.
func GroupKFold(groups []int) ([]Fold, error) {
	if len(groups) == 0 {
		return nil, ErrEmptyDataset
	}
	distinct := make(map[int]int)
	var order []int
	for _, g := range groups {
		if _, ok := distinct[g]; !ok {
			distinct[g] = len(order)
			order = append(order, g)
		}
	}
	if len(order) < 2 {
		return nil, fmt.Errorf("ml: only %d group(s); need >= 2", len(order))
	}
	sort.Ints(order)
	rank := make(map[int]int, len(order))
	for i, g := range order {
		rank[g] = i
	}
	assign := make([]int, len(groups))
	for i, g := range groups {
		assign[i] = rank[g]
	}
	return foldsFromAssignment(assign, len(order)), nil
}

func foldsFromAssignment(assign []int, k int) []Fold {
	folds := make([]Fold, k)
	for i, f := range assign {
		for j := 0; j < k; j++ {
			if j == f {
				folds[j].Test = append(folds[j].Test, i)
			} else {
				folds[j].Train = append(folds[j].Train, i)
			}
		}
	}
	return folds
}

// FoldResult is the outcome of evaluating one fold.
type FoldResult struct {
	Fold     int
	Accuracy float64
	Pred     []int
	Truth    []int
	// TestIdx are the dataset row indices of Pred/Truth entries.
	TestIdx []int
}

// CrossValidateForest trains a forest per fold and evaluates it on the
// held-out fold.
func CrossValidateForest(d *Dataset, folds []Fold, cfg ForestConfig) ([]FoldResult, error) {
	results := make([]FoldResult, 0, len(folds))
	for fi, fold := range folds {
		train := d.Subset(fold.Train)
		fcfg := cfg
		fcfg.Seed = cfg.Seed + int64(fi)*7919
		forest, err := FitForest(train, fcfg)
		if err != nil {
			return nil, fmt.Errorf("fold %d: %w", fi, err)
		}
		testX := make([][]float64, len(fold.Test))
		truth := make([]int, len(fold.Test))
		for i, j := range fold.Test {
			testX[i] = d.X[j]
			truth[i] = d.Y[j]
		}
		pred := forest.PredictAll(testX)
		results = append(results, FoldResult{
			Fold:     fi,
			Accuracy: Accuracy(pred, truth),
			Pred:     pred,
			Truth:    truth,
			TestIdx:  fold.Test,
		})
	}
	return results, nil
}

// MeanAccuracy averages fold accuracies.
func MeanAccuracy(rs []FoldResult) float64 {
	if len(rs) == 0 {
		return 0
	}
	s := 0.0
	for _, r := range rs {
		s += r.Accuracy
	}
	return s / float64(len(rs))
}
