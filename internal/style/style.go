// Package style models an author's coding style as a structured
// profile: the set of choices (naming convention, indentation, brace
// placement, I/O idiom, decomposition, commenting, spacing, ...) that
// code stylometry recovers from source text. Profiles drive two
// subsystems: codegen renders IR challenges in a profile's style (the
// synthetic GCJ author substrate), and the gpt simulator owns a small
// repertoire of profiles it transforms code toward.
package style

import (
	"fmt"
	"math/rand"
)

// Naming is an identifier naming convention.
type Naming int

// Naming conventions.
const (
	NamingCamel     Naming = iota + 1 // numCases
	NamingSnake                       // num_cases
	NamingHungarian                   // nCase, iCase
	NamingShort                       // n, t, i
	NamingVerbose                     // numberOfTestCases
)

var namingNames = map[Naming]string{
	NamingCamel:     "camel",
	NamingSnake:     "snake",
	NamingHungarian: "hungarian",
	NamingShort:     "short",
	NamingVerbose:   "verbose",
}

// String names the convention.
func (n Naming) String() string {
	if s, ok := namingNames[n]; ok {
		return s
	}
	return fmt.Sprintf("Naming(%d)", int(n))
}

// Brace is a brace-placement style.
type Brace int

// Brace styles.
const (
	BraceKR     Brace = iota + 1 // opening brace on the same line
	BraceAllman                  // opening brace on its own line
)

// IO is the input/output idiom.
type IO int

// IO idioms.
const (
	IOStreams IO = iota + 1 // cin/cout
	IOStdio                 // scanf/printf
	IOMixed                 // cin for input, printf for output (common in GCJ)
)

// Loop is the preferred loop form for counted iteration.
type Loop int

// Loop preferences.
const (
	LoopFor   Loop = iota + 1 // for (int i = 0; i < n; i++)
	LoopWhile                 // int i = 0; while (i < n) { ...; i++ }
)

// Decomp is how much logic the author hoists out of main.
type Decomp int

// Decomposition habits.
const (
	DecompInline     Decomp = iota + 1 // everything in main
	DecompSolvePrint                   // void solve(int k) reads+prints
	DecompSolveValue                   // T solve(...) returns, main prints
)

// Comment is the comment idiom.
type Comment int

// Comment styles.
const (
	CommentNone  Comment = iota + 1
	CommentLine          // // ...
	CommentBlock         // /* ... */
)

// Indent describes indentation.
type Indent struct {
	// UseTabs selects tab indentation; Width is ignored then.
	UseTabs bool
	// Width is the number of spaces per level (2, 3, 4, or 8).
	Width int
}

// Profile is a complete author style.
type Profile struct {
	// Name labels the profile (author id or GPT style id).
	Name string

	Naming Naming
	Indent Indent
	Brace  Brace
	IO     IO
	Loop   Loop
	Decomp Decomp

	// Comments controls comment style; CommentDensity in [0,1] is the
	// probability a block of statements gets a comment.
	Comments       Comment
	CommentDensity float64

	// UsingNamespaceStd emits "using namespace std;" (otherwise
	// std::-qualified names).
	UsingNamespaceStd bool
	// BitsHeader includes <bits/stdc++.h> instead of individual headers.
	BitsHeader bool
	// TypedefLL emits "typedef long long ll;" and uses ll for wide ints.
	TypedefLL bool
	// PreIncrement uses ++i in loop posts (else i++).
	PreIncrement bool
	// SpaceAroundOps writes "a = b + c" (else "a=b+c").
	SpaceAroundOps bool
	// SpaceAfterComma writes "f(a, b)" (else "f(a,b)").
	SpaceAfterComma bool
	// BracesAlways wraps single-statement bodies in braces.
	BracesAlways bool
	// ReturnZero ends main with an explicit "return 0;".
	ReturnZero bool
	// BlankLineDensity in [0,1] is the probability of a blank line
	// between top-level statement groups.
	BlankLineDensity float64
	// CastStyle selects (double)x (0) versus double(x) (1) versus
	// multiplying by 1.0 (2) for int->double conversion.
	CastStyle int
	// ChainReads reads several variables in one statement
	// (cin >> a >> b) rather than one per statement.
	ChainReads bool
	// EndlStyle: 0 = "\n" string, 1 = endl.
	EndlStyle int
	// WideInt uses "long long" (or ll with TypedefLL) for integers
	// instead of plain int.
	WideInt bool
}

// Random draws a uniformly random profile (all axes independent) from
// rng, named name. Corpus generation draws one per synthetic author.
func Random(name string, rng *rand.Rand) Profile {
	p := Profile{
		Name:   name,
		Naming: []Naming{NamingCamel, NamingSnake, NamingHungarian, NamingShort, NamingVerbose}[rng.Intn(5)],
		Brace:  []Brace{BraceKR, BraceKR, BraceAllman}[rng.Intn(3)], // K&R is more common
		IO:     []IO{IOStreams, IOStdio, IOMixed}[rng.Intn(3)],
		Loop:   []Loop{LoopFor, LoopFor, LoopFor, LoopWhile}[rng.Intn(4)],
		Decomp: []Decomp{DecompInline, DecompInline, DecompSolvePrint, DecompSolveValue}[rng.Intn(4)],
	}
	switch rng.Intn(4) {
	case 0:
		p.Indent = Indent{UseTabs: true}
	case 1:
		p.Indent = Indent{Width: 2}
	case 2, 3:
		p.Indent = Indent{Width: 4}
	}
	switch rng.Intn(3) {
	case 0:
		p.Comments = CommentNone
	case 1:
		p.Comments = CommentLine
		p.CommentDensity = 0.2 + rng.Float64()*0.5
	case 2:
		p.Comments = CommentBlock
		p.CommentDensity = 0.1 + rng.Float64()*0.4
	}
	p.UsingNamespaceStd = rng.Float64() < 0.8
	p.BitsHeader = rng.Float64() < 0.35
	p.TypedefLL = rng.Float64() < 0.3
	p.PreIncrement = rng.Float64() < 0.35
	p.SpaceAroundOps = rng.Float64() < 0.7
	p.SpaceAfterComma = rng.Float64() < 0.75
	p.BracesAlways = rng.Float64() < 0.6
	p.ReturnZero = rng.Float64() < 0.7
	p.BlankLineDensity = rng.Float64() * 0.5
	p.CastStyle = rng.Intn(3)
	p.ChainReads = rng.Float64() < 0.7
	p.EndlStyle = rng.Intn(2)
	p.WideInt = rng.Float64() < 0.5
	return p
}

// Distance is a normalized dissimilarity in [0,1] between two profiles,
// counting disagreeing axes. Used in tests and diagnostics.
func Distance(a, b Profile) float64 {
	axes := 0
	diff := 0
	cmp := func(eq bool) {
		axes++
		if !eq {
			diff++
		}
	}
	cmp(a.Naming == b.Naming)
	cmp(a.Indent == b.Indent)
	cmp(a.Brace == b.Brace)
	cmp(a.IO == b.IO)
	cmp(a.Loop == b.Loop)
	cmp(a.Decomp == b.Decomp)
	cmp(a.Comments == b.Comments)
	cmp(a.UsingNamespaceStd == b.UsingNamespaceStd)
	cmp(a.BitsHeader == b.BitsHeader)
	cmp(a.TypedefLL == b.TypedefLL)
	cmp(a.PreIncrement == b.PreIncrement)
	cmp(a.SpaceAroundOps == b.SpaceAroundOps)
	cmp(a.SpaceAfterComma == b.SpaceAfterComma)
	cmp(a.BracesAlways == b.BracesAlways)
	cmp(a.ReturnZero == b.ReturnZero)
	cmp(a.CastStyle == b.CastStyle)
	cmp(a.ChainReads == b.ChainReads)
	cmp(a.EndlStyle == b.EndlStyle)
	cmp(a.WideInt == b.WideInt)
	return float64(diff) / float64(axes)
}
