package fault

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestHitContextLatencyRespectsDeadline pins the satellite contract:
// an injected latency fault must not outlive the caller's context. A
// 10s injected sleep against a 20ms deadline has to return promptly
// with the context error, not after the full sleep.
func TestHitContextLatencyRespectsDeadline(t *testing.T) {
	r := NewRegistry(1)
	r.Set("pt", Policy{Kind: KindLatency, Latency: 10 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := r.HitContext(ctx, "pt")
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("injected latency outlived the context: slept %v", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("HitContext = %v, want context.DeadlineExceeded", err)
	}
}

// TestHitContextLatencyCancel covers explicit cancellation (not just
// deadlines): the sleep wakes as soon as the request is cancelled.
func TestHitContextLatencyCancel(t *testing.T) {
	r := NewRegistry(1)
	r.Set("pt", Policy{Kind: KindLatency, Latency: 10 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- r.HitContext(ctx, "pt") }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("HitContext = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("injected latency ignored cancellation")
	}
}

// TestHitContextShortLatencyCompletes checks the non-expired path: a
// short injected sleep under a generous deadline completes and returns
// nil, exactly like Hit.
func TestHitContextShortLatencyCompletes(t *testing.T) {
	r := NewRegistry(1)
	r.Set("pt", Policy{Kind: KindLatency, Latency: time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.HitContext(ctx, "pt"); err != nil {
		t.Fatalf("HitContext = %v, want nil", err)
	}
}

// TestHitBackgroundLatencyUnchanged pins that plain Hit (background
// context) still sleeps the full injected latency and returns nil.
func TestHitBackgroundLatencyUnchanged(t *testing.T) {
	r := NewRegistry(1)
	r.Set("pt", Policy{Kind: KindLatency, Latency: 10 * time.Millisecond})
	start := time.Now()
	if err := r.Hit("pt"); err != nil {
		t.Fatalf("Hit = %v, want nil", err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("Hit returned after %v, want the full injected 10ms", elapsed)
	}
}

// TestHitContextErrorKind checks non-latency kinds are unaffected by
// the context plumbing.
func TestHitContextErrorKind(t *testing.T) {
	r := NewRegistry(1)
	r.Set("pt", Policy{Kind: KindError})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // even a dead context must not mask the injected error
	var ie *InjectedError
	if err := r.HitContext(ctx, "pt"); !errors.As(err, &ie) {
		t.Fatalf("HitContext = %v, want *InjectedError", err)
	}
}
