// Package cppcheck is a stdlib-only static-analysis layer over the
// cppast tree: per-function control-flow-graph construction,
// reaching-definitions and liveness dataflow with def-use chains, a
// diagnostics engine with stable rule IDs (uninitialized reads, dead
// stores, unreachable statements, unused declarations,
// constant-condition branches), and a normalized program fingerprint
// used by transform.StaticVerify as a conservative equivalence
// pre-screen before the interpreter.
//
// The analyses are deliberately tuned to the competitive-programming
// subset the rest of the system speaks: flat scoping, scalar locals,
// arrays and vectors treated opaquely. Anything outside the subset
// (Unknown nodes, struct members) marks the function unsupported and
// every downstream consumer degrades conservatively — the diagnostics
// engine stays silent and the fingerprint reports "no fingerprint"
// rather than guessing.
package cppcheck

import (
	"gptattr/internal/cppast"
)

// Block is one basic block of a function CFG. Statements are the
// simple (non-control-flow) statements executed in order; Cond, when
// non-nil, is the branch condition evaluated after them, with Succs[0]
// the true edge and Succs[1] the false edge. A block with a nil Cond
// has at most one successor (fall-through), except the synthetic
// dispatch block of a switch, which fans out to its cases.
type Block struct {
	ID    int
	Label string
	Stmts []cppast.Node
	Cond  cppast.Node
	Succs []*Block
	Preds []*Block
	// IsSwitch marks the dispatch block of a switch statement. CaseVals
	// then labels the first len(CaseVals) successor edges with the case
	// values in source order (nil = the default case); any extra edge is
	// the implicit no-match fall-through to the after-block. Analyses
	// that compare behaviour (the fingerprint) must consume these labels
	// — two switches differing only in case values have identical graph
	// shapes.
	IsSwitch bool
	CaseVals []cppast.Node
}

// CFG is the control-flow graph of one function body. Entry and Exit
// are synthetic empty blocks; every return statement edges to Exit.
type CFG struct {
	Fn     *cppast.FuncDecl
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	// Unsupported reports that the body contained constructs outside
	// the analyzable subset (Unknown regions, nested struct/typedef
	// declarations); diagnostics and fingerprints must not trust the
	// graph for behavioural conclusions, only for shape.
	Unsupported bool
}

// Reachable returns the set of blocks reachable from Entry.
func (g *CFG) Reachable() map[*Block]bool {
	seen := make(map[*Block]bool, len(g.Blocks))
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		for _, s := range b.Succs {
			if !seen[s] {
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// postorder appends blocks reachable from b in DFS postorder.
func postorder(b *Block, seen map[*Block]bool, out *[]*Block) {
	if seen[b] {
		return
	}
	seen[b] = true
	for _, s := range b.Succs {
		postorder(s, seen, out)
	}
	*out = append(*out, b)
}

// RPO returns the blocks reachable from Entry in reverse postorder —
// the canonical iteration order for forward dataflow and for the
// fingerprint serialization.
func (g *CFG) RPO() []*Block {
	var post []*Block
	postorder(g.Entry, make(map[*Block]bool, len(g.Blocks)), &post)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// loopCtx is the break/continue target pair of an enclosing loop or
// switch (switch contributes only a break target).
type loopCtx struct {
	brk  *Block
	cont *Block // nil inside a switch with no enclosing loop
}

type cfgBuilder struct {
	g     *CFG
	cur   *Block
	loops []loopCtx
	arena *CFGArena // nil: every node heap-allocated (BuildCFG)
}

// BuildCFG constructs the control-flow graph of fn's body. It returns
// nil for a bodyless prototype. The builder never fails: unsupported
// statements are recorded as opaque block statements and flag the
// graph Unsupported.
func BuildCFG(fn *cppast.FuncDecl) *CFG {
	if fn == nil || fn.Body == nil {
		return nil
	}
	g := &CFG{Fn: fn}
	b := &cfgBuilder{g: g}
	g.Entry = b.newBlock("entry")
	g.Exit = b.newBlock("exit")
	first := b.newBlock("body")
	link(g.Entry, first)
	b.cur = first
	b.stmts(fn.Body.Stmts)
	// Fall off the end of the body: implicit return.
	link(b.cur, g.Exit)
	return g
}

func (b *cfgBuilder) newBlock(label string) *Block {
	var blk *Block
	if b.arena != nil {
		blk = b.arena.takeBlock()
		blk.Label = label
	} else {
		blk = &Block{Label: label}
	}
	blk.ID = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// exprStmt wraps an expression as a statement node (the for-post
// materialization), recycling arena storage when available.
func (b *cfgBuilder) exprStmt(x cppast.Node) *cppast.ExprStmt {
	if b.arena != nil {
		return b.arena.takeExprStmt(x)
	}
	return &cppast.ExprStmt{X: x}
}

func link(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// detach starts a fresh block with no predecessors, used after a
// statement that never falls through (return/break/continue). Any
// following source statements land there and show up as unreachable.
func (b *cfgBuilder) detach(label string) {
	b.cur = b.newBlock(label)
}

func (b *cfgBuilder) stmts(list []cppast.Node) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s cppast.Node) {
	switch n := s.(type) {
	case nil:
	case *cppast.Block:
		b.stmts(n.Stmts)
	case *cppast.Comment, *cppast.EmptyStmt, *cppast.UsingDirective:
		// No behaviour, no dataflow.
	case *cppast.VarDecl, *cppast.ExprStmt, *cppast.Preproc, *cppast.TypedefDecl:
		b.cur.Stmts = append(b.cur.Stmts, s)
	case *cppast.Return:
		b.cur.Stmts = append(b.cur.Stmts, s)
		link(b.cur, b.g.Exit)
		b.detach("after.return")
	case *cppast.Break:
		if t := b.breakTarget(); t != nil {
			link(b.cur, t)
		}
		b.detach("after.break")
	case *cppast.Continue:
		if t := b.continueTarget(); t != nil {
			link(b.cur, t)
		}
		b.detach("after.continue")
	case *cppast.If:
		b.ifStmt(n)
	case *cppast.For:
		b.forStmt(n)
	case *cppast.While:
		b.whileStmt(n)
	case *cppast.DoWhile:
		b.doWhileStmt(n)
	case *cppast.Switch:
		b.switchStmt(n)
	default:
		// Unknown / StructDecl / anything new: keep it as an opaque
		// statement so positions survive, but stop trusting analyses.
		b.cur.Stmts = append(b.cur.Stmts, s)
		b.g.Unsupported = true
	}
}

func (b *cfgBuilder) breakTarget() *Block {
	if len(b.loops) == 0 {
		b.g.Unsupported = true // stray break
		return nil
	}
	return b.loops[len(b.loops)-1].brk
}

func (b *cfgBuilder) continueTarget() *Block {
	for i := len(b.loops) - 1; i >= 0; i-- {
		if b.loops[i].cont != nil {
			return b.loops[i].cont
		}
	}
	b.g.Unsupported = true // stray continue
	return nil
}

func (b *cfgBuilder) ifStmt(n *cppast.If) {
	condBlk := b.cur
	condBlk.Cond = n.Cond
	thenBlk := b.newBlock("if.then")
	join := b.newBlock("if.join")
	link(condBlk, thenBlk)
	if n.Else != nil {
		elseBlk := b.newBlock("if.else")
		link(condBlk, elseBlk)
		b.cur = thenBlk
		b.stmt(n.Then)
		link(b.cur, join)
		b.cur = elseBlk
		b.stmt(n.Else)
		link(b.cur, join)
	} else {
		link(condBlk, join)
		b.cur = thenBlk
		b.stmt(n.Then)
		link(b.cur, join)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(n *cppast.For) {
	if n.Init != nil {
		b.stmt(n.Init)
	}
	cond := b.newBlock("for.cond")
	body := b.newBlock("for.body")
	post := b.newBlock("for.post")
	after := b.newBlock("for.after")
	link(b.cur, cond)
	if n.Cond != nil {
		cond.Cond = n.Cond
		link(cond, body)
		link(cond, after)
	} else {
		link(cond, body) // for(;;): no false edge
	}
	b.loops = append(b.loops, loopCtx{brk: after, cont: post})
	b.cur = body
	b.stmt(n.Body)
	link(b.cur, post)
	if n.Post != nil {
		// Materialize the post clause as a statement so dataflow and
		// the fingerprint see for/while forms identically.
		post.Stmts = append(post.Stmts, b.exprStmt(n.Post))
	}
	link(post, cond)
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}

func (b *cfgBuilder) whileStmt(n *cppast.While) {
	cond := b.newBlock("while.cond")
	body := b.newBlock("while.body")
	after := b.newBlock("while.after")
	link(b.cur, cond)
	cond.Cond = n.Cond
	link(cond, body)
	link(cond, after)
	b.loops = append(b.loops, loopCtx{brk: after, cont: cond})
	b.cur = body
	b.stmt(n.Body)
	link(b.cur, cond)
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}

func (b *cfgBuilder) doWhileStmt(n *cppast.DoWhile) {
	body := b.newBlock("do.body")
	cond := b.newBlock("do.cond")
	after := b.newBlock("do.after")
	link(b.cur, body)
	b.loops = append(b.loops, loopCtx{brk: after, cont: cond})
	b.cur = body
	b.stmt(n.Body)
	link(b.cur, cond)
	cond.Cond = n.Cond
	link(cond, body)
	link(cond, after)
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}

// switchStmt models dispatch as a fan-out from the block holding the
// switch condition to every case head (plus the after-block when no
// default case exists), with fall-through edges between consecutive
// cases. This over-approximates real case matching, which is the safe
// direction for may-analyses.
func (b *cfgBuilder) switchStmt(n *cppast.Switch) {
	dispatch := b.cur
	dispatch.Cond = n.Cond
	dispatch.IsSwitch = true
	after := b.newBlock("switch.after")
	b.loops = append(b.loops, loopCtx{brk: after})
	heads := make([]*Block, len(n.Cases))
	for i, c := range n.Cases {
		heads[i] = b.newBlock("case")
		link(dispatch, heads[i])
		dispatch.CaseVals = append(dispatch.CaseVals, c.Value)
	}
	hasDefault := false
	for _, c := range n.Cases {
		if c.Value == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		link(dispatch, after)
	}
	for i, c := range n.Cases {
		b.cur = heads[i]
		b.stmts(c.Stmts)
		if i+1 < len(n.Cases) {
			link(b.cur, heads[i+1]) // fall-through
		} else {
			link(b.cur, after)
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}
