package attrib

import (
	"testing"

	"gptattr/internal/stylometry"
)

// TestPredictFeaturesAllocs pins the pooled-scratch serving path: once
// the sync.Pool is warm, Oracle.PredictFeatures must be effectively
// allocation-free (a GC draining the pool mid-run may add a stray
// refill, hence the fractional bound over 200 runs).
func TestPredictFeaturesAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector; allocation counts are meaningless")
	}
	fx := fixture(t)
	f, err := stylometry.Extract(fx.human.Samples[0].Source)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if a := testing.AllocsPerRun(200, func() { fx.oracle.PredictFeatures(f) }); a > 0.5 {
		t.Errorf("PredictFeatures allocates %.2f per call, want ~0", a)
	}
}

// TestDetectFeaturesAllocs does the same for the binary classifier's
// serving entry point.
func TestDetectFeaturesAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector; allocation counts are meaningless")
	}
	fx := fixture(t)
	c, err := TrainBinary(fx.human, fx.transformed, fx.cfg)
	if err != nil {
		t.Fatalf("TrainBinary: %v", err)
	}
	f, err := stylometry.Extract(fx.transformed.Samples[0].Source)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if a := testing.AllocsPerRun(200, func() { c.DetectFeatures(f) }); a > 0.5 {
		t.Errorf("DetectFeatures allocates %.2f per call, want ~0", a)
	}
}
