package cpptok

// This file preserves the pre-rewrite scanner verbatim (renamed) as the
// reference implementation for differential testing. The byte-table
// scanner in scanner.go must produce identical token streams, positions,
// and errors on every input — see FuzzScanEquivalence. Keep this in sync
// with nothing: it is intentionally frozen.

import (
	"fmt"
	"strings"
)

// refOperators lists all multi-character operators, longest first, so
// the reference scanner can apply maximal munch by linear search.
var refOperators = []string{
	"<<=", ">>=", "...", "->*", "<=>",
	"::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
	"&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", ".*",
}

// referenceScan is the frozen pre-rewrite Scan.
func referenceScan(src string) ([]Token, error) {
	s := &refScanner{src: src, line: 1, col: 1}
	var firstErr error
	toks := make([]Token, 0, len(src)/3+16)
	for {
		tok, err := s.next()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if tok.Kind != KindInvalid {
			toks = append(toks, tok)
		}
		if tok.Kind == KindEOF {
			break
		}
	}
	return toks, firstErr
}

type refScanner struct {
	src  string
	off  int
	line int
	col  int
}

func (s *refScanner) eof() bool { return s.off >= len(s.src) }

func (s *refScanner) peek() byte {
	if s.eof() {
		return 0
	}
	return s.src[s.off]
}

func (s *refScanner) peekAt(n int) byte {
	if s.off+n >= len(s.src) {
		return 0
	}
	return s.src[s.off+n]
}

func (s *refScanner) advance(n int) {
	for i := 0; i < n && s.off < len(s.src); i++ {
		if s.src[s.off] == '\n' {
			s.line++
			s.col = 1
		} else {
			s.col++
		}
		s.off++
	}
}

func (s *refScanner) errorf(line, col int, format string, args ...any) error {
	return &ScanError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (s *refScanner) atLineStart() bool {
	for i := s.off - 1; i >= 0; i-- {
		switch s.src[i] {
		case '\n':
			return true
		case ' ', '\t', '\r':
			continue
		default:
			return false
		}
	}
	return true
}

func (s *refScanner) next() (Token, error) {
	for !s.eof() {
		c := s.peek()
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			s.advance(1)
			continue
		}
		break
	}
	if s.eof() {
		return Token{Kind: KindEOF, Line: s.line, Col: s.col}, nil
	}

	startLine, startCol, startOff := s.line, s.col, s.off
	c := s.peek()

	mk := func(kind Kind) Token {
		return Token{Kind: kind, Text: s.src[startOff:s.off], Line: startLine, Col: startCol}
	}

	switch {
	case c == '#' && s.atLineStart():
		for !s.eof() && s.peek() != '\n' {
			if s.peek() == '\\' && s.peekAt(1) == '\n' {
				s.advance(2)
				continue
			}
			s.advance(1)
		}
		return mk(KindPreproc), nil

	case c == '/' && s.peekAt(1) == '/':
		for !s.eof() && s.peek() != '\n' {
			s.advance(1)
		}
		return mk(KindLineComment), nil

	case c == '/' && s.peekAt(1) == '*':
		s.advance(2)
		for !s.eof() {
			if s.peek() == '*' && s.peekAt(1) == '/' {
				s.advance(2)
				return mk(KindBlockComment), nil
			}
			s.advance(1)
		}
		return mk(KindBlockComment), s.errorf(startLine, startCol, "unterminated block comment")

	case isIdentStart(c):
		if c == 'R' && s.peekAt(1) == '"' {
			return s.rawString(startLine, startCol, startOff)
		}
		for !s.eof() && isIdentCont(s.peek()) {
			s.advance(1)
		}
		text := s.src[startOff:s.off]
		if cppKeywords[text] {
			return mk(KindKeyword), nil
		}
		return mk(KindIdent), nil

	case c >= '0' && c <= '9', c == '.' && isDigit(s.peekAt(1)):
		return s.number(startLine, startCol, startOff)

	case c == '"':
		return s.quoted('"', KindStringLit, startLine, startCol, startOff)

	case c == '\'':
		return s.quoted('\'', KindCharLit, startLine, startCol, startOff)

	default:
		for _, op := range refOperators {
			if strings.HasPrefix(s.src[s.off:], op) {
				s.advance(len(op))
				return mk(KindPunct), nil
			}
		}
		s.advance(1)
		if !isPunct(c) {
			return mk(KindPunct), s.errorf(startLine, startCol, "unexpected character %q", c)
		}
		return mk(KindPunct), nil
	}
}

func (s *refScanner) rawString(line, col, startOff int) (Token, error) {
	s.advance(2) // R"
	delimStart := s.off
	for !s.eof() && s.peek() != '(' {
		s.advance(1)
	}
	if s.eof() {
		return Token{Kind: KindStringLit, Text: s.src[startOff:s.off], Line: line, Col: col},
			s.errorf(line, col, "unterminated raw string")
	}
	delim := s.src[delimStart:s.off]
	s.advance(1) // (
	closer := ")" + delim + `"`
	for !s.eof() {
		if strings.HasPrefix(s.src[s.off:], closer) {
			s.advance(len(closer))
			return Token{Kind: KindStringLit, Text: s.src[startOff:s.off], Line: line, Col: col}, nil
		}
		s.advance(1)
	}
	return Token{Kind: KindStringLit, Text: s.src[startOff:s.off], Line: line, Col: col},
		s.errorf(line, col, "unterminated raw string")
}

func (s *refScanner) quoted(q byte, kind Kind, line, col, startOff int) (Token, error) {
	s.advance(1)
	for !s.eof() {
		c := s.peek()
		if c == '\\' {
			s.advance(2)
			continue
		}
		if c == q {
			s.advance(1)
			return Token{Kind: kind, Text: s.src[startOff:s.off], Line: line, Col: col}, nil
		}
		if c == '\n' {
			break
		}
		s.advance(1)
	}
	return Token{Kind: kind, Text: s.src[startOff:s.off], Line: line, Col: col},
		s.errorf(line, col, "unterminated %s literal", kind)
}

func (s *refScanner) number(line, col, startOff int) (Token, error) {
	isFloat := false
	if s.peek() == '0' && (s.peekAt(1) == 'x' || s.peekAt(1) == 'X') {
		s.advance(2)
		for !s.eof() && isHexDigit(s.peek()) {
			s.advance(1)
		}
	} else {
		for !s.eof() && isDigit(s.peek()) {
			s.advance(1)
		}
		if s.peek() == '.' && s.peekAt(1) != '.' {
			isFloat = true
			s.advance(1)
			for !s.eof() && isDigit(s.peek()) {
				s.advance(1)
			}
		}
		if c := s.peek(); c == 'e' || c == 'E' {
			next := s.peekAt(1)
			if isDigit(next) || ((next == '+' || next == '-') && isDigit(s.peekAt(2))) {
				isFloat = true
				s.advance(2)
				for !s.eof() && isDigit(s.peek()) {
					s.advance(1)
				}
			}
		}
	}
	for !s.eof() {
		switch s.peek() {
		case 'u', 'U', 'l', 'L':
			s.advance(1)
		case 'f', 'F':
			isFloat = true
			s.advance(1)
		default:
			goto done
		}
	}
done:
	kind := KindIntLit
	if isFloat {
		kind = KindFloatLit
	}
	return Token{Kind: kind, Text: s.src[startOff:s.off], Line: line, Col: col}, nil
}
