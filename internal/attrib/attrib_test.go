package attrib

import (
	"testing"

	"gptattr/internal/corpus"
	"gptattr/internal/gpt"
	"gptattr/internal/stylometry"
)

// testFixture builds a scaled-down year: fewer authors, trees, and
// rounds than the paper, but the same pipeline shape.
type testFixture struct {
	human       *corpus.Corpus
	transformed *corpus.Corpus
	oracle      *Oracle
	cfg         Config
}

var fixtureCache *testFixture

func fixture(t *testing.T) *testFixture {
	t.Helper()
	if fixtureCache != nil {
		return fixtureCache
	}
	cfg := Config{Trees: 20, TopFeatures: 300, Seed: 42}
	human, _, err := corpus.GenerateYear(corpus.YearConfig{Year: 2017, NumAuthors: 16, Seed: 1})
	if err != nil {
		t.Fatalf("GenerateYear: %v", err)
	}
	model := gpt.NewModel(gpt.Config{Seed: 2, NumStyles: 6})
	transformed, err := corpus.GenerateTransformed(corpus.TransformedConfig{
		Year: 2017, Rounds: 5, Model: model, Seed: 3, SkipVerify: true,
	})
	if err != nil {
		t.Fatalf("GenerateTransformed: %v", err)
	}
	oracle, err := TrainOracle(human, cfg)
	if err != nil {
		t.Fatalf("TrainOracle: %v", err)
	}
	fixtureCache = &testFixture{human: human, transformed: transformed, oracle: oracle, cfg: cfg}
	return fixtureCache
}

func TestOracleSelfPrediction(t *testing.T) {
	fx := fixture(t)
	// Training-set prediction should be near-perfect for an RF.
	preds, err := fx.oracle.PredictCorpus(fx.human, nil)
	if err != nil {
		t.Fatalf("PredictCorpus: %v", err)
	}
	hits := 0
	for i, p := range preds {
		if p == fx.human.Samples[i].Author {
			hits++
		}
	}
	acc := float64(hits) / float64(len(preds))
	if acc < 0.95 {
		t.Errorf("training-set accuracy = %.3f, want >= 0.95", acc)
	}
}

func TestOracleGeneralizesAcrossChallenges(t *testing.T) {
	fx := fixture(t)
	acc, err := SelfAccuracy(fx.human, fx.cfg)
	if err != nil {
		t.Fatalf("SelfAccuracy: %v", err)
	}
	// Leave-one-challenge-out on 16 authors: style signal must carry
	// across problems (the premise of code stylometry).
	if acc < 0.6 {
		t.Errorf("grouped CV accuracy = %.3f, want >= 0.6", acc)
	}
	t.Logf("oracle grouped-CV accuracy (16 authors): %.3f", acc)
}

func TestTrainOracleEmpty(t *testing.T) {
	if _, err := TrainOracle(&corpus.Corpus{}, Config{}); err == nil {
		t.Error("empty corpus accepted")
	}
}

func TestAnalyzeStyles(t *testing.T) {
	fx := fixture(t)
	stats, err := AnalyzeStyles(fx.oracle, fx.transformed, nil)
	if err != nil {
		t.Fatalf("AnalyzeStyles: %v", err)
	}
	if len(stats.Predictions) != len(fx.transformed.Samples) {
		t.Fatalf("predictions = %d, want %d", len(stats.Predictions), len(fx.transformed.Samples))
	}
	total := 0
	for _, c := range stats.Histogram {
		total += c
	}
	if total != len(fx.transformed.Samples) {
		t.Errorf("histogram total = %d, want %d", total, len(fx.transformed.Samples))
	}
	if len(stats.CountsByChallenge) != 8 {
		t.Errorf("challenges covered = %d, want 8", len(stats.CountsByChallenge))
	}
	for ch, bySetting := range stats.CountsByChallenge {
		for set, n := range bySetting {
			if n < 1 {
				t.Errorf("%s/%s: style count %d < 1", ch, set, n)
			}
			if n > 16 {
				t.Errorf("%s/%s: style count %d exceeds author count", ch, set, n)
			}
		}
	}
	if mx := stats.MaxStyleCount(); mx < 1 || mx > 16 {
		t.Errorf("MaxStyleCount = %d out of range", mx)
	}
	for _, set := range corpus.Settings() {
		avg := stats.AverageStyleCount(set)
		if avg < 1 || avg > 16 {
			t.Errorf("setting %s: average %v out of range", set, avg)
		}
	}
	label, share := stats.DominantLabel()
	if label == "" || share <= 0 || share > 100 {
		t.Errorf("dominant label (%q, %v) malformed", label, share)
	}
	top := stats.TopLabels(2)
	for i := 1; i < len(top); i++ {
		if top[i].Occurrences > top[i-1].Occurrences {
			t.Error("TopLabels not sorted")
		}
	}
	for _, l := range top {
		if l.Occurrences < 2 {
			t.Error("TopLabels(2) kept a singleton")
		}
	}
}

func TestEvaluateAttributionBothApproaches(t *testing.T) {
	fx := fixture(t)
	naive, err := EvaluateAttribution(fx.human, fx.transformed, fx.oracle, ApproachNaive, fx.cfg)
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	fb, err := EvaluateAttribution(fx.human, fx.transformed, fx.oracle, ApproachFeatureBased, fx.cfg)
	if err != nil {
		t.Fatalf("feature-based: %v", err)
	}
	for _, res := range []*AttributionResult{naive, fb} {
		if len(res.Folds) != 8 {
			t.Fatalf("%s: folds = %d, want 8", res.Approach, len(res.Folds))
		}
		if res.MeanAccuracy <= 0 || res.MeanAccuracy > 1 {
			t.Errorf("%s: mean accuracy %v out of range", res.Approach, res.MeanAccuracy)
		}
		if res.ChatGPTRate < 0 || res.ChatGPTRate > 1 {
			t.Errorf("%s: ChatGPT rate %v out of range", res.Approach, res.ChatGPTRate)
		}
	}
	if naive.TargetLabel != "" {
		t.Error("naive approach has a target label")
	}
	if fb.TargetLabel == "" {
		t.Error("feature-based approach lacks a target label")
	}
	// Naive keeps only the initial response per chain: one sample per
	// setting per challenge.
	if naive.SetSize != 4*8 {
		t.Errorf("naive set = %d, want 32 (4 settings x 8 challenges, round 1 only)", naive.SetSize)
	}
	// The paper's core finding: grouping by similar features does not
	// hurt, and usually helps, ChatGPT-set attribution.
	if fb.ChatGPTRate+1e-9 < naive.ChatGPTRate {
		t.Logf("note: feature-based rate %.2f below naive %.2f at toy scale", fb.ChatGPTRate, naive.ChatGPTRate)
	}
	t.Logf("naive: acc=%.3f gptRate=%.2f; feature-based: acc=%.3f gptRate=%.2f target=%s rate=%.2f",
		naive.MeanAccuracy, naive.ChatGPTRate, fb.MeanAccuracy, fb.ChatGPTRate, fb.TargetLabel, fb.TargetRate)
}

func TestEvaluateAttributionNeedsOracleForFeatureBased(t *testing.T) {
	fx := fixture(t)
	if _, err := EvaluateAttribution(fx.human, fx.transformed, nil, ApproachFeatureBased, fx.cfg); err == nil {
		t.Error("feature-based without oracle accepted")
	}
}

func TestEvaluateBinary(t *testing.T) {
	fx := fixture(t)
	res, err := EvaluateBinary(fx.human, fx.transformed, fx.cfg)
	if err != nil {
		t.Fatalf("EvaluateBinary: %v", err)
	}
	if len(res.Folds) != 8 {
		t.Fatalf("folds = %d, want 8", len(res.Folds))
	}
	if res.GPTSamples != len(fx.transformed.Samples) {
		t.Errorf("GPT samples = %d, want %d", res.GPTSamples, len(fx.transformed.Samples))
	}
	if res.HumanSamples > res.GPTSamples {
		t.Errorf("human samples %d exceed GPT samples %d (balance broken)", res.HumanSamples, res.GPTSamples)
	}
	if res.MeanAccuracy < 0.6 {
		t.Errorf("binary accuracy = %.3f, want >= 0.6 even at toy scale", res.MeanAccuracy)
	}
	t.Logf("binary mean accuracy (toy scale): %.3f", res.MeanAccuracy)
}

func TestEvaluateBinaryEmpty(t *testing.T) {
	fx := fixture(t)
	if _, err := EvaluateBinary(&corpus.Corpus{}, fx.transformed, fx.cfg); err == nil {
		t.Error("empty human corpus accepted")
	}
}

func TestBinaryClassifierPredict(t *testing.T) {
	fx := fixture(t)
	clf, err := TrainBinary(fx.human, fx.transformed, fx.cfg)
	if err != nil {
		t.Fatalf("TrainBinary: %v", err)
	}
	// Training samples should mostly classify correctly.
	hits, total := 0, 0
	for _, s := range fx.human.Samples[:20] {
		isGPT, conf, err := clf.IsChatGPT(s.Source)
		if err != nil {
			t.Fatal(err)
		}
		if conf < 0 || conf > 1 {
			t.Fatalf("confidence %v out of range", conf)
		}
		if !isGPT {
			hits++
		}
		total++
	}
	for _, s := range fx.transformed.Samples[:20] {
		isGPT, _, err := clf.IsChatGPT(s.Source)
		if err != nil {
			t.Fatal(err)
		}
		if isGPT {
			hits++
		}
		total++
	}
	if acc := float64(hits) / float64(total); acc < 0.8 {
		t.Errorf("training-sample binary accuracy = %.2f, want >= 0.8", acc)
	}
}

func TestChallengeIndex(t *testing.T) {
	tests := []struct {
		id   string
		want int
	}{
		{"C1", 1}, {"C8", 8}, {"C12", 12}, {"", 0}, {"X1", 0}, {"Cx", 0},
	}
	for _, tt := range tests {
		if got := challengeIndex(tt.id); got != tt.want {
			t.Errorf("challengeIndex(%q) = %d, want %d", tt.id, got, tt.want)
		}
	}
}

// TestFamiliesRestrictTraining pins the Config.Families ablation knob:
// an oracle trained on a single family must index only that family's
// features, and an unrestricted oracle must span all four.
func TestFamiliesRestrictTraining(t *testing.T) {
	fx := fixture(t)
	cfg := fx.cfg
	cfg.Families = []stylometry.FeatureFamily{stylometry.FamilySemantic}
	oracle, err := TrainOracle(fx.human, cfg)
	if err != nil {
		t.Fatalf("TrainOracle(semantic-only): %v", err)
	}
	names := oracle.vec.FeatureNames()
	if len(names) == 0 {
		t.Fatal("semantic-only oracle indexed no features")
	}
	for _, n := range names {
		if stylometry.Family(n) != stylometry.FamilySemantic {
			t.Fatalf("semantic-only oracle indexed %s feature %q", stylometry.Family(n), n)
		}
	}
	fams := map[stylometry.FeatureFamily]bool{}
	for _, n := range fx.oracle.vec.FeatureNames() {
		fams[stylometry.Family(n)] = true
	}
	for _, fam := range stylometry.AllFamilies {
		if !fams[fam] {
			t.Errorf("unrestricted oracle missing %s features", fam)
		}
	}
}
