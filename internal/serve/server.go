package serve

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"gptattr/internal/serve/metrics"
)

// RequestIDHeader is the end-to-end trace header: minted at the first
// hop that sees a request without one, propagated unchanged through
// every later hop (router → replica), and echoed on every response.
const RequestIDHeader = "X-Request-Id"

// DegradeHeader reports, on every 2xx inference answer, the degrade
// level the response was computed at (0 = full fidelity; see
// stylometry.DegradeLevel). Clients and the fleet router read it to
// tell a browned-out answer from a full one without parsing the body.
const DegradeHeader = "X-Degrade-Level"

// BudgetHeader carries the client's remaining time budget in whole
// milliseconds. Each hop clamps its own per-request deadline to the
// smaller of its configured timeout and this budget, then forwards the
// shrunken remainder — so a 200ms client budget is never stretched to
// a replica's 10s default by crossing the router.
const BudgetHeader = "X-Request-Budget-Ms"

// Config wires a Server together.
type Config struct {
	// Registry supplies the current model generation (required unless
	// Backend is set).
	Registry *Registry
	// Batcher runs feature extraction (required unless Backend is set).
	Batcher *Batcher
	// Backend overrides the default local registry+batcher backend;
	// the fleet router plugs in here.
	Backend Backend
	// Metrics receives request counters and latency histograms; nil
	// creates a private registry.
	Metrics *metrics.Registry
	// Timeout is the per-request deadline (default 10s). Clients hold
	// the other end via their own context; whichever expires first
	// wins.
	Timeout time.Duration
	// MaxBodyBytes bounds request bodies (default 1MiB).
	MaxBodyBytes int64
	// MaxInflight bounds concurrently served requests; overflow
	// answers 429. 0 leaves admission to the backend (the replica's
	// bounded batch queue); the router sets it because it has no
	// queue of its own.
	MaxInflight int
	// Evade, when non-nil, enables the adversarial-evasion endpoints
	// (POST /v1/evade, GET /v1/evade/status) on the default local
	// backend with these bounds. A Backend that implements Evader
	// (the fleet router; a pre-wired LocalBackend) serves them
	// regardless.
	Evade *EvadeOptions
}

// Server is the HTTP attribution service: transport plumbing from
// Core, inference from a pluggable Backend.
type Server struct {
	core    *Core
	backend Backend
	evader  Evader // nil unless the backend serves /v1/evade
	mux     *http.ServeMux
}

// AttributeRequest is the body of POST /v1/attribute and /v1/detect.
type AttributeRequest struct {
	// Source is the C++ source body to analyse.
	Source string `json:"source"`
}

// AttributeResponse answers POST /v1/attribute. DegradeLevel and
// Calibration describe graceful degradation: the level the features
// were computed at (also in X-Degrade-Level) and the serving model's
// training-time out-of-bag accuracy (0 = uncalibrated legacy model).
// Confidence is the top vote share discounted by that calibration.
type AttributeResponse struct {
	Author          string             `json:"author"`
	Proba           map[string]float64 `json:"proba"`
	Confidence      float64            `json:"confidence,omitempty"`
	DegradeLevel    int                `json:"degrade_level,omitempty"`
	Calibration     float64            `json:"calibration,omitempty"`
	ModelGeneration uint64             `json:"model_generation"`
}

// DetectResponse answers POST /v1/detect. Confidence keeps its
// original meaning (the ChatGPT vote share); DegradeLevel and
// Calibration mirror AttributeResponse.
type DetectResponse struct {
	ChatGPT         bool    `json:"chatgpt"`
	Confidence      float64 `json:"confidence"`
	DegradeLevel    int     `json:"degrade_level,omitempty"`
	Calibration     float64 `json:"calibration,omitempty"`
	ModelGeneration uint64  `json:"model_generation"`
}

// ErrorResponse is the body of every non-2xx answer. RequestID echoes
// the X-Request-Id header so clients that only keep bodies can still
// quote the ID when reporting a 429/504 saturation incident.
type ErrorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

// HealthResponse answers GET /healthz.
type HealthResponse struct {
	Status          string `json:"status"`
	ModelGeneration uint64 `json:"model_generation"`
	// StagedGeneration is the loaded-but-not-yet-serving generation
	// (0 = nothing staged); the fleet coordinator polls it between
	// the stage and commit phases of a coordinated reload.
	StagedGeneration uint64 `json:"staged_generation,omitempty"`
	Oracle           bool   `json:"oracle"`
	Detector         bool   `json:"detector"`
	// LadderRungs counts loaded degrade-ladder levels (1 = legacy
	// single-model mode, 3 = full fallback ladder).
	LadderRungs int `json:"ladder_rungs,omitempty"`
	// BrownoutLevel is the overload controller's current forced degrade
	// floor (0 = full fidelity).
	BrownoutLevel int `json:"brownout_level,omitempty"`
}

// ReloadResponse answers POST /v1/reload and /v1/reload/commit.
type ReloadResponse struct {
	ModelGeneration uint64 `json:"model_generation"`
}

// StageResponse answers POST /v1/reload/stage.
type StageResponse struct {
	StagedGeneration uint64 `json:"staged_generation"`
}

// New builds the server over cfg.Backend, or over a LocalBackend when
// only Registry and Batcher are given.
func New(cfg Config) (*Server, error) {
	backend := cfg.Backend
	if backend == nil {
		if cfg.Registry == nil || cfg.Batcher == nil {
			return nil, fmt.Errorf("serve: Registry and Batcher (or a Backend) are required")
		}
		lb := NewLocalBackend(cfg.Registry, cfg.Batcher)
		if cfg.Evade != nil {
			lb.EnableEvade(*cfg.Evade)
		}
		backend = lb
	}
	core := NewCore(cfg.Metrics, cfg.Timeout, cfg.MaxBodyBytes, cfg.MaxInflight)
	s := &Server{core: core, backend: backend, mux: http.NewServeMux()}
	s.mux.HandleFunc("/v1/attribute", s.handleAttribute)
	s.mux.HandleFunc("/v1/detect", s.handleDetect)
	s.mux.HandleFunc("/v1/reload", s.handleReload)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	if _, ok := backend.(Stager); ok {
		s.mux.HandleFunc("/v1/reload/stage", s.handleStage)
		s.mux.HandleFunc("/v1/reload/commit", s.handleCommit)
	}
	if ev, ok := backend.(Evader); ok && ev.EvadeEnabled() {
		s.evader = ev
		s.mux.HandleFunc("/v1/evade", s.handleEvade)
		s.mux.HandleFunc("/v1/evade/status", s.handleEvadeStatus)
	}
	if cfg.Batcher != nil {
		// Batch-size observability: average batch = batched_requests_total
		// / batches_total.
		cfg.Batcher.onBatch = func(n int) {
			core.Metrics().Counter("batches_total").Inc()
			core.Metrics().Counter("batched_requests_total").Add(uint64(n))
		}
	}
	return s, nil
}

// Handler returns the routing handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the metrics registry the server reports into.
func (s *Server) Metrics() *metrics.Registry { return s.core.Metrics() }

// Core exposes the shared transport plumbing (tests and the router
// binary reuse its helpers).
func (s *Server) Core() *Core { return s.core }

// handleInference is the shared endpoint body: count, admit, decode,
// call the backend, map the outcome. call runs the endpoint-specific
// backend method and returns the response value to encode.
func (s *Server) handleInference(w http.ResponseWriter, r *http.Request, endpoint string,
	call func(ctx context.Context, src string) (any, int, error)) {
	met := s.core.Metrics()
	met.Counter(endpoint + "_requests_total").Inc()
	met.Gauge("inflight").Add(1)
	defer met.Gauge("inflight").Add(-1)
	start := time.Now()

	reqID := s.core.Begin(w, r)
	if !s.core.Admit(w, reqID) {
		return
	}
	defer s.core.Release()
	src, ok := s.core.DecodeSource(w, r, reqID)
	if !ok {
		return
	}
	ctx, cancel := s.core.RequestContextFor(r, reqID)
	defer cancel()
	resp, level, err := call(ctx, src)
	if err != nil {
		s.core.FailBackend(w, err, reqID)
		return
	}
	if level > 0 {
		met.Counter(endpoint + "_degraded_total").Inc()
	}
	w.Header().Set(DegradeHeader, strconv.Itoa(level))
	observeEndpoint(met, endpoint, start)
	s.core.WriteJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAttribute(w http.ResponseWriter, r *http.Request) {
	s.handleInference(w, r, "attribute", func(ctx context.Context, src string) (any, int, error) {
		resp, err := s.backend.Attribute(ctx, src)
		return resp, resp.DegradeLevel, err
	})
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	s.handleInference(w, r, "detect", func(ctx context.Context, src string) (any, int, error) {
		resp, err := s.backend.Detect(ctx, src)
		return resp, resp.DegradeLevel, err
	})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	reqID := s.core.Begin(w, r)
	if r.Method != http.MethodPost {
		s.core.WriteError(w, http.StatusMethodNotAllowed, "POST required", reqID)
		return
	}
	gen, err := s.backend.Reload()
	if err != nil {
		// The previous generation is still serving.
		s.core.WriteError(w, http.StatusInternalServerError, "reload failed: "+err.Error(), reqID)
		return
	}
	s.core.Metrics().Counter("reloads_total").Inc()
	s.core.WriteJSON(w, http.StatusOK, ReloadResponse{ModelGeneration: gen})
}

func (s *Server) handleStage(w http.ResponseWriter, r *http.Request) {
	reqID := s.core.Begin(w, r)
	if r.Method != http.MethodPost {
		s.core.WriteError(w, http.StatusMethodNotAllowed, "POST required", reqID)
		return
	}
	gen, err := s.backend.(Stager).Stage()
	if err != nil {
		s.core.WriteError(w, http.StatusInternalServerError, "stage failed: "+err.Error(), reqID)
		return
	}
	s.core.Metrics().Counter("stages_total").Inc()
	s.core.WriteJSON(w, http.StatusOK, StageResponse{StagedGeneration: gen})
}

func (s *Server) handleCommit(w http.ResponseWriter, r *http.Request) {
	reqID := s.core.Begin(w, r)
	if r.Method != http.MethodPost {
		s.core.WriteError(w, http.StatusMethodNotAllowed, "POST required", reqID)
		return
	}
	gen, err := s.backend.(Stager).Commit()
	if err != nil {
		// 409: nothing staged (or the staged generation was torn away);
		// the serving generation is untouched.
		s.core.WriteError(w, http.StatusConflict, "commit failed: "+err.Error(), reqID)
		return
	}
	s.core.Metrics().Counter("reloads_total").Inc()
	s.core.WriteJSON(w, http.StatusOK, ReloadResponse{ModelGeneration: gen})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.core.WriteJSON(w, http.StatusOK, s.backend.Health())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	met := s.core.Metrics()
	s.backend.Observe(met)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	met.WriteText(w)
}
