package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gptattr/internal/attrib"
	"gptattr/internal/stylometry"
)

func TestLadderFileNames(t *testing.T) {
	cases := []struct {
		base string
		lvl  stylometry.DegradeLevel
		want string
	}{
		{OracleFile, stylometry.DegradeNone, "oracle.model"},
		{OracleFile, stylometry.DegradeNoSemantic, "oracle.l1.model"},
		{OracleFile, stylometry.DegradeSurface, "oracle.l2.model"},
		{DetectorFile, stylometry.DegradeNone, "detector.model"},
		{DetectorFile, stylometry.DegradeSurface, "detector.l2.model"},
	}
	for _, c := range cases {
		if got := ladderFile(c.base, c.lvl); got != c.want {
			t.Errorf("ladderFile(%q, %v) = %q, want %q", c.base, c.lvl, got, c.want)
		}
	}
}

func TestOracleForRungSelection(t *testing.T) {
	full := new(attrib.Oracle)
	l1 := new(attrib.Oracle)
	l2 := new(attrib.Oracle)

	// Full ladder: every vector level gets its exact rung.
	m := &Models{Oracles: [stylometry.DegradeLevels]*attrib.Oracle{full, l1, l2}}
	for lvl := stylometry.DegradeNone; lvl <= stylometry.MaxDegrade; lvl++ {
		o, eff := m.OracleFor(lvl)
		if o != m.Oracles[lvl] || eff != lvl {
			t.Errorf("full ladder, level %v: got rung %p eff %v", lvl, o, eff)
		}
	}

	// Missing middle rung: a level-1 vector is scored by the DEEPER
	// rung (trained on a subset of its surviving families — exact),
	// and the answer reports the rung's level.
	m = &Models{Oracles: [stylometry.DegradeLevels]*attrib.Oracle{full, nil, l2}}
	o, eff := m.OracleFor(stylometry.DegradeNoSemantic)
	if o != l2 || eff != stylometry.DegradeSurface {
		t.Errorf("missing l1: got rung %p eff %v, want l2 rung eff %v", o, eff, stylometry.DegradeSurface)
	}

	// Legacy single-model mode: only the base exists, so a degraded
	// vector falls back to it; the effective level stays the vector's.
	m = &Models{Oracles: [stylometry.DegradeLevels]*attrib.Oracle{full, nil, nil}}
	o, eff = m.OracleFor(stylometry.DegradeSurface)
	if o != full || eff != stylometry.DegradeSurface {
		t.Errorf("legacy mode: got rung %p eff %v, want base rung eff %v", o, eff, stylometry.DegradeSurface)
	}

	// Nothing loaded at all.
	m = &Models{}
	if o, _ := m.OracleFor(stylometry.DegradeNone); o != nil {
		t.Errorf("empty models returned an oracle")
	}
}

// TestRegistryLoadsLadderAtomically pins the hot-reload contract for
// ladders: a published Models never mutates, and one Load swaps every
// rung of both models together.
func TestRegistryLoadsLadderAtomically(t *testing.T) {
	// Start legacy: base files only.
	dir := modelDir(t)
	r, err := NewRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	legacy := r.Current()
	if legacy.Oracle == nil || legacy.Oracles[0] != legacy.Oracle {
		t.Fatal("base rung not aliased to Models.Oracle")
	}
	if legacy.Oracles[1] != nil || legacy.Oracles[2] != nil {
		t.Fatal("legacy directory loaded phantom ladder rungs")
	}

	// Drop the deeper rungs in and reload.
	ladOnce.Do(trainLadders)
	if ladErr != nil {
		t.Fatalf("training fixture ladders: %v", ladErr)
	}
	for lvl := stylometry.DegradeNoSemantic; lvl <= stylometry.MaxDegrade; lvl++ {
		if err := os.WriteFile(filepath.Join(dir, ladderFile(OracleFile, lvl)), ladOracleBytes[lvl], 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, ladderFile(DetectorFile, lvl)), ladDetBytes[lvl], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Load(); err != nil {
		t.Fatal(err)
	}
	cur := r.Current()
	if cur.Generation != legacy.Generation+1 {
		t.Fatalf("generation %d after reload, want %d", cur.Generation, legacy.Generation+1)
	}
	for lvl := stylometry.DegradeNone; lvl <= stylometry.MaxDegrade; lvl++ {
		if cur.Oracles[lvl] == nil || cur.Detectors[lvl] == nil {
			t.Fatalf("rung %v missing after ladder reload", lvl)
		}
	}
	// The old generation is immutable: requests that grabbed it before
	// the swap still see exactly what they started with.
	if legacy.Oracles[1] != nil || legacy.Oracles[2] != nil {
		t.Fatal("reload mutated a published Models (ladder swap not atomic)")
	}
}

// degradeForcingBatcher extracts real features at the given forced
// level, standing in for budget exhaustion or brownout pressure
// deterministically.
func degradeForcingBatcher(lvl stylometry.DegradeLevel) *Batcher {
	return NewBatcher(BatchConfig{
		MaxBatch: 4, MaxDelay: time.Millisecond, QueueDepth: 16,
		extractCtxFn: func(ctxs []context.Context, sources []string,
			_ stylometry.DegradeLevel) ([]stylometry.Features, []stylometry.DegradeLevel, []error) {
			return stylometry.ExtractEachDegraded(ctxs, sources, lvl, stylometry.ExtractConfig{Workers: 1})
		},
	})
}

// TestServerServesDegradedFromLadder is the family-fallback acceptance
// path: a degraded vector is scored by the matching rung, the response
// carries X-Degrade-Level, and confidence is discounted by that rung's
// out-of-bag calibration.
func TestServerServesDegradedFromLadder(t *testing.T) {
	r, err := NewRegistry(ladderDir(t))
	if err != nil {
		t.Fatal(err)
	}
	b := degradeForcingBatcher(stylometry.DegradeNoSemantic)
	s, err := New(Config{Registry: r, Batcher: b, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); b.Close() })

	resp, body := postJSON(t, ts.URL+"/v1/attribute", AttributeRequest{Source: sampleSource(t, 0)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded attribute: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(DegradeHeader); got != "1" {
		t.Errorf("%s = %q, want 1", DegradeHeader, got)
	}
	var ar AttributeResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Author == "" {
		t.Error("degraded answer has no author")
	}
	if ar.DegradeLevel != 1 {
		t.Errorf("DegradeLevel %d, want 1", ar.DegradeLevel)
	}
	if ar.Calibration <= 0 || ar.Calibration > 1 {
		t.Errorf("Calibration %v, want (0,1] from the ladder rung's OOB estimate", ar.Calibration)
	}
	if ar.Confidence <= 0 || ar.Confidence > ar.Calibration {
		t.Errorf("Confidence %v outside (0, calibration=%v]", ar.Confidence, ar.Calibration)
	}

	resp, body = postJSON(t, ts.URL+"/v1/detect", AttributeRequest{Source: sampleSource(t, 1)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded detect: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(DegradeHeader); got != "1" {
		t.Errorf("detect %s = %q, want 1", DegradeHeader, got)
	}
	var dr DetectResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.DegradeLevel != 1 || dr.Calibration <= 0 {
		t.Errorf("detect DegradeLevel %d Calibration %v, want 1 and > 0", dr.DegradeLevel, dr.Calibration)
	}

	// A healthz probe reports the full ladder.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if err := hr.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if h.LadderRungs != stylometry.DegradeLevels {
		t.Errorf("LadderRungs %d, want %d", h.LadderRungs, stylometry.DegradeLevels)
	}
}

// TestServerLegacyModelScoresDegraded pins the compatibility path: a
// model directory with only base files still answers degraded vectors
// (missing features read as zero), reporting the vector's level and a
// zero calibration so clients can tell the answer is uncalibrated.
func TestServerLegacyModelScoresDegraded(t *testing.T) {
	r, err := NewRegistry(modelDir(t))
	if err != nil {
		t.Fatal(err)
	}
	b := degradeForcingBatcher(stylometry.DegradeSurface)
	s, err := New(Config{Registry: r, Batcher: b, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); b.Close() })

	resp, body := postJSON(t, ts.URL+"/v1/attribute", AttributeRequest{Source: sampleSource(t, 0)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy degraded attribute: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(DegradeHeader); got != "2" {
		t.Errorf("%s = %q, want 2", DegradeHeader, got)
	}
	var ar AttributeResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.DegradeLevel != 2 {
		t.Errorf("DegradeLevel %d, want 2 (the vector's level)", ar.DegradeLevel)
	}
	if ar.Calibration != 0 {
		t.Errorf("Calibration %v, want 0 (legacy base model is uncalibrated)", ar.Calibration)
	}
}

// TestRetryAfterAndEnvelopeOn503 pins the router/replica-shared error
// contract: every 503 tells clients when to come back and carries the
// request ID in the standard JSON envelope.
func TestRetryAfterAndEnvelopeOn503(t *testing.T) {
	r, err := NewRegistry(t.TempDir()) // empty: no models -> 503
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(BatchConfig{QueueDepth: 4})
	s, err := New(Config{Registry: r, Batcher: b})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); b.Close() })

	resp, body := postJSON(t, ts.URL+"/v1/attribute", AttributeRequest{Source: "int main(){}"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("503 Retry-After = %q, want \"1\"", got)
	}
	var envelope ErrorResponse
	if err := json.Unmarshal(body, &envelope); err != nil {
		t.Fatalf("503 body is not the standard envelope: %v (%s)", err, body)
	}
	if envelope.Error == "" {
		t.Error("503 envelope missing error message")
	}
	if envelope.RequestID == "" {
		t.Error("503 envelope missing request_id")
	}
	if envelope.RequestID != resp.Header.Get(RequestIDHeader) {
		t.Errorf("envelope request_id %q != header %q", envelope.RequestID, resp.Header.Get(RequestIDHeader))
	}
}

// TestRequestContextForBudgetClamp pins the budget-header contract:
// each hop's deadline is min(configured timeout, client budget).
func TestRequestContextForBudgetClamp(t *testing.T) {
	r, err := NewRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(BatchConfig{QueueDepth: 4})
	s, err := New(Config{Registry: r, Batcher: b, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)

	deadlineFor := func(budget string) time.Duration {
		req := httptest.NewRequest(http.MethodPost, "/v1/attribute", nil)
		if budget != "" {
			req.Header.Set(BudgetHeader, budget)
		}
		ctx, cancel := s.Core().RequestContextFor(req, "test")
		defer cancel()
		dl, ok := ctx.Deadline()
		if !ok {
			t.Fatalf("budget %q: no deadline", budget)
		}
		return time.Until(dl)
	}

	if d := deadlineFor("50"); d > 60*time.Millisecond {
		t.Errorf("budget 50ms left deadline at %v, want clamped under it", d)
	}
	if d := deadlineFor("60000"); d < 5*time.Second || d > 10*time.Second {
		t.Errorf("budget above timeout gave %v, want the configured 10s", d)
	}
	if d := deadlineFor(""); d < 5*time.Second {
		t.Errorf("no budget gave %v, want the configured timeout", d)
	}
	if d := deadlineFor("garbage"); d < 5*time.Second {
		t.Errorf("malformed budget gave %v, want the configured timeout", d)
	}
	if d := deadlineFor("-5"); d < 5*time.Second {
		t.Errorf("negative budget gave %v, want the configured timeout", d)
	}
}
