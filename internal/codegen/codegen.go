// Package codegen renders an ir.Program into C++ source in a given
// author style: the synthetic-author substrate standing in for the
// paper's Google Code Jam participant corpus. Every rendering of the
// same program is behaviourally identical (verified against the IR
// evaluator by this package's tests via cppinterp) while the surface
// form — naming, layout, decomposition, I/O idiom, loop forms — tracks
// the style.Profile.
package codegen

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"
	"strings"

	"gptattr/internal/ir"
	"gptattr/internal/style"
)

// Render produces C++ source for prog in the profile's style. fileSeed
// jitters per-file details (comments, blank lines) so that an author's
// files vary naturally while their style axes stay fixed; naming
// synonym choices derive from the profile name, so the same author
// names the same program the same way every time.
func Render(prog *ir.Program, prof style.Profile, fileSeed int64) string {
	h := fnv.New64a()
	h.Write([]byte(prof.Name))
	authorRng := rand.New(rand.NewSource(int64(h.Sum64())))
	r := &renderer{
		prof:    prof,
		nm:      style.NewNamer(prof.Naming, authorRng),
		fileRng: rand.New(rand.NewSource(fileSeed)),
	}
	return r.render(prog)
}

type renderer struct {
	prof    style.Profile
	nm      *style.Namer
	fileRng *rand.Rand
	b       strings.Builder
	level   int

	usesVector bool
	usesMath   bool
	usesAlgo   bool
}

// --- type and name helpers ---

// intType is the rendered integer type.
func (r *renderer) intType() string {
	switch {
	case r.prof.TypedefLL:
		return "ll"
	case r.prof.WideInt:
		return "long long"
	default:
		return "int"
	}
}

func (r *renderer) typeOf(t ir.Type) string {
	if t == ir.TFloat {
		return "double"
	}
	return r.intType()
}

// qual prefixes std:: when the file does not import the namespace.
func (r *renderer) qual(name string) string {
	if r.prof.UsingNamespaceStd {
		return name
	}
	return "std::" + name
}

// --- layout helpers ---

func (r *renderer) indent() string {
	if r.prof.Indent.UseTabs {
		return strings.Repeat("\t", r.level)
	}
	w := r.prof.Indent.Width
	if w <= 0 {
		w = 4
	}
	return strings.Repeat(" ", w*r.level)
}

func (r *renderer) line(s string) {
	r.b.WriteString(r.indent())
	r.b.WriteString(s)
	r.b.WriteByte('\n')
}

func (r *renderer) blank() { r.b.WriteByte('\n') }

func (r *renderer) maybeBlank() {
	if r.fileRng.Float64() < r.prof.BlankLineDensity {
		r.blank()
	}
}

// open starts a braced block after header text (e.g. "if (x)"),
// honoring the brace style, and increases the indent level.
func (r *renderer) open(header string) {
	if r.prof.Brace == style.BraceAllman {
		r.line(header)
		r.line("{")
	} else {
		r.line(header + " {")
	}
	r.level++
}

// close ends a braced block, optionally with a trailing suffix like
// ";" for do-while (unused) or nothing.
func (r *renderer) close(suffix string) {
	r.level--
	r.line("}" + suffix)
}

// sp is the spacing around binary operators.
func (r *renderer) sp() string {
	if r.prof.SpaceAroundOps {
		return " "
	}
	return ""
}

// kw formats a control keyword heading: "if (" vs "if(".
func (r *renderer) kw(word string) string {
	if r.prof.SpaceAroundOps {
		return word + " ("
	}
	return word + "("
}

// commaSep joins with the profile's comma spacing.
func (r *renderer) commaSep(parts []string) string {
	sep := ","
	if r.prof.SpaceAfterComma {
		sep = ", "
	}
	return strings.Join(parts, sep)
}

// comment emits a comment line with probability CommentDensity.
func (r *renderer) comment(pool ...string) {
	if r.prof.Comments == style.CommentNone || len(pool) == 0 {
		return
	}
	if r.fileRng.Float64() >= r.prof.CommentDensity {
		return
	}
	text := pool[r.fileRng.Intn(len(pool))]
	if r.prof.Comments == style.CommentBlock {
		r.line("/* " + text + " */")
	} else {
		r.line("// " + text)
	}
}

// --- program structure ---

func (r *renderer) render(prog *ir.Program) string {
	// Render the body into a scratch buffer first to discover which
	// headers are needed, then assemble the final file.
	body := r.renderProgram(prog)
	var out strings.Builder
	out.WriteString(r.headers(prog))
	if r.prof.UsingNamespaceStd {
		out.WriteString("using namespace std;\n")
	}
	if r.prof.TypedefLL {
		out.WriteString("typedef long long ll;\n")
	}
	out.WriteByte('\n')
	out.WriteString(body)
	return out.String()
}

func (r *renderer) headers(prog *ir.Program) string {
	if r.prof.BitsHeader {
		return "#include <bits/stdc++.h>\n"
	}
	var hs []string
	usesStreams := r.prof.IO == style.IOStreams || r.prof.IO == style.IOMixed
	usesStdio := r.prof.IO == style.IOStdio || r.prof.IO == style.IOMixed
	if usesStreams {
		hs = append(hs, "iostream")
	}
	if usesStdio {
		hs = append(hs, "cstdio")
	}
	if r.usesAlgo {
		hs = append(hs, "algorithm")
	}
	if r.usesMath {
		hs = append(hs, "cmath")
	}
	if r.usesVector {
		hs = append(hs, "vector")
	}
	if usesStreams && r.prof.IO != style.IOMixed && prog.Out.T == ir.TFloat {
		hs = append(hs, "iomanip")
	}
	var b strings.Builder
	for _, h := range hs {
		b.WriteString("#include <" + h + ">\n")
	}
	return b.String()
}

func (r *renderer) renderProgram(prog *ir.Program) string {
	r.b.Reset()
	casesVar := r.nm.Name("cases")
	caseVar := r.nm.Name("caseno")

	switch r.prof.Decomp {
	case style.DecompSolvePrint:
		fn := r.nm.Name("solvefn")
		r.comment("handle one test case", "per-case work", "solve a single case")
		r.open("void " + fn + "(" + r.commaSep([]string{r.intType() + " " + caseVar}) + ")")
		r.stmts(prog.Body)
		r.output(prog.Out, caseVar)
		r.close("")
		r.blank()
		r.open("int main()")
		r.readCases(casesVar)
		r.caseLoop(caseVar, casesVar, func() {
			r.line(fn + "(" + caseVar + ");")
		})
		if r.prof.ReturnZero {
			r.line("return 0;")
		}
		r.close("")
	case style.DecompSolveValue:
		fn := r.nm.Name("solvefn")
		resType := r.typeOf(prog.Out.T)
		r.comment("compute the answer for one case", "per-case computation")
		r.open(resType + " " + fn + "()")
		r.stmts(prog.Body)
		r.line("return " + r.expr(prog.Out.X, 0) + ";")
		r.close("")
		r.blank()
		r.open("int main()")
		r.readCases(casesVar)
		r.caseLoop(caseVar, casesVar, func() {
			resVar := r.nm.Name("res")
			if resVar == caseVar || resVar == casesVar {
				resVar = "answer"
			}
			r.line(resType + " " + resVar + r.sp() + "=" + r.sp() + fn + "();")
			r.outputValue(prog.Out, caseVar, resVar)
		})
		if r.prof.ReturnZero {
			r.line("return 0;")
		}
		r.close("")
	default: // DecompInline
		r.open("int main()")
		r.readCases(casesVar)
		r.caseLoop(caseVar, casesVar, func() {
			r.stmts(prog.Body)
			r.output(prog.Out, caseVar)
		})
		if r.prof.ReturnZero {
			r.line("return 0;")
		}
		r.close("")
	}
	return r.b.String()
}

func (r *renderer) readCases(casesVar string) {
	r.comment("read the number of test cases", "how many cases follow")
	r.line(r.intType() + " " + casesVar + ";")
	r.readInto([]string{casesVar}, ir.TInt, false)
	r.maybeBlank()
}

// caseLoop emits the 1..T loop with the case counter visible as
// caseVar.
func (r *renderer) caseLoop(caseVar, casesVar string, body func()) {
	s := r.sp()
	post := caseVar + "++"
	if r.prof.PreIncrement {
		post = "++" + caseVar
	}
	if r.prof.Loop == style.LoopWhile {
		r.line(r.intType() + " " + caseVar + s + "=" + s + "1;")
		r.open(r.kw("while") + caseVar + s + "<=" + s + casesVar + ")")
		body()
		r.line(post + ";")
		r.close("")
		return
	}
	header := r.kw("for") + r.intType() + " " + caseVar + s + "=" + s + "1; " +
		caseVar + s + "<=" + s + casesVar + "; " + post + ")"
	r.open(header)
	body()
	r.close("")
}

// --- statements ---

func (r *renderer) stmts(list []ir.Stmt) {
	for _, s := range list {
		r.stmt(s)
	}
}

func (r *renderer) stmt(s ir.Stmt) {
	sp := r.sp()
	switch n := s.(type) {
	case ir.Decl:
		init := ""
		if n.Init != nil {
			init = sp + "=" + sp + r.expr(n.Init, 0)
		} else if n.T == ir.TFloat {
			init = sp + "=" + sp + "0.0"
		} else {
			init = sp + "=" + sp + "0"
		}
		r.line(r.typeOf(n.T) + " " + r.nm.Name(n.Name) + init + ";")
	case ir.DeclArray:
		r.comment("bucket storage", "fixed-size table")
		name := r.nm.Name(n.Name)
		r.line(r.typeOf(n.T) + " " + name + "[" + r.expr(n.Size, 0) + "];")
		// Zero-initialize explicitly (VLA-safe and style-visible).
		iv := r.nm.Name("j")
		r.open(r.kw("for") + r.intType() + " " + iv + sp + "=" + sp + "0; " + iv + sp + "<" + sp + r.expr(n.Size, 0) + "; " + r.incExpr(iv) + ")")
		r.line(name + "[" + iv + "]" + sp + "=" + sp + "0;")
		r.close("")
	case ir.DeclVec:
		r.usesVector = true
		elem := r.typeOf(n.T)
		r.line(r.qual("vector") + "<" + elem + "> " + r.nm.Name(n.Name) + ";")
	case ir.ReadDecl:
		names := make([]string, len(n.Vars))
		for i, rv := range n.Vars {
			names[i] = r.nm.Name(rv.Name)
		}
		r.comment("read input values", "grab the next inputs", "input for this case")
		t := r.typeOf(n.T)
		if len(names) == 1 {
			r.line(t + " " + names[0] + ";")
		} else if r.prof.ChainReads {
			r.line(t + " " + r.commaSep(names) + ";")
		} else {
			for _, nm := range names {
				r.line(t + " " + nm + ";")
			}
		}
		r.readInto(names, n.T, true)
	case ir.Assign:
		r.line(r.assignText(r.nm.Name(n.Name), n.Op, n.X) + ";")
	case ir.AssignIndex:
		target := r.nm.Name(n.Arr) + "[" + r.expr(n.Idx, 0) + "]"
		r.line(r.assignText(target, n.Op, n.X) + ";")
	case ir.PushBack:
		r.line(r.nm.Name(n.Vec) + ".push_back(" + r.expr(n.X, 0) + ");")
	case ir.SortVec:
		r.usesAlgo = true
		vec := r.nm.Name(n.Vec)
		r.comment("order the values", "sort ascending")
		r.line(r.qual("sort") + "(" + r.commaSep([]string{vec + ".begin()", vec + ".end()"}) + ");")
	case ir.CountLoop:
		r.renderCountLoop(n)
	case ir.WhileLoop:
		r.comment("iterate until done", "keep going while possible")
		r.open(r.kw("while") + r.expr(n.Cond, 0) + ")")
		r.stmts(n.Body)
		r.close("")
	case ir.If:
		r.renderIf(n)
	default:
		r.line(fmt.Sprintf("/* unsupported IR statement %T */", s))
	}
}

// assignText renders "x = e" with special-casing for x += 1 -> x++
// style variation.
func (r *renderer) assignText(target, op string, x ir.Expr) string {
	sp := r.sp()
	if op == "+=" {
		if lit, ok := x.(ir.IntLit); ok && lit.V == 1 {
			return r.incExpr(target)
		}
	}
	prec := 1 // assignment context: comma needs parens, nothing else
	return target + sp + op + sp + r.expr(x, prec)
}

func (r *renderer) incExpr(target string) string {
	if r.prof.PreIncrement {
		return "++" + target
	}
	return target + "++"
}

func (r *renderer) renderCountLoop(n ir.CountLoop) {
	sp := r.sp()
	lv := r.nm.Name(n.Var)
	from := r.expr(n.From, 0)
	to := r.expr(n.To, 0)
	r.comment("loop over the items", "process each entry", "main loop")
	if r.prof.Loop == style.LoopWhile {
		r.line(r.intType() + " " + lv + sp + "=" + sp + from + ";")
		r.open(r.kw("while") + lv + sp + "<" + sp + to + ")")
		r.stmts(n.Body)
		r.line(r.incExpr(lv) + ";")
		r.close("")
		return
	}
	header := r.kw("for") + r.intType() + " " + lv + sp + "=" + sp + from + "; " +
		lv + sp + "<" + sp + to + "; " + r.incExpr(lv) + ")"
	if !r.prof.BracesAlways && len(n.Body) == 1 && isSimpleStmt(n.Body[0]) {
		r.line(header)
		r.level++
		r.stmts(n.Body)
		r.level--
		return
	}
	r.open(header)
	r.stmts(n.Body)
	r.close("")
}

func (r *renderer) renderIf(n ir.If) {
	header := r.kw("if") + r.expr(n.Cond, 0) + ")"
	braceThen := r.prof.BracesAlways || len(n.Then) != 1 || !isSimpleStmt(n.Then[0]) || len(n.Else) > 0
	if braceThen {
		r.open(header)
		r.stmts(n.Then)
		if len(n.Else) > 0 {
			// "} else {" for K&R; "else" on its own line for Allman.
			if r.prof.Brace == style.BraceAllman {
				r.close("")
				r.open("else")
			} else {
				r.level--
				r.line("} else {")
				r.level++
			}
			r.stmts(n.Else)
		}
		r.close("")
		return
	}
	r.line(header)
	r.level++
	r.stmts(n.Then)
	r.level--
}

// isSimpleStmt reports whether a statement can stand unbraced.
func isSimpleStmt(s ir.Stmt) bool {
	switch s.(type) {
	case ir.Assign, ir.AssignIndex, ir.PushBack:
		return true
	default:
		return false
	}
}

// --- I/O ---

// readInto emits the read statement(s) for already-declared variables.
func (r *renderer) readInto(names []string, t ir.Type, allowChain bool) {
	switch r.prof.IO {
	case style.IOStdio:
		verb := "%lld"
		if r.intType() == "int" {
			verb = "%d"
		}
		if t == ir.TFloat {
			verb = "%lf"
		}
		verbs := make([]string, len(names))
		addrs := make([]string, len(names))
		for i, nm := range names {
			verbs[i] = verb
			addrs[i] = "&" + nm
		}
		args := append([]string{"\"" + strings.Join(verbs, " ") + "\""}, addrs...)
		r.line("scanf(" + r.commaSep(args) + ");")
	default: // streams and mixed both read with cin
		if allowChain && r.prof.ChainReads || len(names) == 1 {
			r.line(r.qual("cin") + " >> " + strings.Join(names, " >> ") + ";")
		} else {
			for _, nm := range names {
				r.line(r.qual("cin") + " >> " + nm + ";")
			}
		}
	}
}

// output emits the "Case #k: value" line computing the value inline.
func (r *renderer) output(out ir.Output, caseVar string) {
	r.outputValue(out, caseVar, r.expr(out.X, 2))
}

// outputValue emits the case line for an already-rendered value
// expression.
func (r *renderer) outputValue(out ir.Output, caseVar, valueExpr string) {
	useStdio := r.prof.IO == style.IOStdio || r.prof.IO == style.IOMixed
	if useStdio {
		caseVerb := "%lld"
		if r.intType() == "int" {
			caseVerb = "%d"
		}
		valVerb := caseVerb
		if out.T == ir.TFloat {
			prec := out.Precision
			if prec <= 0 {
				prec = 6
			}
			valVerb = "%." + strconv.Itoa(prec) + "lf"
		}
		args := []string{
			"\"Case #" + caseVerb + ": " + valVerb + "\\n\"",
			caseVar,
			valueExpr,
		}
		r.line("printf(" + r.commaSep(args) + ");")
		return
	}
	// Streams.
	end := `"\n"`
	if r.prof.EndlStyle == 1 {
		end = r.qual("endl")
	}
	var mid string
	if out.T == ir.TFloat {
		prec := out.Precision
		if prec <= 0 {
			prec = 6
		}
		mid = r.qual("fixed") + " << " + r.qual("setprecision") + "(" + strconv.Itoa(prec) + ") << "
	}
	r.line(r.qual("cout") + " << \"Case #\" << " + caseVar + " << \": \" << " + mid + valueExpr + " << " + end + ";")
}

// --- expressions ---

// precedence for parenthesization decisions.
var precOf = map[string]int{
	"||": 3, "&&": 4,
	"==": 8, "!=": 8,
	"<": 9, "<=": 9, ">": 9, ">=": 9,
	"+": 11, "-": 11,
	"*": 12, "/": 12, "%": 12,
}

// expr renders e; parent is the precedence of the enclosing operator
// (0 = statement/argument context).
func (r *renderer) expr(e ir.Expr, parent int) string {
	sp := r.sp()
	switch n := e.(type) {
	case ir.Var:
		return r.nm.Name(n.Name)
	case ir.IntLit:
		return strconv.FormatInt(n.V, 10)
	case ir.FloatLit:
		s := strconv.FormatFloat(n.V, 'g', -1, 64)
		if !strings.ContainsAny(s, ".e") {
			s += ".0"
		}
		return s
	case ir.Bin:
		prec := precOf[n.Op]
		l := r.expr(n.L, prec)
		rr := r.expr(n.R, prec+1)
		gap := sp
		// Logical connectives read better spaced even in tight styles;
		// and a '-'/'+' operator must not glue onto a same-signed
		// operand ("v--8" would re-tokenize as a decrement).
		if !r.prof.SpaceAroundOps {
			if n.Op == "&&" || n.Op == "||" {
				gap = " "
			} else if len(rr) > 0 && n.Op[len(n.Op)-1] == rr[0] {
				gap = " "
			}
		}
		s := l + gap + n.Op + gap + rr
		if prec < parent {
			return "(" + s + ")"
		}
		return s
	case ir.Call:
		r.noteCall(n.Fn)
		args := make([]string, len(n.Args))
		for i, a := range n.Args {
			args[i] = r.expr(a, 0)
		}
		name := n.Fn
		switch n.Fn {
		case "min", "max":
			name = r.qual(n.Fn)
		}
		return name + "(" + r.commaSep(args) + ")"
	case ir.Cast:
		return r.cast(n, parent)
	case ir.Index:
		return r.nm.Name(n.Arr) + "[" + r.expr(n.Idx, 0) + "]"
	case ir.Len:
		base := r.nm.Name(n.Arr) + ".size()"
		if parent > 0 {
			return "(" + r.intType() + ")" + base
		}
		return base
	default:
		return fmt.Sprintf("/*expr %T*/0", e)
	}
}

func (r *renderer) noteCall(fn string) {
	switch fn {
	case "sqrt", "pow", "abs":
		r.usesMath = true
	case "min", "max":
		r.usesAlgo = true
	}
}

// cast renders an int<->double conversion per the profile's CastStyle.
func (r *renderer) cast(n ir.Cast, parent int) string {
	if n.To == ir.TInt {
		return "(" + r.intType() + ")" + r.castOperand(n.X)
	}
	switch r.prof.CastStyle {
	case 1:
		return "double(" + r.expr(n.X, 0) + ")"
	case 2:
		// 1.0 * x promotes; safe for the multiplicative contexts the
		// IR uses casts in.
		s := "1.0" + r.sp() + "*" + r.sp() + r.expr(n.X, 12)
		if 12 < parent {
			return "(" + s + ")"
		}
		return s
	default:
		return "(double)" + r.castOperand(n.X)
	}
}

// castOperand renders the operand of a C-style cast, parenthesized
// unless it is a primary expression.
func (r *renderer) castOperand(e ir.Expr) string {
	switch e.(type) {
	case ir.Var, ir.IntLit, ir.FloatLit, ir.Index:
		return r.expr(e, 0)
	default:
		return "(" + r.expr(e, 0) + ")"
	}
}
