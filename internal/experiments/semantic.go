package experiments

import (
	"fmt"
	"math/rand"

	"gptattr/internal/attrib"
	"gptattr/internal/challenge"
	"gptattr/internal/codegen"
	"gptattr/internal/corpus"
	"gptattr/internal/evade"
	"gptattr/internal/stylometry"
)

// semAblateStrengths are the obfuscation strengths swept: the number
// of randomly chosen evade actions stacked onto every evaluation
// sample (0 = clean).
func semAblateStrengths() []int { return []int{0, 2, 4, 6} }

// semAblateGroups are the feature-family subsets the ablation trains.
// Order is presentation order; an empty family list means all four.
func semAblateGroups() []struct {
	Name     string
	Families []stylometry.FeatureFamily
} {
	return []struct {
		Name     string
		Families []stylometry.FeatureFamily
	}{
		{"layout-only", []stylometry.FeatureFamily{stylometry.FamilyLayout}},
		{"lexical-only", []stylometry.FeatureFamily{stylometry.FamilyLexical}},
		{"syntactic-only", []stylometry.FeatureFamily{stylometry.FamilySyntactic}},
		{"semantic-only", []stylometry.FeatureFamily{stylometry.FamilySemantic}},
		{"surface", surfaceFamilies()},
		{"combined", nil},
	}
}

// semAblateUnit is one checkpointed (group, strength) cell.
type semAblateUnit struct {
	Correct int
	Total   int
}

// semAblateEvalSet renders the out-of-sample evaluation set (every
// author's style on the next year's challenges) and stacks k seeded
// random evade actions onto each sample. A rewrite that fails to
// apply leaves the sample unperturbed — the attack spends its budget
// either way.
func (s *Suite) semAblateEvalSet(yd *YearData, k int) *corpus.Corpus {
	actions := evade.ActionSpace()
	c := &corpus.Corpus{}
	chs := challenge.ByYear(2018)
	for ai, prof := range yd.Profiles {
		author := prof.Name // profiles carry their author's label
		for ci, ch := range chs {
			src := codegen.Render(ch.Prog, prof, int64(ci))
			if k > 0 {
				rng := rand.New(rand.NewSource(s.scale.Seed*7919 + int64(ai)*1009 + int64(ci)*31 + int64(k)))
				seq := make([]int, k)
				for i := range seq {
					seq[i] = rng.Intn(len(actions))
				}
				if out, err := evade.Render(src, seq); err == nil {
					src = out
				}
			}
			c.Samples = append(c.Samples, corpus.Sample{
				Source: src, Author: author, Challenge: fmt.Sprintf("X%d", ci),
			})
		}
	}
	return c
}

// ExtensionSemanticAblation measures what each feature family is worth
// under obfuscation: one oracle per family subset, all trained on the
// same clean corpus, evaluated on out-of-sample code with k random
// evade actions stacked on (k = 0, 2, 4, 6). Surface families should
// collapse as k grows; the semantic group should degrade most slowly
// — that differential is the tentpole claim, quantified. Cells
// checkpoint independently, and results are identical at any -workers
// setting.
func (s *Suite) ExtensionSemanticAblation() (string, error) {
	yd, err := s.Year(2017)
	if err != nil {
		return "", err
	}
	strengths := semAblateStrengths()
	groups := semAblateGroups()

	// Evaluation sets are shared by every group at a given strength, so
	// the feature cache pays off across the six training runs.
	evalSets := make(map[int]*corpus.Corpus, len(strengths))
	for _, k := range strengths {
		evalSets[k] = s.semAblateEvalSet(yd, k)
	}

	var rows [][]string
	for _, g := range groups {
		var oracle *attrib.Oracle
		getOracle := func() (*attrib.Oracle, error) {
			if oracle != nil {
				return oracle, nil
			}
			cfg := s.attribConfig()
			cfg.Families = g.Families
			var err error
			oracle, err = attrib.TrainOracle(yd.Human, cfg)
			if err != nil {
				return nil, fmt.Errorf("semablate: %s oracle: %w", g.Name, err)
			}
			return oracle, nil
		}
		row := []string{g.Name}
		for _, k := range strengths {
			key := fmt.Sprintf("semablate:%s:k%d", g.Name, k)
			var u semAblateUnit
			ok, err := s.lookupUnit(key, &u)
			if err != nil {
				return "", err
			}
			if !ok {
				o, err := getOracle()
				if err != nil {
					return "", err
				}
				ev := evalSets[k]
				preds, err := o.PredictCorpus(ev, nil)
				if err != nil {
					return "", fmt.Errorf("semablate: %s k=%d: %w", g.Name, k, err)
				}
				u.Total = len(preds)
				for i, p := range preds {
					if p == ev.Samples[i].Author {
						u.Correct++
					}
				}
				if err := s.storeUnit(key, u); err != nil {
					return "", err
				}
			}
			if u.Total == 0 {
				row = append(row, "-")
			} else {
				row = append(row, pct(float64(u.Correct)/float64(u.Total)))
			}
		}
		rows = append(rows, row)
	}

	header := []string{"Features"}
	for _, k := range strengths {
		header = append(header, fmt.Sprintf("k=%d", k))
	}
	nEval := 0
	if ev := evalSets[strengths[0]]; ev != nil {
		nEval = len(ev.Samples)
	}
	return renderTable(
		"Extension: semantic ablation — attribution accuracy (%) vs. obfuscation strength",
		header, rows,
		fmt.Sprintf("oracles trained on the clean corpus; evaluated on %d out-of-sample renders with\n"+
			"k seeded random evade actions stacked per sample; surface = lexical+layout+syntactic", nEval)), nil
}
