package attrib

import "sync"

// vecScratch bundles the per-prediction buffers of a serving-path
// model call: the full vectorizer row, the column-reduced model row,
// and per-class votes/probabilities. Pooling these keeps the hot
// request path allocation-free while remaining safe under the serve
// batcher's concurrency.
type vecScratch struct {
	full  []float64
	row   []float64
	votes []int
	proba []float64
}

// getScratch fetches (or sizes anew) a scratch set from pool. Models
// are immutable once built, so the sizes are fixed per model and a
// pooled entry always fits.
func getScratch(pool *sync.Pool, nFull, nRow, nClasses int) *vecScratch {
	if s, _ := pool.Get().(*vecScratch); s != nil {
		return s
	}
	return &vecScratch{
		full:  make([]float64, nFull),
		row:   make([]float64, nRow),
		votes: make([]int, nClasses),
		proba: make([]float64, nClasses),
	}
}
