// Package ir defines the abstract intermediate representation of a
// Code-Jam-style challenge solution: typed reads, loops, conditionals,
// accumulators, containers, and one formatted "Case #i: ..." output per
// test case.
//
// The IR serves three consumers. The codegen package renders an IR
// program into C++ in any author's style (the synthetic-GCJ substrate
// replacing the paper's participant dataset). The evaluator in this
// package executes the IR directly, which (a) synthesizes random
// sample inputs that exactly match the program's read sequence and (b)
// produces ground-truth outputs that every rendered/transformed C++
// variant must reproduce under cppinterp.
package ir

import "fmt"

// Type is the IR scalar type.
type Type int

// Scalar types.
const (
	TInt Type = iota + 1
	TFloat
)

// String returns "int" or "float".
func (t Type) String() string {
	switch t {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Expr is an IR expression.
type Expr interface{ isExpr() }

// Var references a declared variable by its semantic name.
type Var struct{ Name string }

// IntLit is an integer literal.
type IntLit struct{ V int64 }

// FloatLit is a floating literal.
type FloatLit struct{ V float64 }

// Bin is a binary operation. Supported ops: + - * / % < <= > >= == !=
// && ||. Division of two TInt operands truncates (C++ semantics).
type Bin struct {
	Op   string
	L, R Expr
}

// Call invokes a pure builtin: min, max, abs, sqrt, pow.
type Call struct {
	Fn   string
	Args []Expr
}

// Cast converts between TInt and TFloat.
type Cast struct {
	To Type
	X  Expr
}

// Index reads an array or vector element.
type Index struct {
	Arr string
	Idx Expr
}

// Len is the current length of a vector.
type Len struct{ Arr string }

func (Var) isExpr()      {}
func (IntLit) isExpr()   {}
func (FloatLit) isExpr() {}
func (Bin) isExpr()      {}
func (Call) isExpr()     {}
func (Cast) isExpr()     {}
func (Index) isExpr()    {}
func (Len) isExpr()      {}

// Stmt is an IR statement.
type Stmt interface{ isStmt() }

// Decl declares a scalar with an optional initializer (zero when nil).
type Decl struct {
	Name string
	T    Type
	Init Expr
}

// DeclArray declares a fixed-size, zero-initialized array.
type DeclArray struct {
	Name string
	T    Type
	Size Expr
}

// DeclVec declares an empty vector.
type DeclVec struct {
	Name string
	T    Type
}

// ReadVar is one variable read from input; Lo/Hi (inclusive) bound the
// values the input synthesizer generates for it.
type ReadVar struct {
	Name string
	Lo   int64
	Hi   int64
}

// ReadDecl declares the listed scalars and reads them from input in
// order, as a single input line.
type ReadDecl struct {
	Vars []ReadVar
	T    Type
}

// Read is shorthand for a ReadDecl of integers sharing one range.
func Read(lo, hi int64, names ...string) ReadDecl {
	rd := ReadDecl{T: TInt}
	for _, n := range names {
		rd.Vars = append(rd.Vars, ReadVar{Name: n, Lo: lo, Hi: hi})
	}
	return rd
}

// ReadF is shorthand for a ReadDecl of floats sharing one range.
func ReadF(lo, hi int64, names ...string) ReadDecl {
	rd := Read(lo, hi, names...)
	rd.T = TFloat
	return rd
}

// Assign updates a scalar: Op is one of = += -= *= /= %=.
type Assign struct {
	Name string
	Op   string
	X    Expr
}

// AssignIndex updates an array/vector element.
type AssignIndex struct {
	Arr string
	Idx Expr
	Op  string
	X   Expr
}

// PushBack appends to a vector.
type PushBack struct {
	Vec string
	X   Expr
}

// SortVec sorts a vector ascending.
type SortVec struct{ Vec string }

// CountLoop runs Body with Var taking values From..To-1 (half-open).
type CountLoop struct {
	Var  string
	From Expr
	To   Expr
	Body []Stmt
}

// WhileLoop runs Body while Cond holds.
type WhileLoop struct {
	Cond Expr
	Body []Stmt
}

// If branches on Cond.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

func (Decl) isStmt()        {}
func (DeclArray) isStmt()   {}
func (DeclVec) isStmt()     {}
func (ReadDecl) isStmt()    {}
func (Assign) isStmt()      {}
func (AssignIndex) isStmt() {}
func (PushBack) isStmt()    {}
func (SortVec) isStmt()     {}
func (CountLoop) isStmt()   {}
func (WhileLoop) isStmt()   {}
func (If) isStmt()          {}

// Output is the per-case result line: "Case #<k>: <value>". For TFloat
// the value prints with the given fixed precision.
type Output struct {
	X         Expr
	T         Type
	Precision int
}

// Program is one challenge's per-case computation. The standard GCJ
// wrapper (read T, iterate cases, print "Case #i: ...") is implicit;
// renderers materialize it according to the author's style.
type Program struct {
	// Body contains the per-case statements in order, including reads.
	Body []Stmt
	// Out is the per-case result.
	Out Output
}

// Vars returns every variable name declared anywhere in the program,
// in first-appearance order — renderers use this to build their naming
// maps.
func (p *Program) Vars() []string {
	var order []string
	seen := make(map[string]bool)
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			order = append(order, name)
		}
	}
	var walkStmts func([]Stmt)
	walkStmts = func(stmts []Stmt) {
		for _, s := range stmts {
			switch n := s.(type) {
			case Decl:
				add(n.Name)
			case DeclArray:
				add(n.Name)
			case DeclVec:
				add(n.Name)
			case ReadDecl:
				for _, rv := range n.Vars {
					add(rv.Name)
				}
			case CountLoop:
				add(n.Var)
				walkStmts(n.Body)
			case WhileLoop:
				walkStmts(n.Body)
			case If:
				walkStmts(n.Then)
				walkStmts(n.Else)
			}
		}
	}
	walkStmts(p.Body)
	return order
}
