package ml

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// OOBResult reports out-of-bag evaluation of a random forest: each
// sample is scored only by the trees whose bootstrap did not contain
// it, giving an unbiased accuracy estimate without a held-out set.
type OOBResult struct {
	// Accuracy over samples with at least one out-of-bag vote.
	Accuracy float64
	// Covered is the number of samples that received OOB votes.
	Covered int
	// Pred holds the OOB-vote prediction per sample (-1 when a sample
	// was in every tree's bootstrap).
	Pred []int
}

// FitForestOOB trains a forest exactly like FitForest (same seeding,
// so the returned forest predicts identically) while also computing
// the out-of-bag accuracy estimate.
func FitForestOOB(d *Dataset, cfg ForestConfig) (*Forest, *OOBResult, error) {
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	nTrees := cfg.numTrees()
	mtry := cfg.MTry
	if mtry <= 0 {
		mtry = int(math.Sqrt(float64(d.NumFeatures())))
		if mtry < 1 {
			mtry = 1
		}
	}
	tcfg := TreeConfig{MaxDepth: cfg.MaxDepth, MinSamplesLeaf: cfg.MinSamplesLeaf, MTry: mtry}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nTrees {
		workers = nTrees
	}

	n := len(d.X)
	f := &Forest{trees: make([]*Tree, nTrees), numClasses: d.NumClasses}
	votes := make([][]int32, n)
	for i := range votes {
		votes[i] = make([]int32, d.NumClasses)
	}
	var votesMu sync.Mutex

	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inBag := make([]bool, n)
			for ti := range jobs {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(ti)*2654435761))
				boot := make([]int, n)
				for i := range inBag {
					inBag[i] = false
				}
				for i := range boot {
					boot[i] = rng.Intn(n)
					inBag[boot[i]] = true
				}
				tree, err := FitTree(d, boot, tcfg, rng)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("tree %d: %w", ti, err)
					}
					errMu.Unlock()
					continue
				}
				f.trees[ti] = tree
				votesMu.Lock()
				for i := 0; i < n; i++ {
					if !inBag[i] {
						votes[i][tree.Predict(d.X[i])]++
					}
				}
				votesMu.Unlock()
			}
		}()
	}
	for ti := 0; ti < nTrees; ti++ {
		jobs <- ti
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}

	res := &OOBResult{Pred: make([]int, n)}
	hits := 0
	for i := 0; i < n; i++ {
		best, bestVotes := -1, int32(0)
		for c, v := range votes[i] {
			if v > bestVotes {
				best, bestVotes = c, v
			}
		}
		res.Pred[i] = best
		if best < 0 {
			continue
		}
		res.Covered++
		if best == d.Y[i] {
			hits++
		}
	}
	if res.Covered > 0 {
		res.Accuracy = float64(hits) / float64(res.Covered)
	}
	return f, res, nil
}
