// Package arena is the closed-loop adversarial evasion subsystem:
// seeded, deterministic attack search (MCTS and beam search over the
// internal/evade transformation space), a behaviour-preservation gate
// (transform.StaticVerify / transform.Verify), adversarial retraining
// on verified evading samples (Harden), and a feature-robustness
// ranking of the stylometry space the attacks exploit. The serving
// face — bounded asynchronous /v1/evade jobs — is the Manager.
//
// Every source of randomness flows through an explicit seeded PRNG and
// every oracle call and gate check is budgeted and fault-injectable
// (PointOracle, PointVerify), so attack-success-rate tables are
// bit-reproducible at any worker count and under seeded fault storms.
package arena

import (
	"fmt"
	"time"

	"gptattr/internal/evade"
)

// Fault-injection points in the search loop (see internal/fault).
// Injected transient faults are retried with backoff by a supervisor,
// mirroring transform.Verify's interpreter supervision, so a
// Limit-bounded storm cannot change an attack verdict.
const (
	// PointOracle fires before every oracle classification.
	PointOracle = "arena.oracle"
	// PointVerify fires before every verification-gate check.
	PointVerify = "arena.verify"
)

// searchRetries and searchBackoff bound the retry supervisors around
// transient oracle/gate faults.
const (
	searchRetries = 3
	searchBackoff = time.Millisecond
)

// Strategy selects the attack search algorithm.
type Strategy string

const (
	// StrategyMCTS is seeded Monte-Carlo tree search with UCT selection
	// (the Quiring et al. attack).
	StrategyMCTS Strategy = "mcts"
	// StrategyBeam is deterministic width-bounded best-first search
	// over transformation sequences.
	StrategyBeam Strategy = "beam"
)

// valid reports whether s names a known strategy.
func (s Strategy) valid() bool { return s == StrategyMCTS || s == StrategyBeam }

// Goal is the attack objective for one query.
type Goal struct {
	// TrueAuthor is the victim label the model currently assigns.
	TrueAuthor string
	// Target, when non-empty, switches to impersonation: success means
	// the model attributes the variant to Target. Empty means
	// untargeted: success is any attribution away from TrueAuthor.
	Target string
}

// Targeted reports whether the goal is impersonation.
func (g Goal) Targeted() bool { return g.Target != "" }

// Config controls one attack search.
type Config struct {
	// Strategy selects MCTS (default) or beam search.
	Strategy Strategy
	// Budget caps oracle evaluations of candidate variants (default
	// 60). The baseline classification of the original is not counted.
	Budget int
	// MaxDepth caps transformation-sequence length (default 4).
	MaxDepth int
	// Exploration is the MCTS UCT constant (default 1.2).
	Exploration float64
	// BeamWidth is the beam-search frontier size (default 4).
	BeamWidth int
	// Seed drives the search PRNG; equal seeds give equal searches.
	Seed int64
	// VerifyInputs: candidates must preserve behaviour on these inputs
	// (full interpreter gate). Empty falls back to the static-only
	// gate: candidates whose static pre-screen is suspect are rejected.
	VerifyInputs []string
	// Actions overrides the move table (default evade.ActionSpace()).
	// The slice is indexed hot and must not change during the search.
	Actions []evade.Action
}

func (c Config) withDefaults() Config {
	if c.Strategy == "" {
		c.Strategy = StrategyMCTS
	}
	if c.Budget <= 0 {
		c.Budget = 60
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 4
	}
	if c.Exploration <= 0 {
		c.Exploration = 1.2
	}
	if c.BeamWidth <= 0 {
		c.BeamWidth = 4
	}
	if c.Actions == nil {
		c.Actions = evade.ActionSpace()
	}
	return c
}

func (c Config) validate() error {
	if !c.Strategy.valid() {
		return fmt.Errorf("arena: unknown strategy %q", c.Strategy)
	}
	if len(c.Actions) == 0 {
		return fmt.Errorf("arena: empty action space")
	}
	return nil
}

// Result is one attack outcome.
type Result struct {
	// Success reports whether the goal was met: attribution flipped
	// away from the true author (untargeted) or onto the target
	// (targeted) by a gate-verified variant.
	Success bool
	// Source is the best variant found (the original when the attack
	// failed).
	Source string
	// Predicted is the model's label for Source.
	Predicted string
	// TrueAuthorProb is the model's vote share for the true author on
	// Source.
	TrueAuthorProb float64
	// TargetProb is the model's vote share for the target on Source
	// (0 when untargeted).
	TargetProb float64
	// Trace is the winning action sequence (names).
	Trace []string
	// Evaluations counts oracle calls on candidate variants.
	Evaluations int
	// GateChecks counts candidates submitted to the verification gate;
	// GateRejects of them were refused as behaviour-breaking.
	GateChecks  int
	GateRejects int
	// Truncated is set when the context expired before the budget:
	// the result is the best found so far, not the full search's.
	Truncated bool
}
