package cppprint

import (
	"fmt"
	"math/rand"
	"testing"

	"gptattr/internal/challenge"
	"gptattr/internal/codegen"
	"gptattr/internal/cppast"
	"gptattr/internal/style"
)

// structuralKinds are node kinds whose counts printing must preserve
// exactly (layout-only reprinting cannot add or drop control flow).
var structuralKinds = []string{
	"FuncDecl", "For", "While", "DoWhile", "If", "Switch", "Return",
	"Break", "Continue", "CallExpr", "VarDecl", "CastExpr", "TernaryExpr",
}

// TestPrintPreservesStructure: parse -> print -> reparse keeps every
// structural node count, for every challenge x several profiles x all
// printer configs.
func TestPrintPreservesStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for ci, c := range challenge.All() {
		prof := style.Random(fmt.Sprintf("S%d", ci), rng)
		src := codegen.Render(c.Prog, prof, int64(ci))
		orig := cppast.CountKinds(cppast.MustParse(src))
		for cfgI, cfg := range configs {
			printed := Print(cppast.MustParse(src), cfg)
			got := cppast.CountKinds(cppast.MustParse(printed))
			for _, kind := range structuralKinds {
				if got[kind] != orig[kind] {
					t.Fatalf("%s config %d: %s count %d -> %d\n--- printed ---\n%s",
						c.Key(), cfgI, kind, orig[kind], got[kind], printed)
				}
			}
			if got["Unknown"] != 0 {
				t.Fatalf("%s config %d: printed source does not reparse cleanly:\n%s",
					c.Key(), cfgI, printed)
			}
		}
	}
}

// TestPrintNeverPanicsOnParserOutput feeds the printer arbitrary-ish
// sources through the tolerant parser: whatever the parser produces,
// printing must not panic and the output must re-parse.
func TestPrintNeverPanicsOnParserOutput(t *testing.T) {
	snippets := []string{
		"",
		";;;",
		"int x",
		"int main() { if (x) }",
		"void f(int, double) {}",
		"struct P { int x; };",
		"template <typename T> T id(T v) { return v; }",
		"int main() { for (;;) break; }",
		"int a[10]; int main() { return a[0]; }",
		"@#$%^&*",
		"int main() { switch (x) { } }",
		"using x = int; int main() {}",
	}
	for _, src := range snippets {
		tu := cppast.MustParse(src)
		printed := Print(tu, Config{})
		_ = cppast.MustParse(printed) // must not panic either
	}
}
