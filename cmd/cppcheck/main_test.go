package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const cleanSrc = `#include <iostream>
using namespace std;
int main() {
    int n;
    cin >> n;
    cout << n * 2 << endl;
    return 0;
}
`

const defectSrc = `#include <cstdio>
int main() {
    int x;
    printf("%d\n", x);
    return 0;
}
`

func write(t *testing.T, dir, name, src string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func capture(t *testing.T, args []string) (int, string) {
	t.Helper()
	tmp, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	code, runErr := run(args, tmp)
	if err := tmp.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil && code == 0 {
		t.Fatalf("error %v with zero exit", runErr)
	}
	return code, string(data)
}

func TestCleanFileExitsZero(t *testing.T) {
	path := write(t, t.TempDir(), "clean.cc", cleanSrc)
	code, out := capture(t, []string{path})
	if code != 0 {
		t.Fatalf("clean file must exit 0, got %d:\n%s", code, out)
	}
	if !strings.Contains(out, "0 finding(s)") {
		t.Fatalf("summary missing: %s", out)
	}
}

func TestDefectFileExitsOne(t *testing.T) {
	path := write(t, t.TempDir(), "bad.cc", defectSrc)
	code, out := capture(t, []string{path})
	if code != 1 {
		t.Fatalf("defective file must exit 1, got %d:\n%s", code, out)
	}
	if !strings.Contains(out, "SA001-uninit-read") || !strings.Contains(out, path+":4:") {
		t.Fatalf("finding with rule ID and position missing:\n%s", out)
	}
}

func TestCorpusMode(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "gcj2020/alice/challenge0.cc", cleanSrc)
	write(t, dir, "gcj2020/bob/challenge1.cc", defectSrc)
	code, out := capture(t, []string{"-corpus", dir})
	if code != 1 {
		t.Fatalf("corpus with one defect must exit 1, got %d", code)
	}
	if !strings.Contains(out, "2 file(s), 1 finding(s)") {
		t.Fatalf("want 2 files / 1 finding summary, got:\n%s", out)
	}
}

func TestJSONOutput(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "clean.cc", cleanSrc)
	write(t, dir, "bad.cc", defectSrc)
	code, out := capture(t, []string{"-json", "-corpus", dir})
	if code != 1 {
		t.Fatalf("want exit 1, got %d", code)
	}
	var reports []fileReport
	if err := json.Unmarshal([]byte(out), &reports); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if len(reports) != 2 {
		t.Fatalf("want 2 file reports, got %d", len(reports))
	}
	byFile := map[string]int{}
	for _, r := range reports {
		byFile[filepath.Base(r.File)] = len(r.Diagnostics)
	}
	if byFile["clean.cc"] != 0 || byFile["bad.cc"] != 1 {
		t.Fatalf("unexpected finding counts: %v", byFile)
	}
}

func TestNoInputIsUsageError(t *testing.T) {
	code, _ := capture(t, nil)
	if code != 2 {
		t.Fatalf("no input must exit 2, got %d", code)
	}
}

const metricsSrc = `#include <iostream>
using namespace std;
int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
int main() {
    int t;
    cin >> t;
    while (t > 0) {
        cout << fact(t) << endl;
        t--;
    }
    return 0;
}
`

func TestMetricsMode(t *testing.T) {
	path := write(t, t.TempDir(), "m.cc", metricsSrc)
	code, out := capture(t, []string{"-metrics", path})
	if code != 0 {
		t.Fatalf("metrics mode must exit 0, got %d:\n%s", code, out)
	}
	if !strings.Contains(out, "2 function(s)") || !strings.Contains(out, "1 recursive") {
		t.Fatalf("file summary missing:\n%s", out)
	}
	for _, want := range []string{"fact", "main", "cyclo=2", "loops=1", "recursive"} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsJSON(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "m.cc", metricsSrc)
	write(t, dir, "clean.cc", cleanSrc)
	code, out := capture(t, []string{"-metrics", "-json", "-corpus", dir})
	if code != 0 {
		t.Fatalf("want exit 0, got %d:\n%s", code, out)
	}
	var reports []metricsReport
	if err := json.Unmarshal([]byte(out), &reports); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if len(reports) != 2 {
		t.Fatalf("want 2 metrics reports, got %d", len(reports))
	}
	byFile := map[string]int{}
	for _, r := range reports {
		byFile[filepath.Base(r.File)] = len(r.Stats.Funcs)
	}
	if byFile["m.cc"] != 2 || byFile["clean.cc"] != 1 {
		t.Fatalf("unexpected function counts: %v", byFile)
	}
}

func TestDeterministicOutput(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "a.cc", defectSrc)
	write(t, dir, "b.cc", defectSrc)
	_, first := capture(t, []string{"-corpus", dir})
	for i := 0; i < 5; i++ {
		if _, out := capture(t, []string{"-corpus", dir}); out != first {
			t.Fatal("output must be deterministic across runs")
		}
	}
}
