package ml

import (
	"fmt"
	"slices"
)

// colMatrix is the flat column-major mirror of a Dataset's row-major X:
// one contiguous []float64 with column f occupying data[f*n:(f+1)*n],
// plus the per-feature metadata pre-sorted CART induction starts from.
// Building it costs one pass over X plus one sort per feature; every
// tree of a forest (and every node of every tree) then reads columns
// with unit stride and never sorts again.
//
// Features are classified once, at build time:
//
//   - "coded" features have at most maxBins distinct values (term
//     frequencies, quantized ratios — most stylometric columns). Each
//     sample stores a one-byte rank code and split search runs over
//     exact per-value counting histograms: no sorted order is ever
//     maintained for them.
//   - "wide" features (more distinct values than codes) keep the
//     classic pre-sorted row order, maintained down the tree by stable
//     partitioning.
type colMatrix struct {
	n, nf int
	data  []float64
	// sorted holds, per feature, the dataset row indices ordered by
	// ascending feature value (ties in unspecified order — split search
	// only consults value boundaries, which are tie-order invariant).
	sorted []int32
	// codeOf maps feature -> coded slot, -1 for wide features;
	// wideIdx maps feature -> wide slot, -1 for coded features;
	// wideFeat is the inverse of wideIdx.
	codeOf   []int32
	wideIdx  []int32
	wideFeat []int32
	// codes stores, slot-major, each sample's value rank under a coded
	// feature: codes[slot*n+i] indexes into vals[slot].
	codes []uint8
	// vals[slot] lists a coded feature's distinct values ascending.
	vals [][]float64
	// maxK is the largest len(vals[slot]) — sizes histogram scratch.
	maxK int
}

// newColMatrix mirrors d.X. d must already be validated.
func newColMatrix(d *Dataset) *colMatrix {
	n, nf := len(d.X), d.NumFeatures()
	m := &colMatrix{
		n: n, nf: nf,
		data:    make([]float64, n*nf),
		sorted:  make([]int32, n*nf),
		codeOf:  make([]int32, nf),
		wideIdx: make([]int32, nf),
	}
	for i, row := range d.X {
		for f, v := range row {
			m.data[f*n+i] = v
		}
	}
	for f := 0; f < nf; f++ {
		col := m.col(f)
		ord := m.sortedCol(f)
		for i := range ord {
			ord[i] = int32(i)
		}
		slices.SortFunc(ord, func(a, b int32) int {
			switch {
			case col[a] < col[b]:
				return -1
			case col[a] > col[b]:
				return 1
			default:
				return 0
			}
		})
		distinct := 1
		for i := 1; i < n; i++ {
			if col[ord[i]] != col[ord[i-1]] {
				distinct++
			}
		}
		if distinct > maxBins {
			m.codeOf[f] = -1
			m.wideIdx[f] = int32(len(m.wideFeat))
			m.wideFeat = append(m.wideFeat, int32(f))
			continue
		}
		slot := len(m.vals)
		m.codeOf[f] = int32(slot)
		m.wideIdx[f] = -1
		base := len(m.codes)
		m.codes = append(m.codes, make([]uint8, n)...)
		vals := make([]float64, 0, distinct)
		code := -1
		for i, row := range ord {
			v := col[row]
			if i == 0 || v != vals[code] {
				vals = append(vals, v)
				code++
			}
			m.codes[base+int(row)] = uint8(code)
		}
		m.vals = append(m.vals, vals)
		if distinct > m.maxK {
			m.maxK = distinct
		}
	}
	return m
}

// nWide returns the number of wide (order-maintained) features.
func (m *colMatrix) nWide() int { return len(m.wideFeat) }

// col returns the contiguous values of feature f.
func (m *colMatrix) col(f int) []float64 { return m.data[f*m.n : (f+1)*m.n] }

// sortedCol returns the row order of feature f, ascending by value.
func (m *colMatrix) sortedCol(f int) []int32 { return m.sorted[f*m.n : (f+1)*m.n] }

// codedCol returns the per-sample value ranks of coded slot cs.
func (m *colMatrix) codedCol(cs int) []uint8 { return m.codes[cs*m.n : (cs+1)*m.n] }

// maxBins bounds histogram-mode bin codes — and the exact-mode coded
// feature ranks — to one byte.
const maxBins = 256

// binSet is the histogram-mode quantization of a dataset: per-feature
// quantile bin codes (≤ maxBins bins, one uint8 per sample) plus the
// raw-value threshold associated with each bin boundary. Split search
// over codes is O(n + bins) per feature instead of O(n) boundary scans
// over sorted values — and, unlike exact mode, needs no per-node order
// maintenance at all.
type binSet struct {
	n     int
	codes []uint8 // f*n+i -> bin code of sample i under feature f
	nbins []int   // per feature: number of bins actually formed
	// edges[f][b] is the split threshold between bins b and b+1 in raw
	// value space, chosen so that (value <= edge) ⇔ (code <= b) holds
	// for every training sample: trees trained on codes predict on raw
	// values with zero train/serve skew.
	edges [][]float64
}

// newBinSet quantizes every feature into at most bins quantile bins.
// Equal values always share a bin, so boundaries never split ties.
func newBinSet(m *colMatrix, bins int) *binSet {
	bs := &binSet{
		n:     m.n,
		codes: make([]uint8, m.n*m.nf),
		nbins: make([]int, m.nf),
		edges: make([][]float64, m.nf),
	}
	target := (m.n + bins - 1) / bins // ceil: samples per bin
	for f := 0; f < m.nf; f++ {
		col := m.col(f)
		ord := m.sortedCol(f)
		codes := bs.codes[f*m.n : (f+1)*m.n]
		var edges []float64
		b, inBin := 0, 0
		for k := 0; k < m.n; {
			j := k + 1
			for j < m.n && col[ord[j]] == col[ord[k]] {
				j++
			}
			for t := k; t < j; t++ {
				codes[ord[t]] = uint8(b)
			}
			inBin += j - k
			if inBin >= target && j < m.n && b < bins-1 {
				lo, hi := col[ord[j-1]], col[ord[j]]
				thr := lo + (hi-lo)/2
				if thr >= hi { // float midpoint rounded up: fall back to the exact left max
					thr = lo
				}
				edges = append(edges, thr)
				b++
				inBin = 0
			}
			k = j
		}
		bs.nbins[f] = b + 1
		bs.edges[f] = edges
	}
	return bs
}

// code returns sample i's bin under feature f.
func (bs *binSet) code(f, i int) uint8 { return bs.codes[f*bs.n+i] }

// trainCtx is the per-training-run immutable state shared by every
// tree of a forest: the column-major mirror, and (histogram mode only)
// the bin quantization. Building it once per FitForest call is what
// lets tree workers skip all per-node sorting.
type trainCtx struct {
	d    *Dataset
	cm   *colMatrix
	bins *binSet // nil in exact mode
}

// newTrainCtx validates the histogram configuration and assembles the
// shared training state. bins == 0 selects exact (pre-sorted) mode.
func newTrainCtx(d *Dataset, bins int) (*trainCtx, error) {
	if bins != 0 && (bins < 2 || bins > maxBins) {
		return nil, fmt.Errorf("ml: Bins = %d, want 0 (exact) or 2..%d", bins, maxBins)
	}
	ctx := &trainCtx{d: d, cm: d.columns()}
	if bins > 0 {
		ctx.bins = newBinSet(ctx.cm, bins)
	}
	return ctx, nil
}
