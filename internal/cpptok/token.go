// Package cpptok implements a lexical scanner for a practical subset of
// C++ sufficient for code stylometry: identifiers, keywords, numeric and
// string literals, operators, comments, and preprocessor directives, all
// with exact source positions.
//
// The scanner is layout-aware: comments are first-class tokens and every
// token carries its line and column, so downstream packages can recover
// lexical and layout features (indentation, brace placement, comment
// density) without re-reading the source.
package cpptok

import "fmt"

// Kind classifies a token.
type Kind int

// Token kinds. KindInvalid is the zero value so that an uninitialized
// Token is recognizably invalid.
const (
	KindInvalid Kind = iota
	KindIdent
	KindKeyword
	KindIntLit
	KindFloatLit
	KindStringLit
	KindCharLit
	KindPunct
	KindLineComment
	KindBlockComment
	KindPreproc
	KindEOF
)

var kindNames = map[Kind]string{
	KindInvalid:      "invalid",
	KindIdent:        "ident",
	KindKeyword:      "keyword",
	KindIntLit:       "int",
	KindFloatLit:     "float",
	KindStringLit:    "string",
	KindCharLit:      "char",
	KindPunct:        "punct",
	KindLineComment:  "line-comment",
	KindBlockComment: "block-comment",
	KindPreproc:      "preproc",
	KindEOF:          "eof",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Token is a single lexical element with its position in the source.
type Token struct {
	Kind Kind
	// Text is the exact source text of the token, including comment
	// delimiters and string quotes.
	Text string
	// Line is the 1-based source line of the token's first byte.
	Line int
	// Col is the 1-based source column of the token's first byte.
	Col int
}

// String renders the token for diagnostics.
func (t Token) String() string {
	return fmt.Sprintf("%d:%d %s %q", t.Line, t.Col, t.Kind, t.Text)
}

// IsComment reports whether the token is a line or block comment.
func (t Token) IsComment() bool {
	return t.Kind == KindLineComment || t.Kind == KindBlockComment
}

// Is reports whether the token is a punctuation or keyword token with
// exactly the given text.
func (t Token) Is(text string) bool {
	return (t.Kind == KindPunct || t.Kind == KindKeyword) && t.Text == text
}

// cppKeywords is the set of C++ keywords recognized by the scanner. It
// covers C++17 plus the alternative operator spellings.
var cppKeywords = map[string]bool{
	"alignas": true, "alignof": true, "and": true, "and_eq": true,
	"asm": true, "auto": true, "bitand": true, "bitor": true,
	"bool": true, "break": true, "case": true, "catch": true,
	"char": true, "char16_t": true, "char32_t": true, "class": true,
	"compl": true, "const": true, "const_cast": true, "constexpr": true,
	"continue": true, "decltype": true, "default": true, "delete": true,
	"do": true, "double": true, "dynamic_cast": true, "else": true,
	"enum": true, "explicit": true, "export": true, "extern": true,
	"false": true, "float": true, "for": true, "friend": true,
	"goto": true, "if": true, "inline": true, "int": true,
	"long": true, "mutable": true, "namespace": true, "new": true,
	"noexcept": true, "not": true, "not_eq": true, "nullptr": true,
	"operator": true, "or": true, "or_eq": true, "private": true,
	"protected": true, "public": true, "register": true,
	"reinterpret_cast": true, "return": true, "short": true,
	"signed": true, "sizeof": true, "static": true,
	"static_assert": true, "static_cast": true, "struct": true,
	"switch": true, "template": true, "this": true, "thread_local": true,
	"throw": true, "true": true, "try": true, "typedef": true,
	"typeid": true, "typename": true, "union": true, "unsigned": true,
	"using": true, "virtual": true, "void": true, "volatile": true,
	"wchar_t": true, "while": true, "xor": true, "xor_eq": true,
}

// IsKeyword reports whether s is a C++ keyword.
func IsKeyword(s string) bool { return cppKeywords[s] }

// Keywords returns the recognized keyword set. The returned map is a
// copy; callers may mutate it freely.
func Keywords() map[string]bool {
	out := make(map[string]bool, len(cppKeywords))
	for k, v := range cppKeywords {
		out[k] = v
	}
	return out
}

// controlKeywords are the branching/looping keywords used by stylometric
// features ("ln(numKeyword/length)" in Caliskan-Islam et al.).
var controlKeywords = []string{"do", "if", "else", "switch", "for", "while"}

// ControlKeywords returns the control-flow keywords tracked by the
// classic stylometry feature set, in stable order.
func ControlKeywords() []string {
	out := make([]string, len(controlKeywords))
	copy(out, controlKeywords)
	return out
}
