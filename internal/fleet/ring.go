package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
)

// Ring is a consistent-hashing ring over named replicas. Each member
// owns Vnodes points on a 64-bit hash circle; a key's owner is the
// first point clockwise from the key's hash whose member is alive.
// Because point positions are a pure function of member names, adding
// or removing one member moves only the keys that member gains or
// loses — every other key keeps its owner, which is what preserves
// per-replica feature-cache affinity across membership churn.
//
// Members carry an aliveness bit separate from membership: a dead
// replica keeps its ring points (so its keys come straight back when
// it recovers) but is skipped during lookup, spilling its keys to the
// next alive member clockwise.
type Ring struct {
	mu      sync.RWMutex
	vnodes  int
	members map[string]bool // name -> alive
	points  []ringPoint     // sorted by hash
}

type ringPoint struct {
	hash uint64
	name string
}

// DefaultVnodes balances ownership evenly enough for small fleets
// (spread stays within ~20% of fair share at 3–16 replicas) while
// keeping membership changes cheap.
const DefaultVnodes = 64

// NewRing builds an empty ring with the given points per member
// (<= 0 selects DefaultVnodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]bool)}
}

// mix64 is a splitmix64-style finalizer. FNV alone scatters short
// inputs (single-letter names, small vnode indices) unevenly across
// the high bits, which skews arc ownership badly at 64 vnodes; the
// finalizer's full avalanche restores an even spread.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashKey positions a key on the circle.
func hashKey(key []byte) uint64 {
	h := fnv.New64a()
	h.Write(key)
	return mix64(h.Sum64())
}

// pointHash positions one member vnode on the circle.
func pointHash(name string, i int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s#%d", name, i)
	return mix64(h.Sum64())
}

// ValidName reports whether name can be a ring member: non-empty,
// printable, no whitespace — the constraint that keeps Snapshot's
// space-separated line format unambiguous.
func ValidName(name string) bool {
	if name == "" {
		return false
	}
	for _, c := range name {
		if c <= ' ' || c == 0x7f {
			return false
		}
	}
	return true
}

// Add inserts a member (alive). Reports false when already present or
// the name is invalid (see ValidName).
func (r *Ring) Add(name string) bool {
	if !ValidName(name) {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[name]; ok {
		return false
	}
	r.members[name] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: pointHash(name, i), name: name})
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (vanishingly rare, but the fuzzer will find them
		// eventually) break on name so the layout stays deterministic.
		return r.points[a].name < r.points[b].name
	})
	return true
}

// Remove deletes a member and its points. Reports false when absent.
func (r *Ring) Remove(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[name]; !ok {
		return false
	}
	delete(r.members, name)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.name != name {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return true
}

// SetAlive flips a member's aliveness. Reports false when absent.
func (r *Ring) SetAlive(name string, alive bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[name]; !ok {
		return false
	}
	r.members[name] = alive
	return true
}

// IsAlive reports a member's aliveness (false when absent).
func (r *Ring) IsAlive(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.members[name]
}

// Members lists every member, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for name := range r.members {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Alive lists the alive members, sorted.
func (r *Ring) Alive() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for name, alive := range r.members {
		if alive {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Owner returns the alive member owning key, or ok=false when no
// member is alive.
func (r *Ring) Owner(key []byte) (string, bool) {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return "", false
	}
	return owners[0], true
}

// Owners returns up to n distinct alive members in ring order from
// key's position: the owner first, then the members that would take
// over if earlier ones died. This is the router's failover and hedge
// order.
func (r *Ring) Owners(key []byte, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if n <= 0 || len(r.points) == 0 {
		return nil
	}
	kh := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.name] || !r.members[p.name] {
			continue
		}
		seen[p.name] = true
		out = append(out, p.name)
	}
	return out
}

// Snapshot serializes the ring's logical state (vnode count, members,
// aliveness) canonically: equal rings render identical snapshots, and
// ParseSnapshot rebuilds an identical ring, because point layout is a
// pure function of this state.
func (r *Ring) Snapshot() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var b strings.Builder
	fmt.Fprintf(&b, "ring/v1 vnodes=%d\n", r.vnodes)
	names := make([]string, 0, len(r.members))
	for name := range r.members {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		state := "dead"
		if r.members[name] {
			state = "alive"
		}
		fmt.Fprintf(&b, "member %s %s\n", name, state)
	}
	return b.String()
}

// ParseSnapshot rebuilds a ring from Snapshot output.
func ParseSnapshot(s string) (*Ring, error) {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) == 0 {
		return nil, fmt.Errorf("fleet: empty ring snapshot")
	}
	var vnodes int
	if _, err := fmt.Sscanf(lines[0], "ring/v1 vnodes=%d", &vnodes); err != nil {
		return nil, fmt.Errorf("fleet: bad snapshot header %q: %v", lines[0], err)
	}
	if vnodes <= 0 {
		return nil, fmt.Errorf("fleet: bad snapshot vnodes %d", vnodes)
	}
	r := NewRing(vnodes)
	for _, line := range lines[1:] {
		fields := strings.Split(line, " ")
		if len(fields) != 3 || fields[0] != "member" {
			return nil, fmt.Errorf("fleet: bad snapshot line %q", line)
		}
		name := fields[1]
		if !r.Add(name) {
			return nil, fmt.Errorf("fleet: invalid or duplicate snapshot member %q", name)
		}
		switch fields[2] {
		case "alive":
		case "dead":
			r.SetAlive(name, false)
		default:
			return nil, fmt.Errorf("fleet: bad snapshot state %q", fields[2])
		}
	}
	return r, nil
}
