package stylometry

import (
	"context"
	"testing"
)

// TestExtractVecAllocs pins the steady-state serving contract: a full
// extraction (every pass, DegradeNone) through a pooled Scratch plus
// direct vectorization of the resulting FeatureVec performs zero
// allocations per request once the scratch buffers and term-intern
// tables are warm. This is the end-to-end budget the batcher relies
// on — any regression here shows up as GC pressure under load.
func TestExtractVecAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector; allocation counts are meaningless")
	}
	ctx := context.Background()

	// Warm the pool and intern every term benchSrc produces, then build
	// a vectorizer over its vocabulary so VectorIntoVec has columns.
	warm := GetScratch()
	if _, err := warm.ExtractVec(ctx, benchSrc, DegradeNone); err != nil {
		t.Fatal(err)
	}
	docs := []Features{warm.Vec().Features()}
	PutScratch(warm)
	v := NewVectorizer(docs, VectorizerConfig{MinDocFreq: 1, UseTFIDF: true})
	row := make([]float64, v.NumFeatures())

	a := testing.AllocsPerRun(100, func() {
		sc := GetScratch()
		level, err := sc.ExtractVec(ctx, benchSrc, DegradeNone)
		if err != nil || level != DegradeNone {
			t.Fatalf("ExtractVec: level=%v err=%v", level, err)
		}
		v.VectorIntoVec(sc.Vec(), row)
		PutScratch(sc)
	})
	if a > 0 {
		t.Errorf("steady-state ExtractVec+VectorIntoVec allocates %.2f per request, want 0", a)
	}
}

// TestVectorIntoAllocs pins VectorInto's allocation-free contract: the
// serving path reuses one row buffer across requests and vectorization
// must not allocate per call.
func TestVectorIntoAllocs(t *testing.T) {
	docs := []Features{
		{"WordUnigram:for": 2, "WordUnigram:int": 1, "LineLenAvg": 14.5},
		{"WordUnigram:for": 1, "WordUnigram:while": 3, "LineLenAvg": 22.0},
		{"WordUnigram:int": 4, "LeafTF:x": 2, "LineLenAvg": 9.1},
	}
	v := NewVectorizer(docs, VectorizerConfig{MinDocFreq: 1, UseTFIDF: true})
	row := make([]float64, v.NumFeatures())
	if a := testing.AllocsPerRun(100, func() { v.VectorInto(docs[0], row) }); a > 0 {
		t.Errorf("VectorInto allocates %.2f per call, want 0", a)
	}
}

// TestVectorIntoSizeMismatchPanics documents the misuse guard.
func TestVectorIntoSizeMismatchPanics(t *testing.T) {
	v := NewVectorizer([]Features{{"LineLenAvg": 1}}, VectorizerConfig{})
	defer func() {
		if recover() == nil {
			t.Fatal("VectorInto with short row did not panic")
		}
	}()
	v.VectorInto(Features{}, make([]float64, v.NumFeatures()+1))
}
