package experiments

import (
	"strings"
	"testing"
)

func TestAblationFeatureFamilies(t *testing.T) {
	s := testSuite(t)
	out, err := s.AblationFeatureFamilies()
	if err != nil {
		t.Fatalf("AblationFeatureFamilies: %v", err)
	}
	for _, fam := range []string{"lexical", "layout", "syntactic", "all"} {
		if !strings.Contains(out, fam) {
			t.Errorf("missing %s row:\n%s", fam, out)
		}
	}
}

func TestAblationStickiness(t *testing.T) {
	s := testSuite(t)
	out, err := s.AblationStickiness()
	if err != nil {
		t.Fatalf("AblationStickiness: %v", err)
	}
	if !strings.Contains(out, "0.95") || !strings.Contains(out, "NCT distinct") {
		t.Errorf("malformed table:\n%s", out)
	}
}

func TestAblationForestSizeAndSelection(t *testing.T) {
	s := testSuite(t)
	out, err := s.AblationForestSize()
	if err != nil {
		t.Fatalf("AblationForestSize: %v", err)
	}
	if !strings.Contains(out, "Trees") {
		t.Errorf("malformed:\n%s", out)
	}
	out, err = s.AblationFeatureSelection()
	if err != nil {
		t.Fatalf("AblationFeatureSelection: %v", err)
	}
	if !strings.Contains(out, "TopFeatures") {
		t.Errorf("malformed:\n%s", out)
	}
}

func TestAblationRepertoire(t *testing.T) {
	if testing.Short() {
		t.Skip("repertoire ablation regenerates six transformed corpora")
	}
	s := testSuite(t)
	out, err := s.AblationRepertoire()
	if err != nil {
		t.Fatalf("AblationRepertoire: %v", err)
	}
	if !strings.Contains(out, "MaxObserved") {
		t.Errorf("malformed:\n%s", out)
	}
}

func TestAblationClassifier(t *testing.T) {
	s := testSuite(t)
	out, err := s.AblationClassifier()
	if err != nil {
		t.Fatalf("AblationClassifier: %v", err)
	}
	if !strings.Contains(out, "random forest") || !strings.Contains(out, "kNN (k=3)") {
		t.Errorf("malformed classifier ablation:\n%s", out)
	}
}

func TestAblationRegistry(t *testing.T) {
	s := testSuite(t)
	names := s.AblationNames()
	if len(names) != 6 {
		t.Fatalf("ablations = %d, want 6", len(names))
	}
	abls := s.Ablations()
	for _, n := range names {
		if abls[n] == nil {
			t.Errorf("ablation %q has nil runner", n)
		}
	}
}
