package attrib

import (
	"bytes"
	"strings"
	"testing"
)

func TestOracleSaveLoadRoundTrip(t *testing.T) {
	fx := fixture(t)
	var buf bytes.Buffer
	if err := fx.oracle.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadOracle(&buf)
	if err != nil {
		t.Fatalf("LoadOracle: %v", err)
	}
	if strings.Join(loaded.Labels(), ",") != strings.Join(fx.oracle.Labels(), ",") {
		t.Error("labels changed across round trip")
	}
	// Predictions must be identical.
	for _, s := range fx.human.Samples[:24] {
		a, err := fx.oracle.Predict(s.Source)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Predict(s.Source)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("prediction diverged after round trip: %q vs %q", a, b)
		}
	}
}

func TestClassifierSaveLoadRoundTrip(t *testing.T) {
	fx := fixture(t)
	clf, err := TrainBinary(fx.human, fx.transformed, fx.cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadClassifier(&buf)
	if err != nil {
		t.Fatalf("LoadClassifier: %v", err)
	}
	for _, s := range append(fx.human.Samples[:10], fx.transformed.Samples[:10]...) {
		_, ca, err := clf.IsChatGPT(s.Source)
		if err != nil {
			t.Fatal(err)
		}
		_, cb, err := loaded.IsChatGPT(s.Source)
		if err != nil {
			t.Fatal(err)
		}
		if ca != cb {
			t.Fatalf("confidence diverged: %v vs %v", ca, cb)
		}
	}
}

func TestLoadRejectsWrongKind(t *testing.T) {
	fx := fixture(t)
	var buf bytes.Buffer
	if err := fx.oracle.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadClassifier(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("oracle loaded as classifier")
	}
	if _, err := LoadOracle(strings.NewReader("not json")); err == nil {
		t.Error("garbage loaded as oracle")
	}
	if _, err := LoadOracle(strings.NewReader(`{"kind":"oracle"}`)); err == nil {
		t.Error("headerless oracle accepted")
	}
}
