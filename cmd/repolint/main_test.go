package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func lint(t *testing.T, root string) (int, string) {
	t.Helper()
	tmp, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	code, runErr := run([]string{"-root", root}, tmp)
	if err := tmp.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil && code != 2 {
		t.Fatalf("unexpected error %v with exit %d", runErr, code)
	}
	return code, string(data)
}

func TestTimeNowFlaggedInDeterministicPkg(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/corpus/gen.go": `package corpus

import "time"

func Stamp() int64 { return time.Now().Unix() }
`,
	})
	code, out := lint(t, root)
	if code != 1 || !strings.Contains(out, "time.Now") {
		t.Fatalf("want time.Now finding, exit %d:\n%s", code, out)
	}
}

func TestTimeNowAllowedOutsidePipeline(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/serve/clock.go": `package serve

import "time"

func Stamp() int64 { return time.Now().Unix() }
`,
	})
	if code, out := lint(t, root); code != 0 {
		t.Fatalf("serve may use time.Now, exit %d:\n%s", code, out)
	}
}

func TestUnseededRandFlagged(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/ml/pick.go": `package ml

import "math/rand"

func Pick(n int) int { return rand.Intn(n) }
`,
	})
	code, out := lint(t, root)
	if code != 1 || !strings.Contains(out, "math/rand.Intn") {
		t.Fatalf("want unseeded rand finding, exit %d:\n%s", code, out)
	}
}

func TestSeededRandAllowed(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/ml/pick.go": `package ml

import "math/rand"

func Pick(rng *rand.Rand, n int) int { return rng.Intn(n) }

func NewRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
`,
	})
	if code, out := lint(t, root); code != 0 {
		t.Fatalf("seeded rand must pass, exit %d:\n%s", code, out)
	}
}

func TestRenamedImportStillCaught(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/transform/r.go": `package transform

import mr "math/rand"

func Roll() int { return mr.Int() }
`,
	})
	code, out := lint(t, root)
	if code != 1 || !strings.Contains(out, "math/rand.Int") {
		t.Fatalf("aliased import must still be caught, exit %d:\n%s", code, out)
	}
}

func TestIgnoredCloseFlagged(t *testing.T) {
	root := writeTree(t, map[string]string{
		"cmd/tool/main.go": `package main

import "os"

func load(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}

func drop(f *os.File) {
	f.Close()
}
`,
	})
	code, out := lint(t, root)
	if code != 1 || strings.Count(out, "Close error ignored") != 2 {
		t.Fatalf("want two Close findings, exit %d:\n%s", code, out)
	}
}

func TestHandledCloseAllowed(t *testing.T) {
	root := writeTree(t, map[string]string{
		"cmd/tool/main.go": `package main

import "os"

func save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.WriteString("x"); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
`,
	})
	if code, out := lint(t, root); code != 0 {
		t.Fatalf("handled Close must pass, exit %d:\n%s", code, out)
	}
}

func TestVoidCloseTypeExempt(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/serve/batcher.go": `package serve

type Batcher struct{}

func (b *Batcher) Close() {}
`,
		"cmd/tool/main.go": `package main

type batcherLike interface{ Close() }

func shutdown(batcher batcherLike) {
	batcher.Close()
}
`,
	})
	if code, out := lint(t, root); code != 0 {
		t.Fatalf("void-Close type must be exempt, exit %d:\n%s", code, out)
	}
}

func TestTestFilesExempt(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/corpus/gen_test.go": `package corpus

import (
	"os"
	"time"
)

func stamp() int64 { return time.Now().Unix() }

func drop(f *os.File) { f.Close() }
`,
	})
	if code, out := lint(t, root); code != 0 {
		t.Fatalf("test files are exempt, exit %d:\n%s", code, out)
	}
}

func TestNakedPanicFlaggedInSupervisedPkg(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/ml/tree.go": `package ml

func grow(depth int) {
	if depth > 64 {
		panic("tree too deep")
	}
}
`,
	})
	code, out := lint(t, root)
	if code != 1 || !strings.Contains(out, "naked panic") {
		t.Fatalf("want naked-panic finding, exit %d:\n%s", code, out)
	}
}

func TestAllowPanicDirectiveExempts(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/ml/tree.go": `package ml

func grow(depth int) {
	if depth > 64 {
		// repolint:allow-panic recovered by the fold supervisor in cv.go
		panic("tree too deep")
	}
	if depth < 0 { // repolint:allow-panic impossible by construction
		panic("negative depth")
	}
}
`,
	})
	if code, out := lint(t, root); code != 0 {
		t.Fatalf("annotated panic must pass, exit %d:\n%s", code, out)
	}
}

func TestPanicAllowedOutsideSupervisedPkgs(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/corpus/gen.go": `package corpus

func mustPositive(n int) {
	if n <= 0 {
		panic("n must be positive")
	}
}
`,
	})
	if code, out := lint(t, root); code != 0 {
		t.Fatalf("corpus is not a supervised package, exit %d:\n%s", code, out)
	}
}

func TestUncheckedRenameAndWriteFileFlagged(t *testing.T) {
	root := writeTree(t, map[string]string{
		"cmd/tool/main.go": `package main

import "os"

func publish(tmp, final string, data []byte) {
	os.WriteFile(tmp, data, 0o644)
	os.Rename(tmp, final)
}
`,
	})
	code, out := lint(t, root)
	if code != 1 || !strings.Contains(out, "os.WriteFile error ignored") || !strings.Contains(out, "os.Rename error ignored") {
		t.Fatalf("want two unchecked-file-op findings, exit %d:\n%s", code, out)
	}
}

func TestCheckedRenameAndWriteFileAllowed(t *testing.T) {
	root := writeTree(t, map[string]string{
		"cmd/tool/main.go": `package main

import "os"

func publish(tmp, final string, data []byte) error {
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	_ = os.Remove(tmp) // cleanup best-effort
	return os.Rename(tmp, final)
}
`,
	})
	if code, out := lint(t, root); code != 0 {
		t.Fatalf("checked file ops must pass, exit %d:\n%s", code, out)
	}
}

func TestBareSleepFlaggedInServingPkg(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/fleet/probe.go": `package fleet

import "time"

func backoff() {
	time.Sleep(50 * time.Millisecond)
}
`,
	})
	code, out := lint(t, root)
	if code != 1 || !strings.Contains(out, "bare time.Sleep in a serving package") {
		t.Fatalf("want bare-sleep finding, exit %d:\n%s", code, out)
	}
}

func TestAllowSleepDirectiveExempts(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/serve/retry.go": `package serve

import "time"

func backoff() {
	// repolint:allow-sleep jittered retry loop, context checked by caller
	time.Sleep(50 * time.Millisecond)
	time.Sleep(time.Millisecond) // repolint:allow-sleep settle before reprobe
}
`,
	})
	if code, out := lint(t, root); code != 0 {
		t.Fatalf("annotated sleep must pass, exit %d:\n%s", code, out)
	}
}

func TestSleepAllowedOutsideServingPkgs(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/fault/inject.go": `package fault

import "time"

func stall(d time.Duration) { time.Sleep(d) }
`,
	})
	if code, out := lint(t, root); code != 0 {
		t.Fatalf("fault is not a serving package, exit %d:\n%s", code, out)
	}
}

func TestSleepAllowedInServingTests(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/fleet/probe_test.go": `package fleet

import "time"

func settle() { time.Sleep(time.Millisecond) }
`,
	})
	if code, out := lint(t, root); code != 0 {
		t.Fatalf("test files are exempt from the sleep rule, exit %d:\n%s", code, out)
	}
}

func TestRepoIsClean(t *testing.T) {
	// The repository itself must satisfy its own invariants; this is
	// the standing form of the "run it over the repo" requirement.
	root := "../.."
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skip("repo root not found")
	}
	if code, out := lint(t, root); code != 0 {
		t.Fatalf("repolint must exit clean on this repository, exit %d:\n%s", code, out)
	}
}

func TestMapRangeAppendFlagged(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/stylometry/agg.go": `package stylometry

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`,
	})
	code, out := lint(t, root)
	if code != 1 || !strings.Contains(out, "map iteration order feeds append") {
		t.Fatalf("want maprange append finding, exit %d:\n%s", code, out)
	}
}

func TestMapRangeSortedAppendAllowed(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/stylometry/agg.go": `package stylometry

import "sort"

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
`,
	})
	if code, out := lint(t, root); code != 0 {
		t.Fatalf("append-then-sort is order-safe, exit %d:\n%s", code, out)
	}
}

func TestMapRangeIntoMapAllowed(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/ml/merge.go": `package ml

func Merge(dst, src map[string]float64) {
	for k, v := range src {
		dst[k] += v
	}
}
`,
	})
	if code, out := lint(t, root); code != 0 {
		t.Fatalf("map-to-map range is commutative, exit %d:\n%s", code, out)
	}
}

func TestMapRangePrintFlagged(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/arena/report.go": `package arena

import (
	"fmt"
	"io"
)

func Dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}
`,
	})
	code, out := lint(t, root)
	if code != 1 || !strings.Contains(out, "map iteration order feeds fmt.Fprintf") {
		t.Fatalf("want maprange fmt finding, exit %d:\n%s", code, out)
	}
}

func TestMapRangeWriterFlagged(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/semstats/dump.go": `package semstats

import "strings"

func Join(m map[string]bool) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k)
	}
	return b.String()
}
`,
	})
	code, out := lint(t, root)
	if code != 1 || !strings.Contains(out, "map iteration order feeds .WriteString") {
		t.Fatalf("want maprange writer finding, exit %d:\n%s", code, out)
	}
}

func TestMapRangeDirectiveExempts(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/stylometry/agg.go": `package stylometry

func Sum(m map[string]int) []int {
	var out []int
	// repolint:allow-maprange the caller sums the slice, order invisible
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
`,
	})
	if code, out := lint(t, root); code != 0 {
		t.Fatalf("directive must exempt the range, exit %d:\n%s", code, out)
	}
}

func TestMapRangeOutsideDeterministicPkgAllowed(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/serve/dump.go": `package serve

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`,
	})
	if code, out := lint(t, root); code != 0 {
		t.Fatalf("rule only applies to deterministic pkgs, exit %d:\n%s", code, out)
	}
}

func TestFeatMapConstructionFlagged(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/stylometry/pass.go": `package stylometry

type Features map[string]float64

func lexicalPass() Features {
	f := make(Features)
	f["LineLenAvg"] = 1
	return f
}
`,
	})
	code, out := lint(t, root)
	if code != 1 || !strings.Contains(out, "feature map") {
		t.Fatalf("want feature-map finding, exit %d:\n%s", code, out)
	}
}

func TestFeatMapRawMapAndLiteralFlagged(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/stylometry/pass.go": `package stylometry

func rawPass() map[string]float64 {
	f := map[string]float64{"a": 1}
	g := make(map[string]float64)
	g["b"] = 2
	for k, v := range g {
		f[k] = v
	}
	return f
}
`,
	})
	code, out := lint(t, root)
	if code != 1 || strings.Count(out, "extraction package") != 2 {
		t.Fatalf("want 2 feature-map findings, exit %d:\n%s", code, out)
	}
}

func TestFeatMapDirectiveExempts(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/stylometry/boundary.go": `package stylometry

type Features map[string]float64

func Materialize() Features {
	out := make(Features) // repolint:allow-featmap boundary materializer
	return out
}
`,
	})
	if code, out := lint(t, root); code != 0 {
		t.Fatalf("annotated boundary converter must pass, exit %d:\n%s", code, out)
	}
}

func TestFeatMapAllowedOutsideStylometry(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/attrib/table.go": `package attrib

func Table() map[string]float64 { return make(map[string]float64) }
`,
	})
	if code, out := lint(t, root); code != 0 {
		t.Fatalf("feature maps are fine outside stylometry, exit %d:\n%s", code, out)
	}
}

func TestFeatMapAllowedInStylometryTests(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/stylometry/pass_test.go": `package stylometry

func fixture() map[string]float64 { return map[string]float64{"a": 1} }
`,
	})
	if code, out := lint(t, root); code != 0 {
		t.Fatalf("test files are exempt, exit %d:\n%s", code, out)
	}
}
