package experiments

import (
	"strings"
	"testing"

	"gptattr/internal/corpus"
)

// suite is shared across tests at a small scale; building it exercises
// the full dataset + oracle pipeline.
var shared *Suite

func testSuite(t *testing.T) *Suite {
	t.Helper()
	if shared == nil {
		shared = NewSuite(Scale{
			Authors: 12, Rounds: 4, Trees: 16, TopFeatures: 250, NumStyles: 6, Seed: 7,
		})
	}
	return shared
}

func TestTableIShapes(t *testing.T) {
	s := testSuite(t)
	out, err := s.TableI()
	if err != nil {
		t.Fatalf("TableI: %v", err)
	}
	if !strings.Contains(out, "GCJ 2017") || !strings.Contains(out, "GCJ 2019") {
		t.Errorf("missing year rows:\n%s", out)
	}
	// 12 authors x 8 challenges = 96.
	if !strings.Contains(out, "96") {
		t.Errorf("expected total 96:\n%s", out)
	}
}

func TestTableIIShapes(t *testing.T) {
	s := testSuite(t)
	out, err := s.TableII()
	if err != nil {
		t.Fatalf("TableII: %v", err)
	}
	// 4 settings x 4 rounds x 8 challenges = 128 per year.
	if !strings.Contains(out, "128 (16x8)") {
		t.Errorf("expected 128 (16x8):\n%s", out)
	}
}

func TestTableIIIShapes(t *testing.T) {
	s := testSuite(t)
	out, err := s.TableIII()
	if err != nil {
		t.Fatalf("TableIII: %v", err)
	}
	if !strings.Contains(out, "Combined") {
		t.Errorf("no combined row:\n%s", out)
	}
}

func TestTableIVShape(t *testing.T) {
	s := testSuite(t)
	data, err := s.TableIVData()
	if err != nil {
		t.Fatalf("TableIVData: %v", err)
	}
	if data.Max < 1 || data.Max > 12 {
		t.Errorf("max styles = %d, want within [1, 12] (repertoire bound)", data.Max)
	}
	for _, y := range Years() {
		for _, set := range corpus.Settings() {
			avg := data.Averages[y][set]
			if avg < 1 || avg > 12 {
				t.Errorf("%d/%s average = %v out of range", y, set, avg)
			}
		}
	}
	out, err := s.TableIV()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "measured max styles") {
		t.Errorf("missing footer:\n%s", out)
	}
}

func TestTableDiversity(t *testing.T) {
	s := testSuite(t)
	for _, y := range Years() {
		out, err := s.TableDiversity(y)
		if err != nil {
			t.Fatalf("TableDiversity(%d): %v", y, err)
		}
		if !strings.Contains(out, "Occurrences") {
			t.Errorf("year %d: malformed table:\n%s", y, out)
		}
	}
}

func TestTablesVIIIandIX(t *testing.T) {
	s := testSuite(t)
	naive, err := s.TableVIIIData()
	if err != nil {
		t.Fatalf("TableVIIIData: %v", err)
	}
	fb, err := s.TableIXData()
	if err != nil {
		t.Fatalf("TableIXData: %v", err)
	}
	if len(naive) != 3 || len(fb) != 3 {
		t.Fatalf("rows: naive %d, fb %d; want 3 each", len(naive), len(fb))
	}
	for i := range naive {
		if naive[i].Result.MeanAccuracy <= 0.3 {
			t.Errorf("year %d naive accuracy %.3f suspiciously low", naive[i].Year, naive[i].Result.MeanAccuracy)
		}
		if fb[i].Result.TargetLabel == "" {
			t.Errorf("year %d: no target label", fb[i].Year)
		}
	}
	// Aggregate paper-shape check: feature-based should not be worse
	// than naive at attributing the ChatGPT set, summed over years.
	var naiveRate, fbRate float64
	for i := range naive {
		naiveRate += naive[i].Result.ChatGPTRate
		fbRate += fb[i].Result.ChatGPTRate
	}
	if fbRate+0.5 < naiveRate {
		t.Errorf("feature-based total rate %.2f clearly below naive %.2f (paper shape violated)", fbRate, naiveRate)
	}
	outVIII, err := s.TableVIII()
	if err != nil {
		t.Fatal(err)
	}
	outIX, err := s.TableIX()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(outVIII, "naive") || !strings.Contains(outIX, "feature-based") {
		t.Error("table titles wrong")
	}
}

func TestTableX(t *testing.T) {
	s := testSuite(t)
	data, err := s.TableXData()
	if err != nil {
		t.Fatalf("TableXData: %v", err)
	}
	if len(data) != 4 {
		t.Fatalf("datasets = %d, want 4 (3 years + combined)", len(data))
	}
	for _, d := range data {
		if d.Result.MeanAccuracy < 0.6 {
			t.Errorf("dataset %d: binary accuracy %.3f < 0.6", d.Year, d.Result.MeanAccuracy)
		}
	}
	combined := data[3]
	if combined.Year != -1 {
		t.Errorf("last dataset year = %d, want -1 (combined)", combined.Year)
	}
	if len(combined.Result.Folds) != 15 {
		t.Errorf("combined folds = %d, want 15 (3 years x 5 challenges)", len(combined.Result.Folds))
	}
	out, err := s.TableX()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Combined") {
		t.Errorf("no combined column:\n%s", out)
	}
}

func TestFigure1(t *testing.T) {
	s := testSuite(t)
	out, err := s.Figure1()
	if err != nil {
		t.Fatalf("Figure1: %v", err)
	}
	for _, want := range []string{"Figure 1", "transformation", "attribution", "feature-based"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 1 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure2(t *testing.T) {
	s := testSuite(t)
	out, err := s.Figure2()
	if err != nil {
		t.Fatalf("Figure2: %v", err)
	}
	if !strings.Contains(out, "NCT") || !strings.Contains(out, "CT") || !strings.Contains(out, "->") {
		t.Errorf("figure 2 malformed:\n%s", out)
	}
}

func TestFigure345(t *testing.T) {
	s := testSuite(t)
	out, err := s.Figure345()
	if err != nil {
		t.Fatalf("Figure345: %v", err)
	}
	for _, want := range []string{"Figure 3", "Figure 4a", "Figure 4b", "Figure 5a", "Figure 5b", "int main"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q", want)
		}
	}
}

func TestSuiteDefaultsToQuickScale(t *testing.T) {
	s := NewSuite(Scale{})
	if s.Scale().Authors != QuickScale.Authors {
		t.Errorf("zero scale not defaulted: %+v", s.Scale())
	}
}

func TestYearCaching(t *testing.T) {
	s := testSuite(t)
	a, err := s.Year(2017)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Year(2017)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Year not cached")
	}
}

func TestYearUnknown(t *testing.T) {
	s := testSuite(t)
	if _, err := s.Year(2031); err == nil {
		t.Error("unknown year accepted")
	}
}
