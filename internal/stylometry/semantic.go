package stylometry

import (
	"context"

	"gptattr/internal/cppast"
)

// SemanticVersion tags the semantic feature group's layout. It is part
// of the featcache extractor fingerprint (see internal/featcache), so
// bumping it when the group's features change invalidates stale cached
// vectors instead of silently mixing schemas.
const SemanticVersion = 1

// semanticFeatures appends the semstats-derived feature group: CFG
// shape, loop nesting, def-use/live-range distributions, call-graph
// position, and alpha-normalized expression-shape grams. Every feature
// name carries the "Sem" prefix (FamilySemantic); "SemShape:" grams are
// open-vocabulary term features, everything else is a fixed scalar.
//
// The whole group is computed on normalized forms (compacted graphs,
// erased identifiers, block-count live ranges), so it is bit-identical
// under the rename and layout actions of internal/evade — pinned by
// TestSemanticInvariantUnderRenameAndLayout.
func semanticFeatures(f Features, tu *cppast.TranslationUnit) {
	_ = semanticFeaturesCtx(context.Background(), f, tu)
}

// semanticFeaturesCtx is the budgeted map-boundary form over the vec
// engine: extraction proper goes through semanticFeaturesCtxVec.
func semanticFeaturesCtx(ctx context.Context, f Features, tu *cppast.TranslationUnit) error {
	sc := GetScratch()
	defer PutScratch(sc)
	sc.vec.Reset()
	if err := semanticFeaturesCtxVec(ctx, sc, tu); err != nil {
		return err
	}
	sc.vec.mergeInto(f)
	return nil
}

// semanticFeaturesCtxVec is the budgeted pass: the semstats pipeline
// checks ctx at every function boundary, and on budget exhaustion NO
// semantic feature is written — the family is all-or-nothing so the
// degraded vector's content depends only on the level, never on how
// far the pass got (determinism under latency storms).
func semanticFeaturesCtxVec(ctx context.Context, sc *Scratch, tu *cppast.TranslationUnit) error {
	fv := &sc.vec
	fs, err := sc.sem.AnalyzeContext(ctx, tu)
	if err != nil {
		return err
	}
	fv.Set(sidSemFuncCount, float64(len(fs.Funcs)))
	fv.Set(sidSemCallEdges, float64(fs.CallEdges))
	fv.Set(sidSemRecursiveFuncs, float64(fs.RecursiveFuncs))
	if len(fs.Funcs) == 0 {
		return nil
	}
	var (
		blocks, edges, branches, cyclo, back    int
		loops, depth1, depth2, depth3           int
		chains, useTotal, vars, liveTotal       int
		chains0, chains1, chains2, chains3      int
		maxCyclo, maxLoopDepth, maxChain        int
		maxLive, maxFanOut, maxFanIn, maxBlocks int
		branchFactorSum                         float64
	)
	for _, st := range fs.Funcs {
		blocks += st.Blocks
		edges += st.Edges
		branches += st.Branches
		cyclo += st.Cyclomatic
		back += st.BackEdges
		loops += st.Loops
		depth1 += st.LoopsAtDepth[0]
		depth2 += st.LoopsAtDepth[1]
		depth3 += st.LoopsAtDepth[2]
		chains += st.Chains
		useTotal += st.ChainUses
		chains0 += st.ChainsAtLen[0]
		chains1 += st.ChainsAtLen[1]
		chains2 += st.ChainsAtLen[2]
		chains3 += st.ChainsAtLen[3]
		vars += st.Vars
		liveTotal += st.LiveWidthSum
		branchFactorSum += st.BranchFactor
		maxCyclo = maxi(maxCyclo, st.Cyclomatic)
		maxLoopDepth = maxi(maxLoopDepth, st.MaxLoopDepth)
		maxChain = maxi(maxChain, st.MaxChainLen)
		maxLive = maxi(maxLive, st.MaxLiveWidth)
		maxFanOut = maxi(maxFanOut, st.FanOut)
		maxFanIn = maxi(maxFanIn, st.FanIn)
		maxBlocks = maxi(maxBlocks, st.Blocks)
		for gram, n := range st.ExprGrams {
			fv.AddShape(gram, float64(n))
		}
	}
	nf := float64(len(fs.Funcs))
	fv.Set(sidSemBlocksTotal, float64(blocks))
	fv.Set(sidSemBlocksMax, float64(maxBlocks))
	fv.Set(sidSemEdgesTotal, float64(edges))
	fv.Set(sidSemBranchesTotal, float64(branches))
	fv.Set(sidSemBranchFactorMean, branchFactorSum/nf)
	fv.Set(sidSemCyclomaticMean, float64(cyclo)/nf)
	fv.Set(sidSemCyclomaticMax, float64(maxCyclo))
	fv.Set(sidSemBackEdgesTotal, float64(back))
	fv.Set(sidSemLoopsTotal, float64(loops))
	fv.Set(sidSemLoopDepthMax, float64(maxLoopDepth))
	fv.Set(sidSemLoopsDepth1, float64(depth1))
	fv.Set(sidSemLoopsDepth2, float64(depth2))
	fv.Set(sidSemLoopsDepth3, float64(depth3))
	fv.Set(sidSemChainsTotal, float64(chains))
	fv.Set(sidSemChainLenMax, float64(maxChain))
	if chains > 0 {
		fv.Set(sidSemChainLenMean, float64(useTotal)/float64(chains))
	}
	fv.Set(sidSemChains0, float64(chains0))
	fv.Set(sidSemChains1, float64(chains1))
	fv.Set(sidSemChains2, float64(chains2))
	fv.Set(sidSemChains3, float64(chains3))
	fv.Set(sidSemVarsTotal, float64(vars))
	fv.Set(sidSemLiveWidthMax, float64(maxLive))
	if vars > 0 {
		fv.Set(sidSemLiveWidthMean, float64(liveTotal)/float64(vars))
	}
	fv.Set(sidSemFanOutMax, float64(maxFanOut))
	fv.Set(sidSemFanInMax, float64(maxFanIn))
	return nil
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
