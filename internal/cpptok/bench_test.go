package cpptok

import (
	"strings"
	"testing"
)

// benchSrc approximates a contest-sized C++ solution (~8 KB): dense
// statements, a few comments, literals, and preprocessor lines, so the
// token-per-byte ratio matches what the stylometry pipeline scans.
var benchSrc = func() string {
	unit := `#include <vector>
// binary indexed tree over prefix sums
struct Fen {
    std::vector<long long> t;
    explicit Fen(int n) : t(n + 1, 0) {}
    void add(int i, long long v) {
        for (++i; i < (int)t.size(); i += i & -i) t[i] += v;
    }
    long long sum(int i) {
        long long s = 0;
        for (++i; i > 0; i -= i & -i) s += t[i];
        return s; /* inclusive prefix */
    }
};
int solve_case(int n, double eps) {
    Fen f(n);
    for (int i = 0; i < n; ++i) f.add(i, i * 2 + 1);
    const char *msg = "case done\n";
    return f.sum(n - 1) > 1e9 * eps ? 1 : 0;
}
`
	return strings.Repeat(unit, 12)
}()

// BenchmarkScan measures the tokenizer over a realistic source. The
// feature extractor calls Scan once per sample, so per-call slice
// regrowth shows up directly in corpus-scale extraction time.
func BenchmarkScan(b *testing.B) {
	b.SetBytes(int64(len(benchSrc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		toks, err := Scan(benchSrc)
		if err != nil {
			b.Fatal(err)
		}
		if len(toks) < 100 {
			b.Fatalf("suspiciously few tokens: %d", len(toks))
		}
	}
}
