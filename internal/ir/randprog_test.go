package ir

import (
	"math/rand"
	"strings"
	"testing"
)

func TestRandomProgramsSynthesize(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := RandomProgram(rng)
		run, err := Synthesize(p, 3, rand.New(rand.NewSource(seed+1000)))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		lines := strings.Split(strings.TrimSpace(run.Output), "\n")
		if len(lines) != 3 {
			t.Fatalf("seed %d: %d output lines, want 3", seed, len(lines))
		}
		for _, ln := range lines {
			if !strings.HasPrefix(ln, "Case #") {
				t.Fatalf("seed %d: malformed line %q", seed, ln)
			}
		}
	}
}

func TestRandomProgramsAreDeterministic(t *testing.T) {
	a := RandomProgram(rand.New(rand.NewSource(5)))
	b := RandomProgram(rand.New(rand.NewSource(5)))
	ra, err := Synthesize(a, 4, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Synthesize(b, 4, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if ra.Input != rb.Input || ra.Output != rb.Output {
		t.Error("same-seed random programs diverge")
	}
}

func TestRandomProgramsUseVariety(t *testing.T) {
	// Across many programs, loops, conditionals, reads, and float
	// outputs must all appear.
	var loops, ifs, reads, floatOut int
	for seed := int64(0); seed < 100; seed++ {
		p := RandomProgram(rand.New(rand.NewSource(seed)))
		var walk func(ss []Stmt)
		walk = func(ss []Stmt) {
			for _, s := range ss {
				switch n := s.(type) {
				case CountLoop:
					loops++
					walk(n.Body)
				case If:
					ifs++
					walk(n.Then)
					walk(n.Else)
				case ReadDecl:
					reads++
				}
			}
		}
		walk(p.Body)
		if p.Out.T == TFloat {
			floatOut++
		}
	}
	if loops == 0 || ifs == 0 || reads < 100 || floatOut == 0 {
		t.Errorf("variety too low: loops=%d ifs=%d reads=%d floatOut=%d",
			loops, ifs, reads, floatOut)
	}
}

func TestCountLoopReevaluatesBound(t *testing.T) {
	// The loop bound depends on a variable the body mutates; the IR
	// semantics must match C++ (condition re-evaluated per iteration).
	p := &Program{
		Body: []Stmt{
			Read(6, 6, "count"),
			Decl{Name: "sum", T: TInt},
			CountLoop{Var: "i", From: IntLit{0}, To: Var{"count"}, Body: []Stmt{
				Assign{Name: "sum", Op: "+=", X: IntLit{1}},
				Assign{Name: "count", Op: "-=", X: IntLit{1}},
			}},
		},
		Out: Output{X: Var{"sum"}, T: TInt},
	}
	run, err := Synthesize(p, 1, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	// count=6: iterations at i=0,1,2 (count drops 5,4,3), stop when
	// i=3 >= count=3. So sum = 3.
	if run.Output != "Case #1: 3\n" {
		t.Errorf("output = %q, want Case #1: 3 (bound must re-evaluate)", run.Output)
	}
}
