package stylometry

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"gptattr/internal/codegen"
	"gptattr/internal/gpt"
	"gptattr/internal/ir"
	"gptattr/internal/style"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_features.json from the current extractor")

// goldenSources deterministically regenerates the bit-identity corpus:
// seeded generated programs, their ChatGPT transformations, and
// handwritten edge cases (weird layout, partial code, heavy templates).
// The committed golden file was produced by the pre-rewrite map-based
// extractor, so TestGoldenFeatureBits proves the interned engine emits
// byte-identical feature values — the featcache fingerprint can stay
// unchanged across the rewrite.
func goldenSources() []string {
	rng := rand.New(rand.NewSource(1234))
	model := gpt.NewModel(gpt.Config{Seed: 99, NumStyles: 6})
	var out []string
	for i := 0; i < 8; i++ {
		prog := ir.RandomProgram(rng)
		src := codegen.Render(prog, style.Random(fmt.Sprintf("g%d", i), rng), rng.Int63())
		out = append(out, src)
		if res, err := model.Transform(src, -1, nil); err == nil {
			out = append(out, res.Source)
		}
	}
	out = append(out,
		benchSrc,
		"int main() { return 0; }",
		"int main(){int x;cin>>x;while(x-->0){cout<<x;}return 0;}",
		"#include <vector>\nusing namespace std;\nint g;\nvoid f(vector<int>& v, int n) {\n\tfor (int i = 0; i < n; ++i) v.push_back(i*i);\n}\nint main(){vector<int> v;f(v,9);g=v.size();}\n",
		"// comment only\n/* block */\n#define N 10\nint a[N];\nint main()\n{\n    int t = 0;\n    for (int i=0;i<N;i++) { a[i]=i; t+=a[i]; }\n    return t>5 ? 1 : 0;\n}\n",
		"\tint  main( )\t{\r\n\t\tdouble d = 1.5e3;\r\n\t\tlong long big = 0x7fffLL;\r\n\t\tchar c = '\\n';\r\n\t\tconst char* s = \"he\\\"llo\";\r\n\t\treturn (int)d;\r\n\t}\r\n",
		"template<class T> T mx(T a, T b){return a>b?a:b;}\nint main(){auto r = mx<int>(1,2); return r;}\n",
		"int f(int);\nint f(int n){ if(n<=1) return 1; return n*f(n-1);} \nint main(){ return f(5);} \n",
		"int main(){int a=1,b=2;a<<=1;b>>=1;a&=b;a|=3;a^=b;a%=7;return a.b ? 0 : a;}\n",
		"R\"(raw stuff\nacross lines)\" int main(){}\n",
		"/* unterminated\nint x",
		"int main(){std::string s = \"x\"; s += 'y'; return s.size();}\n",
	)
	return out
}

type goldenDoc struct {
	Names []string `json:"names"`
	// Bits are the IEEE-754 bit patterns of each feature value, hex
	// encoded, aligned with Names: equality here is bit-identity, not
	// approximate float equality.
	Bits []string `json:"bits"`
}

func docOf(f Features) goldenDoc {
	names := make([]string, 0, len(f))
	for n := range f {
		names = append(names, n)
	}
	sort.Strings(names)
	d := goldenDoc{Names: names}
	for _, n := range names {
		d.Bits = append(d.Bits, fmt.Sprintf("%016x", math.Float64bits(f[n])))
	}
	return d
}

const goldenPath = "testdata/golden_features.json"

// TestGoldenFeatureBits pins the extractor's exact output — every
// feature name and every value's bit pattern — across the full corpus
// of generated, transformed, and adversarial sources. The golden file
// predates the allocation-free engine; this test is the proof that the
// rewrite changed no observable value and the featcache fingerprint can
// remain "caliskan-islam+semstats/v2".
func TestGoldenFeatureBits(t *testing.T) {
	srcs := goldenSources()
	docs := make([]goldenDoc, 0, len(srcs))
	for i, src := range srcs {
		f, err := Extract(src)
		if err != nil {
			// Inputs the extractor rejects still pin their rejection.
			docs = append(docs, goldenDoc{Names: []string{"__error__"}, Bits: []string{err.Error()}})
			continue
		}
		if len(f) == 0 {
			t.Fatalf("source %d extracted no features", i)
		}
		docs = append(docs, docOf(f))
	}
	if *updateGolden {
		blob, err := json.MarshalIndent(docs, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s: %d docs", goldenPath, len(docs))
		return
	}
	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	var want []goldenDoc
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(docs) {
		t.Fatalf("golden has %d docs, extracted %d", len(want), len(docs))
	}
	for i, d := range docs {
		w := want[i]
		if len(d.Names) != len(w.Names) {
			t.Errorf("doc %d: %d features, golden %d", i, len(d.Names), len(w.Names))
			diffNames(t, i, w.Names, d.Names)
			continue
		}
		for j := range d.Names {
			if d.Names[j] != w.Names[j] {
				t.Fatalf("doc %d: feature %d is %q, golden %q", i, j, d.Names[j], w.Names[j])
			}
			if d.Bits[j] != w.Bits[j] {
				t.Errorf("doc %d: %s = bits %s, golden %s", i, d.Names[j], d.Bits[j], w.Bits[j])
			}
		}
	}
}

func diffNames(t *testing.T, doc int, want, got []string) {
	w := make(map[string]bool, len(want))
	for _, n := range want {
		w[n] = true
	}
	g := make(map[string]bool, len(got))
	for _, n := range got {
		g[n] = true
	}
	for _, n := range want {
		if !g[n] {
			t.Errorf("doc %d: missing feature %q", doc, n)
		}
	}
	for _, n := range got {
		if !w[n] {
			t.Errorf("doc %d: extra feature %q", doc, n)
		}
	}
}
