// Command benchdiff guards the ml training-engine benchmarks against
// performance regressions. It runs `go test -bench` on a package (or
// parses pre-captured output via -input), compares every benchmark
// present in the baseline file against its recorded targets, and exits
// non-zero when wall-clock regresses by more than the tolerance or
// allocations exceed the target.
//
//	benchdiff                          # bench ./internal/ml vs BENCH_ml.json
//	benchdiff -input bench.txt         # compare captured output instead
//	go test -bench . -benchmem ./internal/ml | benchdiff -input -
//
// The container the baselines were recorded on is noisy (±10%);
// benchdiff therefore takes the BEST of -count runs per benchmark and
// allows -tolerance (default 15%) over the target before failing.
// Allocation counts are deterministic and get no wall-clock slack.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// baseline mirrors BENCH_ml.json.
type baseline struct {
	Comment    string                   `json:"comment"`
	Benchmarks map[string]baselineEntry `json:"benchmarks"`
}

type baselineEntry struct {
	SeedNsPerOp     float64 `json:"seed_ns_per_op"`
	SeedBytesPerOp  float64 `json:"seed_bytes_per_op"`
	SeedAllocsPerOp float64 `json:"seed_allocs_per_op"`
	TargetNsPerOp   float64 `json:"target_ns_per_op"`
	TargetAllocs    float64 `json:"target_allocs_per_op"`
}

// measurement is one parsed benchmark result line.
type measurement struct {
	nsPerOp     float64
	allocsPerOp float64
	hasAllocs   bool
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "BENCH_ml.json", "baseline JSON with per-benchmark targets")
	pkg := fs.String("pkg", "./internal/ml", "package to benchmark")
	count := fs.Int("count", 5, "benchmark repetitions; the best run counts")
	benchtime := fs.String("benchtime", "1s", "go test -benchtime value")
	tolerance := fs.Float64("tolerance", 0.15, "allowed wall-clock regression over target (0.15 = 15%)")
	input := fs.String("input", "", "parse this pre-captured `go test -bench` output instead of running go test (- for stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		return err
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", *baselinePath, err)
	}
	if len(base.Benchmarks) == 0 {
		return fmt.Errorf("%s: no benchmarks in baseline", *baselinePath)
	}

	var benchOut []byte
	switch {
	case *input == "-":
		benchOut, err = io.ReadAll(os.Stdin)
		if err != nil {
			return err
		}
	case *input != "":
		benchOut, err = os.ReadFile(*input)
		if err != nil {
			return err
		}
	default:
		names := make([]string, 0, len(base.Benchmarks))
		for name := range base.Benchmarks {
			names = append(names, name+"$")
		}
		cmd := exec.Command("go", "test", "-run", "^$",
			"-bench", strings.Join(names, "|"),
			"-benchmem", "-benchtime", *benchtime,
			"-count", strconv.Itoa(*count), *pkg)
		cmd.Stderr = os.Stderr
		benchOut, err = cmd.Output()
		if err != nil {
			return fmt.Errorf("go test -bench: %w", err)
		}
	}

	best := parseBench(benchOut)
	var failures []string
	for name, b := range base.Benchmarks {
		m, ok := best[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: not found in benchmark output", name))
			continue
		}
		limit := b.TargetNsPerOp * (1 + *tolerance)
		status := "ok"
		if m.nsPerOp > limit {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op exceeds target %.0f ns/op +%.0f%% (limit %.0f)",
				name, m.nsPerOp, b.TargetNsPerOp, *tolerance*100, limit))
		}
		allocStatus := ""
		if m.hasAllocs && b.TargetAllocs > 0 {
			allocStatus = fmt.Sprintf("  allocs %.0f (target %.0f)", m.allocsPerOp, b.TargetAllocs)
			if m.allocsPerOp > b.TargetAllocs {
				status = "FAIL"
				failures = append(failures, fmt.Sprintf("%s: %.0f allocs/op exceeds target %.0f",
					name, m.allocsPerOp, b.TargetAllocs))
			}
		}
		fmt.Fprintf(stdout, "%-22s %12.0f ns/op (target %.0f, seed %.0f, %.2fx vs seed)%s  [%s]\n",
			name, m.nsPerOp, b.TargetNsPerOp, b.SeedNsPerOp, safeRatio(b.SeedNsPerOp, m.nsPerOp), allocStatus, status)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d regression(s):\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	fmt.Fprintln(stdout, "benchdiff: all benchmarks within target")
	return nil
}

func safeRatio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// parseBench extracts the best (minimum ns/op) measurement per
// benchmark name from `go test -bench` output. The -N cpu suffix is
// stripped so names match the baseline keys.
func parseBench(out []byte) map[string]measurement {
	best := make(map[string]measurement)
	sc := bufio.NewScanner(strings.NewReader(string(out)))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var m measurement
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.nsPerOp = val
				seen = true
			case "allocs/op":
				m.allocsPerOp = val
				m.hasAllocs = true
			}
		}
		if !seen {
			continue
		}
		prev, ok := best[name]
		if !ok || m.nsPerOp < prev.nsPerOp {
			best[name] = m
		}
	}
	return best
}
