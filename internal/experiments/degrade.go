package experiments

import (
	"context"
	"fmt"

	"gptattr/internal/attrib"
	"gptattr/internal/stylometry"
)

// degradeUnit is one checkpointed ladder-level evaluation cell.
type degradeUnit struct {
	// MatchedCorrect scores the rung trained at the vector's level;
	// BaseCorrect scores the full (level-0) model on the same degraded
	// vector — the legacy-fallback path a ladderless deployment takes.
	MatchedCorrect int
	BaseCorrect    int
	Total          int
	// Calib is the matched rung's out-of-bag accuracy, the number the
	// server scales serving confidence by at this level.
	Calib float64
}

// ExtensionDegradeLadder measures what brownout serving costs in
// accuracy: one oracle rung per degrade level, all trained on the same
// corpus (exactly what `attr -save-ladder` ships), evaluated on
// out-of-sample renders extracted at that level. The matched-rung
// column is what a browned-out server answers; the base-model column
// is the legacy fallback (full model scoring a vector whose missing
// families read as zero), which the ladder exists to beat; the OOB
// column is the calibration the server reports alongside each answer.
func (s *Suite) ExtensionDegradeLadder() (string, error) {
	yd, err := s.Year(2017)
	if err != nil {
		return "", err
	}
	ladder, err := attrib.TrainOracleLadder(yd.Human, s.attribConfig())
	if err != nil {
		return "", fmt.Errorf("degradeladder: %w", err)
	}

	// Clean out-of-sample evaluation set (the k=0 ablation set).
	ev := s.semAblateEvalSet(yd, 0)
	sources := make([]string, len(ev.Samples))
	for i, sm := range ev.Samples {
		sources[i] = sm.Source
	}
	ctxs := make([]context.Context, len(sources))
	for i := range ctxs {
		ctxs[i] = context.Background()
	}

	var rows [][]string
	for lvl := stylometry.DegradeNone; lvl <= stylometry.MaxDegrade; lvl++ {
		key := fmt.Sprintf("degradeladder:l%d", int(lvl))
		var u degradeUnit
		ok, err := s.lookupUnit(key, &u)
		if err != nil {
			return "", err
		}
		if !ok {
			feats, _, errs := stylometry.ExtractEachDegraded(ctxs, sources, lvl,
				stylometry.ExtractConfig{Workers: s.workers()})
			for i, ferr := range errs {
				if ferr != nil {
					return "", fmt.Errorf("degradeladder: level %v sample %d: %w", lvl, i, ferr)
				}
				want := ev.Samples[i].Author
				if ladder[lvl].PredictFeatures(feats[i]) == want {
					u.MatchedCorrect++
				}
				if ladder[stylometry.DegradeNone].PredictFeatures(feats[i]) == want {
					u.BaseCorrect++
				}
				u.Total++
			}
			u.Calib = ladder[lvl].Calibration()
			if err := s.storeUnit(key, u); err != nil {
				return "", err
			}
		}
		if u.Total == 0 {
			rows = append(rows, []string{lvl.String(), "-", "-", "-"})
			continue
		}
		rows = append(rows, []string{
			lvl.String(),
			pct(float64(u.MatchedCorrect) / float64(u.Total)),
			pct(float64(u.BaseCorrect) / float64(u.Total)),
			pct(u.Calib),
		})
	}

	return renderTable(
		"Extension: degrade ladder — attribution accuracy (%) per brownout level",
		[]string{"Level", "Matched rung", "Base model", "Rung OOB"},
		rows,
		fmt.Sprintf("ladder trained as by `attr -save-ladder`; %d out-of-sample renders extracted at each\n"+
			"level; Base model = full oracle scoring the degraded vector (legacy fallback);\n"+
			"Rung OOB = the calibration X-Degrade-Level answers are scaled by", len(sources))), nil
}
