package evade

import (
	"fmt"
	"math/rand"
	"testing"

	"gptattr/internal/attrib"
	"gptattr/internal/challenge"
	"gptattr/internal/codegen"
	"gptattr/internal/corpus"
	"gptattr/internal/cppinterp"
	"gptattr/internal/ir"
	"gptattr/internal/style"
)

// oracleScorer adapts attrib.Oracle to the Scorer interface.
type oracleScorer struct {
	oracle *attrib.Oracle
	truth  string
}

func (s *oracleScorer) Score(src string) (float64, string, error) {
	proba, pred, err := s.oracle.Proba(src)
	if err != nil {
		return 1, "", err
	}
	return proba[s.truth], pred, nil
}

func buildOracle(t *testing.T) (*attrib.Oracle, *corpus.Corpus) {
	t.Helper()
	human, _, err := corpus.GenerateYear(corpus.YearConfig{Year: 2017, NumAuthors: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := attrib.TrainOracle(human, attrib.Config{Trees: 24, TopFeatures: 300, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	return oracle, human
}

func TestAttackEvadesOracle(t *testing.T) {
	oracle, _ := buildOracle(t)
	// Victim: author A001 solving a fresh 2018 challenge.
	prof := style.Random("A001-2017", rand.New(rand.NewSource(3)))
	prof.Name = "A001"
	evaded, attempts := 0, 0
	for i, chID := range []string{"C1", "C2", "C3"} {
		ch, err := challenge.Get(2018, chID)
		if err != nil {
			t.Fatal(err)
		}
		src := codegen.Render(ch.Prog, prof, int64(i))
		run, err := ir.Synthesize(ch.Prog, 3, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			t.Fatal(err)
		}
		scorer := &oracleScorer{oracle: oracle, truth: "A001"}
		// Only attack files the oracle attributes correctly.
		if _, pred, err := scorer.oracle.Proba(src); err != nil || pred != "A001" {
			continue
		}
		attempts++
		res, err := Attack(src, "A001", scorer, Config{
			Iterations:   40,
			Seed:         int64(i),
			VerifyInputs: []string{run.Input},
		})
		if err != nil {
			t.Fatalf("%s: %v", chID, err)
		}
		if res.Evaded {
			evaded++
			// Behaviour must still be preserved.
			got, err := cppinterp.Run(res.Source, run.Input)
			if err != nil || got != run.Output {
				t.Fatalf("%s: evading variant broke behaviour: %v", chID, err)
			}
			if res.Predicted == "A001" {
				t.Fatalf("%s: Evaded set but prediction is still the victim", chID)
			}
			if len(res.Trace) == 0 {
				t.Errorf("%s: evaded without a recorded trace", chID)
			}
		}
		if res.Evaluations == 0 {
			t.Errorf("%s: no scorer evaluations recorded", chID)
		}
	}
	if attempts == 0 {
		t.Skip("oracle misattributed all victim files before the attack")
	}
	if evaded == 0 {
		t.Errorf("MCTS evaded on 0/%d correctly-attributed files (Quiring et al. report near-total success)", attempts)
	}
	t.Logf("evasion: %d/%d", evaded, attempts)
}

func TestActionSpaceSanity(t *testing.T) {
	actions := ActionSpace()
	if len(actions) < 15 {
		t.Fatalf("action space = %d moves, want >= 15", len(actions))
	}
	names := map[string]bool{}
	for _, a := range actions {
		if a.Name == "" || a.Apply == nil {
			t.Fatalf("malformed action %+v", a)
		}
		if names[a.Name] {
			t.Fatalf("duplicate action %q", a.Name)
		}
		names[a.Name] = true
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Iterations <= 0 || c.MaxDepth <= 0 || c.Exploration <= 0 {
		t.Error("defaults not applied")
	}
}

// constScorer always attributes to the same label.
type constScorer struct{ label string }

func (s constScorer) Score(string) (float64, string, error) { return 1, s.label, nil }

func TestAttackAgainstUnfoolableScorer(t *testing.T) {
	src := "#include <iostream>\nusing namespace std;\nint main(){int x;cin>>x;cout<<x<<endl;return 0;}"
	res, err := Attack(src, "victim", constScorer{"victim"}, Config{Iterations: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaded {
		t.Error("evaded a scorer that always returns the victim")
	}
	if res.Source != src {
		t.Error("best variant should remain the original when nothing evades")
	}
}

// errScorer fails on everything.
type errScorer struct{}

func (errScorer) Score(string) (float64, string, error) {
	return 0, "", fmt.Errorf("boom")
}

func TestAttackPropagatesBaseScoringError(t *testing.T) {
	if _, err := Attack("int main(){}", "a", errScorer{}, Config{}); err == nil {
		t.Error("base scoring error not propagated")
	}
}
