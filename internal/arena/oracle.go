package arena

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"gptattr/internal/attrib"
)

// Prediction is one oracle verdict.
type Prediction struct {
	// Label is the predicted author.
	Label string
	// Proba is the vote share per author label.
	Proba map[string]float64
}

// Oracle is the attack's view of the attribution model under attack.
// The search engine only ever calls Classify, so the same campaign
// runs against an in-process forest (LocalOracle) or a live
// attrserve/attrrouter deployment (RemoteOracle).
type Oracle interface {
	Classify(ctx context.Context, src string) (Prediction, error)
}

// LocalOracle attacks an in-process attribution model.
type LocalOracle struct{ o *attrib.Oracle }

// NewLocalOracle wraps a trained oracle.
func NewLocalOracle(o *attrib.Oracle) *LocalOracle { return &LocalOracle{o: o} }

// Classify implements Oracle.
func (l *LocalOracle) Classify(ctx context.Context, src string) (Prediction, error) {
	if err := ctx.Err(); err != nil {
		return Prediction{}, err
	}
	proba, pred, err := l.o.Proba(src)
	if err != nil {
		return Prediction{}, err
	}
	return Prediction{Label: pred, Proba: proba}, nil
}

// maxOracleBody bounds a remote oracle's buffered response body.
const maxOracleBody = 1 << 20

// RemoteOracle attacks a served model over HTTP: each Classify is one
// POST /v1/attribute against an attrserve replica or the fleet
// router. Transport and HTTP-level failures surface as errors; the
// search treats them as unscorable candidates.
type RemoteOracle struct {
	base   string
	client *http.Client
}

// NewRemoteOracle points the attack at baseURL (no trailing slash
// needed). A nil client gets a default with pooled connections.
func NewRemoteOracle(baseURL string, client *http.Client) *RemoteOracle {
	if client == nil {
		client = &http.Client{}
	}
	return &RemoteOracle{base: strings.TrimRight(baseURL, "/"), client: client}
}

// Classify implements Oracle. The wire types mirror internal/serve's
// /v1/attribute contract; they are declared locally because serve
// layers on top of arena, not under it.
func (r *RemoteOracle) Classify(ctx context.Context, src string) (Prediction, error) {
	body, err := json.Marshal(struct {
		Source string `json:"source"`
	}{Source: src})
	if err != nil {
		return Prediction{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+"/v1/attribute", bytes.NewReader(body))
	if err != nil {
		return Prediction{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return Prediction{}, err
	}
	defer func() { _ = resp.Body.Close() }() // body read to the limit below either way
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxOracleBody))
	if err != nil {
		return Prediction{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return Prediction{}, fmt.Errorf("arena: remote oracle answered %d: %s", resp.StatusCode, truncBody(b))
	}
	var ar struct {
		Author string             `json:"author"`
		Proba  map[string]float64 `json:"proba"`
	}
	if err := json.Unmarshal(b, &ar); err != nil {
		return Prediction{}, fmt.Errorf("arena: decoding remote oracle answer: %w", err)
	}
	return Prediction{Label: ar.Author, Proba: ar.Proba}, nil
}

func truncBody(b []byte) string {
	if len(b) > 200 {
		b = b[:200]
	}
	return string(b)
}
