package arena

import (
	"context"
	"fmt"
	"reflect"
	"testing"
)

func campaignTargets(n int) []Target {
	out := make([]Target, n)
	for i := range out {
		out[i] = Target{
			ID:         fmt.Sprintf("t%d", i),
			Source:     tinySrc + fmt.Sprintf("\n// v%d\n", i),
			TrueAuthor: "A001",
		}
	}
	return out
}

func TestAttackAllDeterministicAcrossWorkers(t *testing.T) {
	oracle := hashOracle{labels: []string{"A001", "A002", "A003"}}
	targets := campaignTargets(6)
	cfg := Config{Budget: 15, Seed: 11}
	var baseline []*Result
	for _, workers := range []int{1, 2, 4} {
		res, err := AttackAll(context.Background(), oracle, targets, cfg, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res) != len(targets) {
			t.Fatalf("workers=%d: %d results for %d targets", workers, len(res), len(targets))
		}
		if baseline == nil {
			baseline = res
			continue
		}
		if !reflect.DeepEqual(res, baseline) {
			t.Errorf("workers=%d: results differ from workers=1", workers)
		}
	}
}

func TestAttackAllExplicitSeedWins(t *testing.T) {
	oracle := hashOracle{labels: []string{"A001", "A002"}}
	targets := []Target{{Source: tinySrc, TrueAuthor: "A001", Seed: 99}}
	a, err := AttackAll(context.Background(), oracle, targets, Config{Budget: 10, Seed: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AttackAll(context.Background(), oracle, targets, Config{Budget: 10, Seed: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("explicit Target.Seed should make the campaign seed irrelevant")
	}
}

func TestAttackAllPropagatesError(t *testing.T) {
	targets := campaignTargets(4)
	_, err := AttackAll(context.Background(), errOracle{}, targets, Config{Budget: 5}, 2)
	if err == nil {
		t.Fatal("oracle failure not propagated")
	}
}

func TestAttackAllEmpty(t *testing.T) {
	res, err := AttackAll(context.Background(), constOracle{"x"}, nil, Config{}, 4)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty campaign: %v %v", res, err)
	}
}
