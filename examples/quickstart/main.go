// Quickstart: train an authorship model on a few synthetic authors,
// attribute a fresh sample, transform it with the simulated ChatGPT,
// and watch the attribution flip — the paper's core phenomenon in
// twenty lines of API.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"gptattr/attribution"
	"gptattr/internal/challenge"
	"gptattr/internal/codegen"
	"gptattr/internal/style"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Build a small labelled corpus: five authors, eight solutions
	//    each (the GCJ-2017 challenge set rendered in each author's
	//    style). In real use these would be files you collected.
	rng := rand.New(rand.NewSource(7))
	corpus := map[string][]string{}
	var profiles []style.Profile
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("author-%d", i+1)
		prof := style.Random(name, rng)
		profiles = append(profiles, prof)
		for _, ch := range challenge.ByYear(2017) {
			corpus[name] = append(corpus[name], codegen.Render(ch.Prog, prof, rng.Int63()))
		}
	}

	// 2. Train the attribution model (Caliskan-Islam stylometry +
	//    random forest).
	model, err := attribution.TrainAuthorship(corpus, attribution.Params{Trees: 60, Seed: 1})
	if err != nil {
		return err
	}
	fmt.Println("trained on authors:", model.Authors())

	// 3. Attribute a fresh, unseen solution by author-3: a new file in
	//    their style.
	ch, err := challenge.Get(2018, "C1")
	if err != nil {
		return err
	}
	fresh := codegen.Render(ch.Prog, profiles[2], 999)
	got, err := model.Predict(fresh)
	if err != nil {
		return err
	}
	fmt.Printf("fresh sample by author-3 attributed to: %s\n", got)

	// 4. Let the simulated ChatGPT transform it, then re-attribute.
	tr := attribution.NewTransformer(attribution.TransformerConfig{Seed: 11})
	transformed, err := tr.Transform(fresh)
	if err != nil {
		return err
	}
	after, err := model.Predict(transformed)
	if err != nil {
		return err
	}
	fmt.Printf("after ChatGPT transformation attributed to: %s\n", after)
	if after != got {
		fmt.Println("=> the transformation misled the attribution model (the paper's RQ1)")
	} else {
		fmt.Println("=> attribution survived this particular transformation")
	}

	// 5. Inspect a few stylometric features of the two versions.
	before, err := attribution.Features(fresh)
	if err != nil {
		return err
	}
	afterFeats, err := attribution.Features(transformed)
	if err != nil {
		return err
	}
	for _, f := range []string{"MaxASTDepth", "AvgIdentLength", "NameFracSnake", "LnCommentDensity"} {
		fmt.Printf("%-18s before=%.3f after=%.3f\n", f, before[f], afterFeats[f])
	}
	return nil
}
