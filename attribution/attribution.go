// Package attribution is the public API of this repository: code
// stylometry, authorship attribution, ChatGPT-style code
// transformation, and ChatGPT-vs-human detection for C++ sources, as
// studied in "Attributing ChatGPT-Transformed Synthetic Code"
// (ICDCS 2025).
//
// The package wraps the internal pipeline behind four entry points:
//
//   - Features extracts the stylometric feature vector of one source.
//   - TrainAuthorship fits a multi-author attribution model from
//     labelled sources and predicts authors for new code.
//   - NewTransformer simulates ChatGPT code transformation (NCT and CT
//     protocols) with verified behaviour preservation.
//   - TrainDetector fits a binary ChatGPT-vs-human classifier.
package attribution

import (
	"fmt"
	"io"
	"sort"

	"gptattr/internal/attrib"
	"gptattr/internal/corpus"
	"gptattr/internal/featcache"
	"gptattr/internal/gpt"
	"gptattr/internal/ml"
	"gptattr/internal/style"
	"gptattr/internal/stylometry"
)

// Features returns the stylometric feature map (lexical, layout, and
// syntactic features per Caliskan-Islam et al.) for a C++ source.
func Features(src string) (map[string]float64, error) {
	f, err := stylometry.Extract(src)
	if err != nil {
		return nil, err
	}
	return map[string]float64(f), nil
}

// Params tunes model training. The zero value uses sensible defaults
// (100 trees, 700 selected features).
type Params struct {
	// Trees is the random-forest size.
	Trees int
	// TopFeatures bounds information-gain feature selection.
	TopFeatures int
	// Seed makes training deterministic.
	Seed int64
	// Workers bounds parallel feature extraction, cross-validation,
	// and tree building (0 = GOMAXPROCS). Results are identical at any
	// worker count.
	Workers int
	// CacheDir enables an on-disk feature cache so repeated runs over
	// unchanged sources skip extraction.
	CacheDir string
}

func (p Params) config() (attrib.Config, error) {
	cfg := attrib.Config{Trees: p.Trees, TopFeatures: p.TopFeatures, Seed: p.Seed, Workers: p.Workers}
	if p.CacheDir != "" {
		cache, err := featcache.New(featcache.Options{Dir: p.CacheDir})
		if err != nil {
			return cfg, err
		}
		cfg.Cache = cache
	}
	return cfg, nil
}

// AuthorshipModel attributes C++ code to known authors.
type AuthorshipModel struct {
	oracle *attrib.Oracle
}

// authorshipCorpus validates samples and builds the training corpus.
func authorshipCorpus(samples map[string][]string) (*corpus.Corpus, error) {
	if len(samples) < 2 {
		return nil, fmt.Errorf("attribution: need at least 2 authors, got %d", len(samples))
	}
	authors := make([]string, 0, len(samples))
	for a := range samples {
		authors = append(authors, a)
	}
	sort.Strings(authors)
	c := &corpus.Corpus{}
	for _, a := range authors {
		srcs := samples[a]
		if len(srcs) == 0 {
			return nil, fmt.Errorf("attribution: author %q has no samples", a)
		}
		for i, src := range srcs {
			c.Samples = append(c.Samples, corpus.Sample{
				Source:    src,
				Author:    a,
				Challenge: fmt.Sprintf("C%d", i+1),
				Origin:    corpus.OriginHuman,
			})
		}
	}
	return c, nil
}

// TrainAuthorship fits an attribution model from labelled sources:
// samples maps each author name to that author's source files. Every
// author needs at least one sample; two or more authors are required.
func TrainAuthorship(samples map[string][]string, p Params) (*AuthorshipModel, error) {
	c, err := authorshipCorpus(samples)
	if err != nil {
		return nil, err
	}
	cfg, err := p.config()
	if err != nil {
		return nil, err
	}
	oracle, err := attrib.TrainOracle(c, cfg)
	if err != nil {
		return nil, err
	}
	return &AuthorshipModel{oracle: oracle}, nil
}

// AuthorshipLadder is the graceful-degradation counterpart of
// AuthorshipModel: one model per degrade level, all trained on the
// same corpus in one extraction pass. Level 0 sees every feature
// family; deeper levels are trained on the nested subsets the serving
// layer falls back to when extraction runs out of budget (1 = without
// semantic features, 2 = layout+lexical only). Each rung carries an
// out-of-bag accuracy estimate the server reports as calibration.
type AuthorshipLadder struct {
	ladder *attrib.OracleLadder
}

// TrainAuthorshipLadder fits the full fallback ladder (see
// AuthorshipLadder) from labelled sources.
func TrainAuthorshipLadder(samples map[string][]string, p Params) (*AuthorshipLadder, error) {
	c, err := authorshipCorpus(samples)
	if err != nil {
		return nil, err
	}
	cfg, err := p.config()
	if err != nil {
		return nil, err
	}
	ladder, err := attrib.TrainOracleLadder(c, cfg)
	if err != nil {
		return nil, err
	}
	return &AuthorshipLadder{ladder: ladder}, nil
}

// Levels reports how many rungs the ladder holds (level 0 = full).
func (l *AuthorshipLadder) Levels() int { return len(l.ladder) }

// Model returns one rung as a standalone AuthorshipModel.
func (l *AuthorshipLadder) Model(level int) (*AuthorshipModel, error) {
	if level < 0 || level >= len(l.ladder) {
		return nil, fmt.Errorf("attribution: ladder level %d out of range [0,%d]", level, len(l.ladder)-1)
	}
	return &AuthorshipModel{oracle: l.ladder[level]}, nil
}

// SaveLevel serializes one rung to w (same format as
// AuthorshipModel.Save; the level and calibration ride in the header).
func (l *AuthorshipLadder) SaveLevel(level int, w io.Writer) error {
	m, err := l.Model(level)
	if err != nil {
		return err
	}
	return m.Save(w)
}

// Authors lists the model's known author labels.
func (m *AuthorshipModel) Authors() []string { return m.oracle.Labels() }

// Save serializes the trained model to w (JSON).
func (m *AuthorshipModel) Save(w io.Writer) error { return m.oracle.Save(w) }

// LoadAuthorshipModel restores a model saved with Save.
func LoadAuthorshipModel(r io.Reader) (*AuthorshipModel, error) {
	o, err := attrib.LoadOracle(r)
	if err != nil {
		return nil, err
	}
	return &AuthorshipModel{oracle: o}, nil
}

// Predict attributes one source to the most likely known author.
func (m *AuthorshipModel) Predict(src string) (string, error) {
	return m.oracle.Predict(src)
}

// DetectStyle infers the style axes of one C++ source (naming
// convention, indentation, brace placement, I/O idiom, loop idiom,
// decomposition) as a readable map.
func DetectStyle(src string) map[string]string {
	p := style.Detect(src)
	out := map[string]string{
		"naming": p.Naming.String(),
		"io":     map[style.IO]string{style.IOStreams: "streams", style.IOStdio: "stdio", style.IOMixed: "mixed"}[p.IO],
		"braces": map[style.Brace]string{style.BraceKR: "k&r", style.BraceAllman: "allman"}[p.Brace],
		"loops":  map[style.Loop]string{style.LoopFor: "for", style.LoopWhile: "while"}[p.Loop],
	}
	switch {
	case p.Indent.UseTabs:
		out["indent"] = "tabs"
	default:
		out["indent"] = fmt.Sprintf("%d spaces", p.Indent.Width)
	}
	switch p.Decomp {
	case style.DecompInline:
		out["decomposition"] = "inline main"
	case style.DecompSolvePrint:
		out["decomposition"] = "helper prints"
	default:
		out["decomposition"] = "helper returns value"
	}
	if p.UsingNamespaceStd {
		out["namespace"] = "using namespace std"
	} else {
		out["namespace"] = "std:: qualified"
	}
	return out
}

// Transformer rewrites C++ code in the simulated ChatGPT's styles.
type Transformer struct {
	model *gpt.Model
}

// TransformerConfig tunes the simulated model; the zero value uses the
// paper-calibrated defaults (12 styles, Zipf-skewed usage).
type TransformerConfig struct {
	// Styles bounds the style repertoire (default 12).
	Styles int
	// Seed makes transformation sequences deterministic.
	Seed int64
}

// NewTransformer builds a simulated ChatGPT transformer.
func NewTransformer(cfg TransformerConfig) *Transformer {
	return &Transformer{model: gpt.NewModel(gpt.Config{NumStyles: cfg.Styles, Seed: cfg.Seed})}
}

// Transform rewrites src once in a sampled style. When inputs are
// given, the rewrite is verified to produce identical stdout on each
// input (and the call fails rather than return a behaviour-changing
// rewrite).
func (t *Transformer) Transform(src string, inputs ...string) (string, error) {
	r, err := t.model.Transform(src, -1, inputs)
	if err != nil {
		return "", err
	}
	return r.Source, nil
}

// NCT applies the paper's non-chaining protocol: rounds independent
// transformations of the same original.
func (t *Transformer) NCT(src string, rounds int, inputs ...string) ([]string, error) {
	rs, err := t.model.NCT(src, rounds, inputs)
	if err != nil {
		return nil, err
	}
	return sources(rs), nil
}

// NCTParallel is NCT with the independent rounds spread over a bounded
// worker pool (workers <= 0 means GOMAXPROCS). Each round is seeded
// from the transformer seed and the round index, so for a given seed
// the variants are identical at any worker count — though they differ
// from the sequential NCT stream, which threads one RNG through all
// rounds.
func (t *Transformer) NCTParallel(src string, rounds, workers int, inputs ...string) ([]string, error) {
	rs, err := t.model.NCTParallel(src, rounds, inputs, workers)
	if err != nil {
		return nil, err
	}
	return sources(rs), nil
}

// CT applies the chaining protocol: each round transforms the previous
// round's output.
func (t *Transformer) CT(src string, rounds int, inputs ...string) ([]string, error) {
	rs, err := t.model.CT(src, rounds, inputs)
	if err != nil {
		return nil, err
	}
	return sources(rs), nil
}

func sources(rs []gpt.Result) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Source
	}
	return out
}

// Detector is a binary ChatGPT-vs-human classifier.
type Detector struct {
	clf *attrib.Classifier
}

// TrainDetector fits a detector from human-written and
// ChatGPT-produced sources.
func TrainDetector(human, chatgpt []string, p Params) (*Detector, error) {
	if len(human) == 0 || len(chatgpt) == 0 {
		return nil, fmt.Errorf("attribution: both classes need samples (human %d, chatgpt %d)",
			len(human), len(chatgpt))
	}
	h := &corpus.Corpus{}
	for i, src := range human {
		h.Samples = append(h.Samples, corpus.Sample{
			Source: src, Author: "human",
			Challenge: fmt.Sprintf("C%d", i%8+1),
			Origin:    corpus.OriginHuman,
		})
	}
	g := &corpus.Corpus{}
	for i, src := range chatgpt {
		g.Samples = append(g.Samples, corpus.Sample{
			Source: src, Author: "ChatGPT",
			Challenge: fmt.Sprintf("C%d", i%8+1),
			Origin:    corpus.OriginGPTTransformed,
		})
	}
	cfg, err := p.config()
	if err != nil {
		return nil, err
	}
	clf, err := attrib.TrainBinary(h, g, cfg)
	if err != nil {
		return nil, err
	}
	return &Detector{clf: clf}, nil
}

// IsChatGPT reports whether the source looks ChatGPT-made, with the
// forest's vote share as confidence in [0,1].
func (d *Detector) IsChatGPT(src string) (bool, float64, error) {
	return d.clf.IsChatGPT(src)
}

// Save serializes the trained detector to w (JSON).
func (d *Detector) Save(w io.Writer) error { return d.clf.Save(w) }

// LoadDetector restores a detector saved with Save.
func LoadDetector(r io.Reader) (*Detector, error) {
	clf, err := attrib.LoadClassifier(r)
	if err != nil {
		return nil, err
	}
	return &Detector{clf: clf}, nil
}

// CrossValidateAuthorship estimates attribution accuracy by stratified
// k-fold cross-validation over the labelled samples, returning the
// mean accuracy.
func CrossValidateAuthorship(samples map[string][]string, k int, p Params) (float64, error) {
	if k < 2 {
		return 0, fmt.Errorf("attribution: k = %d, want >= 2", k)
	}
	authors := make([]string, 0, len(samples))
	for a := range samples {
		authors = append(authors, a)
	}
	sort.Strings(authors)
	var sources []string
	var labels []int
	for i, a := range authors {
		for _, s := range samples[a] {
			sources = append(sources, s)
			labels = append(labels, i)
		}
	}
	cfg, err := p.config()
	if err != nil {
		return 0, err
	}
	d, _, err := stylometry.BuildDatasetWith(sources, labels, len(authors),
		stylometry.VectorizerConfig{MinDocFreq: 2},
		stylometry.ExtractConfig{Workers: p.Workers, Cache: cfg.Cache})
	if err != nil {
		return 0, err
	}
	topK := p.TopFeatures
	if topK <= 0 {
		topK = 700
	}
	reduced, _ := ml.ReduceByInformationGain(d, topK, 10)
	folds, err := ml.StratifiedKFold(reduced.Y, k, nil)
	if err != nil {
		return 0, err
	}
	results, err := ml.CrossValidateForest(reduced, folds, ml.ForestConfig{
		NumTrees: cfg.Trees, Seed: p.Seed, Workers: p.Workers,
	})
	if err != nil {
		return 0, err
	}
	return ml.AggregateFolds(results)
}
