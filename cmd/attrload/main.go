// Command attrload is a closed-loop load generator for attrserve: N
// concurrent clients each fire the next request as soon as the
// previous one answers, against POST /v1/attribute and/or /v1/detect,
// using real C++ sources from a corpus directory as request bodies.
// It reports throughput, a status-code breakdown, and client-observed
// p50/p95/p99 latency through the same histogram implementation the
// server exports at /metrics, so the two views are directly
// comparable.
//
//	attrload -url http://127.0.0.1:8080 -corpus datasets/gcj2017 \
//	    -clients 64 -duration 10s
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gptattr/internal/fleet"
	"gptattr/internal/serve"
	"gptattr/internal/serve/metrics"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "attrload:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs_ := flag.NewFlagSet("attrload", flag.ContinueOnError)
	url := fs_.String("url", "", "base URL of a running attrserve (e.g. http://127.0.0.1:8080)")
	corpusDir := fs_.String("corpus", "", "directory of .cc/.cpp files used as request bodies")
	endpoint := fs_.String("endpoint", "attribute", "attribute, detect, or mixed")
	clients := fs_.Int("clients", 64, "concurrent closed-loop clients")
	duration := fs_.Duration("duration", 10*time.Second, "how long to drive load")
	requests := fs_.Int("requests", 0, "stop after this many requests (0 = duration only)")
	timeout := fs_.Duration("timeout", 10*time.Second, "per-request client timeout")
	budget := fs_.Duration("budget", 0, "per-request time budget sent as X-Request-Budget-Ms; the server clamps its deadline to it (0 = none)")
	serverMetrics := fs_.Bool("server-metrics", true, "fetch and print the server's /metrics after the run")
	fleetMode := fs_.Bool("fleet", false, "target is an attrrouter: also fetch /fleet/status and report the fleet-wide view")
	if err := fs_.Parse(args); err != nil {
		return err
	}
	if *url == "" || *corpusDir == "" {
		return fmt.Errorf("-url and -corpus are required")
	}
	switch *endpoint {
	case "attribute", "detect", "mixed":
	default:
		return fmt.Errorf("-endpoint %q, want attribute, detect, or mixed", *endpoint)
	}
	sources, err := loadSources(*corpusDir)
	if err != nil {
		return err
	}

	cfg := loadConfig{
		BaseURL:  strings.TrimRight(*url, "/"),
		Endpoint: *endpoint,
		Sources:  sources,
		Clients:  *clients,
		Duration: *duration,
		Requests: *requests,
		Timeout:  *timeout,
		Budget:   *budget,
	}
	fmt.Fprintf(stdout, "attrload: %d clients, %s, endpoint=%s, %d sources\n",
		cfg.Clients, cfg.Duration, cfg.Endpoint, len(sources))
	rep := loadTest(cfg)
	fmt.Fprint(stdout, rep.String())

	if *fleetMode {
		if err := fleetReport(stdout, cfg.BaseURL, rep); err != nil {
			fmt.Fprintf(stdout, "\nfleet status unavailable: %v\n", err)
		}
	}
	if *serverMetrics {
		resp, err := http.Get(cfg.BaseURL + "/metrics")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			_ = resp.Body.Close()
			fmt.Fprintf(stdout, "\nserver /metrics after run:\n%s", body)
		} else {
			fmt.Fprintf(stdout, "\nserver /metrics unavailable: %v\n", err)
		}
	}
	if rep.OK == 0 {
		return fmt.Errorf("no request succeeded (of %d)", rep.Total)
	}
	return nil
}

// loadConfig parameterizes one closed-loop run.
type loadConfig struct {
	BaseURL  string
	Endpoint string // attribute, detect, or mixed
	Sources  []string
	Clients  int
	Duration time.Duration
	Requests int // 0 = unbounded (duration decides)
	Timeout  time.Duration
	Budget   time.Duration // 0 = no X-Request-Budget-Ms header
}

// report aggregates what the clients observed.
type report struct {
	Total    uint64
	OK       uint64
	ByStatus map[int]uint64
	// ByDegrade counts 200s per X-Degrade-Level (0 = full fidelity) —
	// the client-side view of how browned out the server is.
	ByDegrade map[int]uint64
	NetErrs   uint64
	Elapsed   time.Duration
	Latency   metrics.Snapshot
}

func (r *report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests:   %d total, %d ok, %d network errors in %v\n",
		r.Total, r.OK, r.NetErrs, r.Elapsed.Round(time.Millisecond))
	codes := make([]int, 0, len(r.ByStatus))
	for c := range r.ByStatus {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(&b, "status %d: %d\n", c, r.ByStatus[c])
	}
	if len(r.ByDegrade) > 0 {
		levels := make([]int, 0, len(r.ByDegrade))
		for l := range r.ByDegrade {
			levels = append(levels, l)
		}
		sort.Ints(levels)
		for _, l := range levels {
			fmt.Fprintf(&b, "degrade %d: %d\n", l, r.ByDegrade[l])
		}
	}
	if r.Elapsed > 0 {
		fmt.Fprintf(&b, "throughput: %.1f req/s (%.1f ok/s)\n",
			float64(r.Total)/r.Elapsed.Seconds(), float64(r.OK)/r.Elapsed.Seconds())
	}
	s := r.Latency
	fmt.Fprintf(&b, "latency:    p50 %v  p95 %v  p99 %v  (min %v  mean %v  max %v)\n",
		s.P50.Round(time.Microsecond), s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond),
		s.Min.Round(time.Microsecond), s.Mean.Round(time.Microsecond), s.Max.Round(time.Microsecond))
	return b.String()
}

// loadTest runs the closed loop and aggregates client observations.
func loadTest(cfg loadConfig) *report {
	if cfg.Clients < 1 {
		cfg.Clients = 1
	}
	var (
		hist    metrics.Histogram
		total   metrics.Counter
		ok      metrics.Counter
		netErrs metrics.Counter
		mu        sync.Mutex
		byCode    = map[int]uint64{}
		byDegrade = map[int]uint64{}
	)
	client := &http.Client{Timeout: cfg.Timeout}
	// Reuse encoded bodies: the closed loop should measure the server,
	// not client-side JSON encoding.
	bodies := make([][]byte, len(cfg.Sources))
	for i, src := range cfg.Sources {
		bodies[i], _ = json.Marshal(serve.AttributeRequest{Source: src})
	}
	// A global sequence both caps total requests and spreads sources.
	var seq atomic.Uint64

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				n := seq.Add(1) - 1
				if cfg.Requests > 0 && n >= uint64(cfg.Requests) {
					return
				}
				path := "/v1/" + cfg.Endpoint
				if cfg.Endpoint == "mixed" {
					if n%2 == 0 {
						path = "/v1/attribute"
					} else {
						path = "/v1/detect"
					}
				}
				body := bodies[int(n)%len(bodies)]
				req, rerr := http.NewRequest(http.MethodPost, cfg.BaseURL+path, bytes.NewReader(body))
				if rerr != nil {
					total.Inc()
					netErrs.Inc()
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				if cfg.Budget > 0 {
					req.Header.Set(serve.BudgetHeader,
						strconv.FormatInt(int64(cfg.Budget/time.Millisecond), 10))
				}
				start := time.Now()
				resp, err := client.Do(req)
				lat := time.Since(start)
				total.Inc()
				if err != nil {
					netErrs.Inc()
					continue
				}
				io.Copy(io.Discard, resp.Body)
				degrade := -1
				if resp.StatusCode == http.StatusOK {
					if lvl, perr := strconv.Atoi(resp.Header.Get(serve.DegradeHeader)); perr == nil {
						degrade = lvl
					}
				}
				_ = resp.Body.Close()
				hist.Observe(lat)
				mu.Lock()
				byCode[resp.StatusCode]++
				if degrade >= 0 {
					byDegrade[degrade]++
				}
				mu.Unlock()
				if resp.StatusCode == http.StatusOK {
					ok.Inc()
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return &report{
		Total:     total.Value(),
		OK:        ok.Value(),
		ByStatus:  byCode,
		ByDegrade: byDegrade,
		NetErrs:   netErrs.Value(),
		Elapsed:   elapsed,
		Latency:   hist.Snap(),
	}
}

// fleetReport fetches the router's /fleet/status and prints the
// fleet-wide view: the client-observed latency quantiles (which span
// every replica, since each request crossed the router) plus the
// per-replica roster and the router's hedge/failover counters.
func fleetReport(stdout io.Writer, baseURL string, rep *report) error {
	resp, err := http.Get(baseURL + "/fleet/status")
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }() // response fully read or abandoned either way
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/fleet/status answered %d", resp.StatusCode)
	}
	var st fleet.FleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	s := rep.Latency
	fmt.Fprintf(stdout, "\nfleet:      generation %d, %d/%d replicas alive\n",
		st.Generation, st.AliveReplicas, len(st.Replicas))
	fmt.Fprintf(stdout, "fleet-wide: p50 %v  p95 %v  p99 %v (client-observed, all replicas)\n",
		s.P50.Round(time.Microsecond), s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond))
	fmt.Fprintf(stdout, "router:     %d forwards, %d failovers, %d hedges (%d won), %d restores, %d gen mismatches, %d breaker opens (%d rejects)\n",
		st.Forwards, st.Failovers, st.Hedges, st.HedgeWins, st.Restores, st.GenMismatches,
		st.BreakerOpens, st.BreakerRejects)
	for _, r := range st.Replicas {
		state := "alive"
		if !r.Alive {
			state = "dead"
		}
		fmt.Fprintf(stdout, "replica %-8s %-5s gen %-3d inflight %-3d fails %d breaker %-9s %s\n",
			r.Name, state, r.Generation, r.Inflight, r.ConsecutiveFailures, r.Breaker, r.URL)
	}
	if st.GenMismatches > 0 {
		return fmt.Errorf("%d responses crossed a generation flip", st.GenMismatches)
	}
	return nil
}

// loadSources reads every .cc/.cpp file under dir, recursively.
func loadSources(dir string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !(strings.HasSuffix(path, ".cc") || strings.HasSuffix(path, ".cpp")) {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out = append(out, string(data))
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no .cc/.cpp files under %s", dir)
	}
	return out, nil
}
