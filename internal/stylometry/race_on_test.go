//go:build race

package stylometry

// raceEnabled reports whether the race detector instruments this
// build; sync.Pool deliberately drops Puts under it, which voids
// steady-state allocation counting.
const raceEnabled = true
