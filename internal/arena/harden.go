package arena

import (
	"fmt"
	"sort"

	"gptattr/internal/attrib"
	"gptattr/internal/corpus"
	"gptattr/internal/stylometry"
)

// EvadingSample is one verified evasion to fold back into training:
// the gate-verified variant paired with the author it was written by.
type EvadingSample struct {
	Source     string
	TrueAuthor string
}

// HardenChallenge labels adversarial training samples in the
// augmented corpus, so they are distinguishable (and group together
// under challenge-wise cross-validation).
const HardenChallenge = "ADV"

// Harden is the defense half of the closed loop: adversarial
// retraining. Verified evading variants are appended to the human
// training corpus under their TRUE author labels — teaching the
// forest that the rewritten style is still that author — and a fresh
// oracle is fit through the pre-sorted training engine. It returns the
// hardened oracle and the augmented corpus (the input corpus is not
// modified).
func Harden(human *corpus.Corpus, evasions []EvadingSample, cfg attrib.Config) (*attrib.Oracle, *corpus.Corpus, error) {
	if len(evasions) == 0 {
		return nil, nil, fmt.Errorf("arena: no evading samples to harden on")
	}
	adv := &corpus.Corpus{Samples: make([]corpus.Sample, len(evasions))}
	for i, ev := range evasions {
		if ev.TrueAuthor == "" {
			return nil, nil, fmt.Errorf("arena: evading sample %d has no author", i)
		}
		adv.Samples[i] = corpus.Sample{
			Source:    ev.Source,
			Author:    ev.TrueAuthor,
			Challenge: HardenChallenge,
		}
	}
	augmented := corpus.Merge(human, adv)
	oracle, err := attrib.TrainOracle(augmented, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("arena: hardening retrain: %w", err)
	}
	return oracle, augmented, nil
}

// SourcePair is one original/evaded pair for the robustness ranking.
type SourcePair struct {
	Original string
	Evaded   string
}

// FeatureShift scores how much the attacks moved one stylometry
// feature.
type FeatureShift struct {
	// Name is the feature column.
	Name string
	// MeanAbsDelta is the mean |evaded − original| of the feature's
	// value across all pairs.
	MeanAbsDelta float64
	// Moved counts pairs in which the feature changed at all.
	Moved int
}

// pairShifts is the shared core of the robustness rankings: it learns
// a vectorizer over all involved sources (MinDocFreq 1, so attack-only
// features are visible), vectorizes each original/evaded pair, and
// accumulates per-column absolute shifts and moved-pair counts.
func pairShifts(pairs []SourcePair) (names []string, sumAbs []float64, moved []int, err error) {
	if len(pairs) == 0 {
		return nil, nil, nil, fmt.Errorf("arena: no pairs to rank")
	}
	docs := make([]stylometry.Features, 0, 2*len(pairs))
	for i, p := range pairs {
		of, err := stylometry.Extract(p.Original)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("arena: extracting original %d: %w", i, err)
		}
		ef, err := stylometry.Extract(p.Evaded)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("arena: extracting evaded %d: %w", i, err)
		}
		docs = append(docs, of, ef)
	}
	vec := stylometry.NewVectorizer(docs, stylometry.VectorizerConfig{MinDocFreq: 1})
	names = vec.FeatureNames()
	sumAbs = make([]float64, len(names))
	moved = make([]int, len(names))
	for i := 0; i < len(docs); i += 2 {
		orow := vec.Vector(docs[i])
		erow := vec.Vector(docs[i+1])
		for c := range names {
			d := erow[c] - orow[c]
			if d < 0 {
				d = -d
			}
			if d > 0 {
				sumAbs[c] += d
				moved[c]++
			}
		}
	}
	return names, sumAbs, moved, nil
}

// RankFeatureShifts is the feature-robustness ranking: which
// stylometry features the evasion attacks exploit most, ranked by
// mean absolute shift across pairs. topN bounds the returned ranking
// (0 = all).
func RankFeatureShifts(pairs []SourcePair, topN int) ([]FeatureShift, error) {
	names, sumAbs, moved, err := pairShifts(pairs)
	if err != nil {
		return nil, err
	}
	out := make([]FeatureShift, 0, len(names))
	for c, name := range names {
		if moved[c] == 0 {
			continue
		}
		out = append(out, FeatureShift{
			Name:         name,
			MeanAbsDelta: sumAbs[c] / float64(len(pairs)),
			Moved:        moved[c],
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].MeanAbsDelta != out[j].MeanAbsDelta {
			return out[i].MeanAbsDelta > out[j].MeanAbsDelta
		}
		return out[i].Name < out[j].Name
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out, nil
}

// GroupShift aggregates attack-induced feature movement over one
// feature family — the per-group robustness view: a family whose
// features barely move under attack is a family the attacks cannot
// reach.
type GroupShift struct {
	// Family is the stylometry feature family.
	Family stylometry.FeatureFamily
	// Features counts the family's columns in the learned vocabulary.
	Features int
	// MovedFeatures counts columns that changed in at least one pair.
	MovedFeatures int
	// TotalAbsDelta sums the per-feature mean absolute shifts.
	TotalAbsDelta float64
	// MeanAbsDelta is TotalAbsDelta normalized by the family's column
	// count: average movement per feature, comparable across families
	// of very different sizes.
	MeanAbsDelta float64
}

// GroupShifts aggregates RankFeatureShifts' per-column view into one
// row per feature family, in family declaration order. Families with
// no features in the vocabulary are still reported (all-zero rows), so
// tables stay aligned across runs.
func GroupShifts(pairs []SourcePair) ([]GroupShift, error) {
	names, sumAbs, moved, err := pairShifts(pairs)
	if err != nil {
		return nil, err
	}
	byFam := make(map[stylometry.FeatureFamily]*GroupShift, len(stylometry.AllFamilies))
	out := make([]GroupShift, len(stylometry.AllFamilies))
	for i, fam := range stylometry.AllFamilies {
		out[i].Family = fam
		byFam[fam] = &out[i]
	}
	for c, name := range names {
		g, ok := byFam[stylometry.Family(name)]
		if !ok {
			continue
		}
		g.Features++
		if moved[c] > 0 {
			g.MovedFeatures++
			g.TotalAbsDelta += sumAbs[c] / float64(len(pairs))
		}
	}
	for i := range out {
		if out[i].Features > 0 {
			out[i].MeanAbsDelta = out[i].TotalAbsDelta / float64(out[i].Features)
		}
	}
	return out, nil
}
