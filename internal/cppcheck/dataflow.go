package cppcheck

import (
	"math/bits"
	"strings"

	"gptattr/internal/cppast"
)

// VarInfo describes one function-local variable (or parameter) as the
// dataflow analyses see it.
type VarInfo struct {
	Name     string
	Param    bool
	DeclLine int
	// Scalar reports an int/float/char-like value; aggregates (arrays,
	// vectors, strings — all well-defined when default-constructed in
	// C++) are excluded from the uninitialized-read analysis.
	Scalar bool
	// Escaped reports the address was taken (scanf targets, & args,
	// reference-parameter bindings): writes can happen through the
	// alias, so the dead-store and unused-decl rules skip the variable.
	Escaped bool
	// MultiDecl reports more than one declaration site for the name
	// (shadowing). The flat per-function symbol model cannot track
	// scopes precisely, so such names are skipped by the value rules.
	MultiDecl bool
	// Uninit reports a declaration without an initializer.
	Uninit bool
}

// evKind discriminates dataflow events.
type evKind int8

const (
	evUse evKind = iota
	evDef
)

// event is one ordered def or use of a local variable within a block.
// Variables are referenced by their index into funcAnalysis.vars; the
// flat event stream is block-major (see eventsOf), so the whole
// function's dataflow facts live in two reusable slabs instead of a
// map of per-block slices.
type event struct {
	vid  int32
	line int32
	kind evKind
	// def metadata
	decl  bool // definition comes from a declarator
	plain bool // simple `=` store: a dead-store candidate
}

// funcAnalysis holds the per-function dataflow state shared by the
// diagnostic rules, def-use chain construction, and the semstats
// summary path. Every slab is reusable: init() recycles the previous
// function's storage, so a pooled DataflowScratch analyzes function
// after function without allocating.
type funcAnalysis struct {
	g     *CFG
	funcs map[string]*cppast.FuncDecl // unit-level, for ref params

	varID  map[string]int32 // name -> index into vars (cleared per init)
	vars   []VarInfo        // declaration order
	events []event          // block-major flat event stream
	evOff  []int32          // len(g.Blocks)+1 offsets into events

	r    reaching
	live liveness

	// RPO scratch (g.RPO() allocates; the dataflow fixpoints reuse this).
	rpoSeen []bool
	rpo     []*Block

	// Summary scratch.
	useCnt []int32
	counts []int32
	cur    []uint64
}

// assignOps maps C++ assignment operators to whether they read the
// target before writing it (compound assignments do, plain `=` not).
var assignOps = map[string]bool{
	"=": false, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

func aggregateType(typ string) bool {
	t := strings.ToLower(typ)
	return strings.Contains(t, "vector") || strings.Contains(t, "string") ||
		strings.Contains(t, "map") || strings.Contains(t, "set") ||
		strings.Contains(t, "pair") || strings.Contains(t, "queue") ||
		strings.Contains(t, "stack")
}

// newFuncAnalysis collects declarations and the per-block event stream
// for fn's CFG into fresh storage (cold path; hot paths reuse a
// DataflowScratch).
func newFuncAnalysis(g *CFG, funcs map[string]*cppast.FuncDecl) *funcAnalysis {
	fa := &funcAnalysis{}
	fa.init(g, funcs)
	return fa
}

// init recycles fa's slabs for a new function.
func (fa *funcAnalysis) init(g *CFG, funcs map[string]*cppast.FuncDecl) {
	fa.g = g
	fa.funcs = funcs
	if fa.varID == nil {
		fa.varID = make(map[string]int32)
	} else {
		clear(fa.varID)
	}
	fa.vars = fa.vars[:0]
	fa.events = fa.events[:0]
	fa.evOff = fa.evOff[:0]

	for _, p := range g.Fn.Params {
		if p.Name == "" {
			continue
		}
		fa.declare(p.Name, p.Line(), true, !aggregateType(p.Type), false)
		if p.Ref {
			fa.escape(p.Name)
		}
	}
	// Declarations anywhere in the body (flat scope model).
	cppast.Walk(g.Fn.Body, func(n cppast.Node, _ int) bool {
		if vd, ok := n.(*cppast.VarDecl); ok {
			scalar := !aggregateType(vd.Type)
			for _, d := range vd.Names {
				fa.declare(d.Name, vd.Line(), false, scalar && len(d.ArrayLen) == 0, d.Init == nil)
			}
		}
		return true
	})
	for _, b := range g.Blocks {
		fa.evOff = append(fa.evOff, int32(len(fa.events)))
		for _, s := range b.Stmts {
			fa.stmtEvents(s)
		}
		if b.Cond != nil {
			fa.exprEvents(b.Cond)
		}
	}
	fa.evOff = append(fa.evOff, int32(len(fa.events)))
}

// eventsOf returns the events of one block. Block IDs index g.Blocks
// (the builder numbers blocks in append order), which is what lets the
// flat stream replace the per-block map.
func (fa *funcAnalysis) eventsOf(b *Block) []event {
	return fa.events[fa.evOff[b.ID]:fa.evOff[b.ID+1]]
}

func (fa *funcAnalysis) varOf(ev event) *VarInfo { return &fa.vars[ev.vid] }

func (fa *funcAnalysis) declare(name string, line int, param, scalar, uninit bool) {
	if id, ok := fa.varID[name]; ok {
		v := &fa.vars[id]
		v.MultiDecl = true
		v.Uninit = v.Uninit || uninit
		return
	}
	fa.varID[name] = int32(len(fa.vars))
	fa.vars = append(fa.vars, VarInfo{Name: name, Param: param, DeclLine: line, Scalar: scalar, Uninit: uninit})
}

func (fa *funcAnalysis) use(name string, line int) {
	if id, ok := fa.varID[name]; ok {
		fa.events = append(fa.events, event{kind: evUse, vid: id, line: int32(line)})
	}
}

func (fa *funcAnalysis) def(name string, line int, decl, plain bool) {
	if id, ok := fa.varID[name]; ok {
		fa.events = append(fa.events, event{kind: evDef, vid: id, line: int32(line), decl: decl, plain: plain})
	}
}

func (fa *funcAnalysis) escape(name string) {
	if id, ok := fa.varID[name]; ok {
		fa.vars[id].Escaped = true
	}
}

func (fa *funcAnalysis) stmtEvents(s cppast.Node) {
	switch n := s.(type) {
	case *cppast.VarDecl:
		for _, d := range n.Names {
			for _, dim := range d.ArrayLen {
				fa.exprEvents(dim)
			}
			if d.Init != nil {
				fa.exprEvents(d.Init)
				fa.def(d.Name, n.Line(), true, false)
			} else if len(d.ArrayLen) > 0 || aggregateType(n.Type) {
				// Default-constructed aggregates are defined.
				fa.def(d.Name, n.Line(), true, false)
			}
		}
	case *cppast.ExprStmt:
		fa.exprEvents(n.X)
	case *cppast.Return:
		if n.Value != nil {
			fa.exprEvents(n.Value)
		}
	}
}

// chainRoot returns the name of the leftmost identifier of a binary
// operator spine (cin >> a >> b has root "cin"), or "".
func chainRoot(e cppast.Node, op string) string {
	for {
		be, ok := e.(*cppast.BinaryExpr)
		if !ok || be.Op != op {
			break
		}
		e = be.L
	}
	if id, ok := e.(*cppast.Ident); ok {
		return strings.TrimPrefix(id.Name, "std::")
	}
	return ""
}

// exprEvents walks an expression emitting use/def events in evaluation
// order (uses of an assignment's RHS before the LHS def).
func (fa *funcAnalysis) exprEvents(e cppast.Node) {
	switch n := e.(type) {
	case nil:
	case *cppast.Ident:
		fa.use(strings.TrimPrefix(n.Name, "std::"), n.Line())
	case *cppast.Lit:
	case *cppast.ParenExpr:
		fa.exprEvents(n.X)
	case *cppast.BinaryExpr:
		if readsTarget, isAssign := assignOps[n.Op]; isAssign {
			fa.exprEvents(n.R)
			fa.assignTarget(n.L, readsTarget, n.Op == "=")
			return
		}
		if n.Op == ">>" && chainRoot(n, ">>") == "cin" {
			// cin >> a >> b: every extraction target is written.
			fa.exprEvents(n.L)
			fa.assignTarget(n.R, false, false)
			return
		}
		fa.exprEvents(n.L)
		fa.exprEvents(n.R)
	case *cppast.UnaryExpr:
		switch n.Op {
		case "++", "--":
			fa.assignTarget(n.X, true, false)
		case "&":
			// Address taken: assume read-write through the alias.
			if id, ok := n.X.(*cppast.Ident); ok {
				name := strings.TrimPrefix(id.Name, "std::")
				fa.use(name, id.Line())
				fa.def(name, id.Line(), false, false)
				fa.escape(name)
				return
			}
			fa.exprEvents(n.X)
		default:
			fa.exprEvents(n.X)
		}
	case *cppast.TernaryExpr:
		fa.exprEvents(n.Cond)
		fa.exprEvents(n.Then)
		fa.exprEvents(n.Else)
	case *cppast.CallExpr:
		fa.callEvents(n)
	case *cppast.IndexExpr:
		fa.exprEvents(n.X)
		fa.exprEvents(n.Index)
	case *cppast.MemberExpr:
		fa.exprEvents(n.X)
	case *cppast.CastExpr:
		fa.exprEvents(n.X)
	default:
		// Unknown expression shapes: no events (analysis already
		// degraded via CFG.Unsupported when they appear as statements).
	}
}

// assignTarget emits events for the written operand of an assignment,
// increment, or extraction. readsTarget adds a use before the def
// (compound assignments, ++/--).
func (fa *funcAnalysis) assignTarget(target cppast.Node, readsTarget, plain bool) {
	switch t := target.(type) {
	case *cppast.Ident:
		name := strings.TrimPrefix(t.Name, "std::")
		if readsTarget {
			fa.use(name, t.Line())
		}
		fa.def(name, t.Line(), false, plain)
	case *cppast.IndexExpr:
		// a[i] = x: the index is read, the aggregate is read+written
		// (element stores never kill the whole aggregate).
		fa.exprEvents(t.Index)
		if id, ok := t.X.(*cppast.Ident); ok {
			name := strings.TrimPrefix(id.Name, "std::")
			fa.use(name, id.Line())
			fa.def(name, id.Line(), false, false)
		} else {
			fa.exprEvents(t.X)
		}
	case *cppast.ParenExpr:
		fa.assignTarget(t.X, readsTarget, plain)
	default:
		fa.exprEvents(target)
	}
}

func (fa *funcAnalysis) callEvents(call *cppast.CallExpr) {
	// Method calls mutate their receiver (push_back, clear, ...); size
	// and friends only read, but read+write is the safe assumption.
	if m, ok := call.Fun.(*cppast.MemberExpr); ok {
		if id, ok := m.X.(*cppast.Ident); ok {
			name := strings.TrimPrefix(id.Name, "std::")
			fa.use(name, id.Line())
			fa.def(name, id.Line(), false, false)
		} else {
			fa.exprEvents(m.X)
		}
		for _, a := range call.Args {
			fa.exprEvents(a)
		}
		return
	}
	var callee *cppast.FuncDecl
	if id, ok := call.Fun.(*cppast.Ident); ok {
		callee = fa.funcs[strings.TrimPrefix(id.Name, "std::")]
	} else {
		fa.exprEvents(call.Fun)
	}
	for i, a := range call.Args {
		if callee != nil && i < len(callee.Params) && callee.Params[i].Ref {
			// Binding to a reference parameter: read+write, escaped.
			if id, ok := a.(*cppast.Ident); ok {
				name := strings.TrimPrefix(id.Name, "std::")
				fa.use(name, id.Line())
				fa.def(name, id.Line(), false, false)
				fa.escape(name)
				continue
			}
		}
		fa.exprEvents(a)
	}
}

// rpoScratch is g.RPO() over reusable storage.
func (fa *funcAnalysis) rpoScratch() []*Block {
	n := len(fa.g.Blocks)
	if cap(fa.rpoSeen) < n {
		fa.rpoSeen = make([]bool, n)
	} else {
		fa.rpoSeen = fa.rpoSeen[:n]
		clear(fa.rpoSeen)
	}
	fa.rpo = fa.rpo[:0]
	fa.postorder(fa.g.Entry)
	for i, j := 0, len(fa.rpo)-1; i < j; i, j = i+1, j-1 {
		fa.rpo[i], fa.rpo[j] = fa.rpo[j], fa.rpo[i]
	}
	return fa.rpo
}

func (fa *funcAnalysis) postorder(b *Block) {
	if fa.rpoSeen[b.ID] {
		return
	}
	fa.rpoSeen[b.ID] = true
	for _, s := range b.Succs {
		fa.postorder(s)
	}
	fa.rpo = append(fa.rpo, b)
}

// --- bitset helpers ---

func setBit(s []uint64, i int32)      { s[i>>6] |= 1 << (uint(i) & 63) }
func clearBit(s []uint64, i int32)    { s[i>>6] &^= 1 << (uint(i) & 63) }
func hasBit(s []uint64, i int32) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }

// resizeU64 returns a zeroed []uint64 of length n, reusing capacity.
func resizeU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

func resizeI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// --- reaching definitions ---

// reaching runs forward reaching-definitions over def-site bitsets.
// Def IDs number the real def events in block/event order; each
// uninit-declared non-parameter variable also gets a pseudo-def
// numbered after the real ones, reaching from Entry until killed.
type reaching struct {
	nReal int // real def sites
	nAll  int // real + pseudo
	w     int // bitset words per row

	siteEv   []int32   // site id -> flat event index
	eventDef []int32   // flat event index -> site id, -1 for uses
	defsOf   [][]int32 // vid -> site ids (real in stream order, pseudo last)
	uninitID []int32   // vid -> pseudo site id, -1 when none

	gen, kill, in, out []uint64 // len(g.Blocks) rows of w words
}

func (r *reaching) row(s []uint64, b *Block) []uint64 {
	return s[b.ID*r.w : (b.ID+1)*r.w]
}

func (fa *funcAnalysis) reachingDefs() *reaching {
	r := &fa.r
	nv := len(fa.vars)
	// Re-expose retained rows up to cap before growing: truncating and
	// re-appending nil would clobber their backing arrays and put the
	// steady state back on the allocator.
	if nv <= cap(r.defsOf) {
		r.defsOf = r.defsOf[:nv]
	} else {
		r.defsOf = append(r.defsOf[:cap(r.defsOf)], make([][]int32, nv-cap(r.defsOf))...)
	}
	for i := range r.defsOf {
		r.defsOf[i] = r.defsOf[i][:0]
	}
	r.siteEv = r.siteEv[:0]
	r.eventDef = resizeI32(r.eventDef, len(fa.events))
	for i, ev := range fa.events {
		r.eventDef[i] = -1
		if ev.kind == evDef {
			id := int32(len(r.siteEv))
			r.siteEv = append(r.siteEv, int32(i))
			r.eventDef[i] = id
			r.defsOf[ev.vid] = append(r.defsOf[ev.vid], id)
		}
	}
	r.nReal = len(r.siteEv)
	n := r.nReal
	r.uninitID = resizeI32(r.uninitID, nv)
	for vid := range fa.vars {
		r.uninitID[vid] = -1
		if v := &fa.vars[vid]; v.Uninit && !v.Param {
			r.uninitID[vid] = int32(n)
			r.defsOf[vid] = append(r.defsOf[vid], int32(n))
			n++
		}
	}
	r.nAll = n
	r.w = (n + 63) / 64
	if r.w == 0 {
		r.w = 1
	}
	total := len(fa.g.Blocks) * r.w
	r.gen = resizeU64(r.gen, total)
	r.kill = resizeU64(r.kill, total)
	r.in = resizeU64(r.in, total)
	r.out = resizeU64(r.out, total)

	// gen/kill per block: a def kills every def of its variable
	// (including the pseudo-def) and generates itself.
	for bi, b := range fa.g.Blocks {
		g := r.row(r.gen, b)
		k := r.row(r.kill, b)
		for ei := fa.evOff[bi]; ei < fa.evOff[bi+1]; ei++ {
			ev := fa.events[ei]
			if ev.kind != evDef {
				continue
			}
			for _, id := range r.defsOf[ev.vid] {
				clearBit(g, id)
				setBit(k, id)
			}
			id := r.eventDef[ei]
			setBit(g, id)
			clearBit(k, id)
		}
	}
	// Entry generates every uninit pseudo-def.
	entryOut := r.row(r.out, fa.g.Entry)
	for vid := range fa.vars {
		if id := r.uninitID[vid]; id >= 0 {
			setBit(entryOut, id)
		}
	}
	// Fixpoint over reachable blocks only: unreachable blocks keep
	// zero in-sets (their dead defs must not leak into live joins).
	rpo := fa.rpoScratch()
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == fa.g.Entry {
				continue
			}
			in := r.row(r.in, b)
			for i := range in {
				in[i] = 0
			}
			for _, p := range b.Preds {
				po := r.row(r.out, p)
				for i := range in {
					in[i] |= po[i]
				}
			}
			out := r.row(r.out, b)
			g := r.row(r.gen, b)
			k := r.row(r.kill, b)
			for i := range out {
				next := (in[i] &^ k[i]) | g[i]
				if next != out[i] {
					out[i] = next
					changed = true
				}
			}
		}
	}
	return r
}

// DefUseEntry is one def-use chain link: a definition site and the
// lines of the uses it reaches.
type DefUseEntry struct {
	Var      string
	DefLine  int
	UseLines []int
}

// DefUseChains computes, for every real definition of a local
// variable, the source lines of the uses that definition reaches.
// Entries follow block/event order; use lines are in discovery order.
func DefUseChains(g *CFG, funcs map[string]*cppast.FuncDecl) []DefUseEntry {
	fa := newFuncAnalysis(g, funcs)
	r := fa.reachingDefs()
	uses := make([][]int, r.nReal)
	cur := make([]uint64, r.w)
	fa.scanChains(r, cur, func(site int32, line int32) {
		uses[site] = append(uses[site], int(line))
	})
	var out []DefUseEntry
	for id := 0; id < r.nReal; id++ {
		ev := fa.events[r.siteEv[id]]
		out = append(out, DefUseEntry{Var: fa.vars[ev.vid].Name, DefLine: int(ev.line), UseLines: uses[id]})
	}
	return out
}

// scanChains replays every block's event stream against the reaching
// sets, invoking hit for each (real def site, use line) pair in
// discovery order. cur must hold r.w words of scratch.
func (fa *funcAnalysis) scanChains(r *reaching, cur []uint64, hit func(site, line int32)) {
	for _, b := range fa.g.Blocks {
		copy(cur, r.row(r.in, b))
		for ei := fa.evOff[b.ID]; ei < fa.evOff[b.ID+1]; ei++ {
			ev := fa.events[ei]
			switch ev.kind {
			case evUse:
				for _, id := range r.defsOf[ev.vid] {
					if int(id) < r.nReal && hasBit(cur, id) {
						hit(id, ev.line)
					}
				}
			case evDef:
				for _, id := range r.defsOf[ev.vid] {
					clearBit(cur, id)
				}
				setBit(cur, r.eventDef[ei])
			}
		}
	}
}

// VarLiveWidth reports the liveness footprint of one local variable:
// the number of CFG blocks at whose exit the variable is still live.
// Widths are block counts, never line spans, so they are invariant to
// layout and comment rewrites.
type VarLiveWidth struct {
	Var   string
	Width int
}

// LiveWidths runs the backward liveness analysis and returns one entry
// per analyzed local (parameters included) in declaration order.
func LiveWidths(g *CFG, funcs map[string]*cppast.FuncDecl) []VarLiveWidth {
	fa := newFuncAnalysis(g, funcs)
	counts := fa.liveWidthCounts()
	out := make([]VarLiveWidth, 0, len(fa.vars))
	for vid := range fa.vars {
		out = append(out, VarLiveWidth{Var: fa.vars[vid].Name, Width: int(counts[vid])})
	}
	return out
}

// liveWidthCounts runs liveness and counts, per variable, the blocks
// at whose exit it is live.
func (fa *funcAnalysis) liveWidthCounts() []int32 {
	lo := fa.liveness()
	fa.counts = resizeI32(fa.counts, len(fa.vars))
	w := fa.live.w
	for bi := range fa.g.Blocks {
		row := lo[bi*w : (bi+1)*w]
		for wi, word := range row {
			for word != 0 {
				vid := wi<<6 + bits.TrailingZeros64(word)
				if vid < len(fa.vars) {
					fa.counts[vid]++
				}
				word &= word - 1
			}
		}
	}
	return fa.counts
}

// --- liveness ---

// liveness holds the backward live-variable analysis rows, one bit per
// variable (vid), one row per block.
type liveness struct {
	w                  int
	use, def, in, out_ []uint64
}

// liveness runs backward live-variable analysis and returns the
// live-out rows, len(g.Blocks) rows of fa.live.w words each, bit i =
// vid i live at block exit.
func (fa *funcAnalysis) liveness() []uint64 {
	lv := &fa.live
	lv.w = (len(fa.vars) + 63) / 64
	if lv.w == 0 {
		lv.w = 1
	}
	nb := len(fa.g.Blocks)
	total := nb * lv.w
	lv.use = resizeU64(lv.use, total)
	lv.def = resizeU64(lv.def, total)
	lv.in = resizeU64(lv.in, total)
	lv.out_ = resizeU64(lv.out_, total)
	for bi := range fa.g.Blocks {
		u := lv.use[bi*lv.w : (bi+1)*lv.w]
		d := lv.def[bi*lv.w : (bi+1)*lv.w]
		for ei := fa.evOff[bi]; ei < fa.evOff[bi+1]; ei++ {
			ev := fa.events[ei]
			switch ev.kind {
			case evUse:
				if !hasBit(d, ev.vid) {
					setBit(u, ev.vid)
				}
			case evDef:
				setBit(d, ev.vid)
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for i := nb - 1; i >= 0; i-- {
			b := fa.g.Blocks[i]
			out := lv.out_[i*lv.w : (i+1)*lv.w]
			for wi := range out {
				out[wi] = 0
			}
			for _, s := range b.Succs {
				si := lv.in[s.ID*lv.w : (s.ID+1)*lv.w]
				for wi := range out {
					out[wi] |= si[wi]
				}
			}
			in := lv.in[i*lv.w : (i+1)*lv.w]
			u := lv.use[i*lv.w : (i+1)*lv.w]
			d := lv.def[i*lv.w : (i+1)*lv.w]
			for wi := range in {
				next := u[wi] | (out[wi] &^ d[wi])
				if next != in[wi] {
					in[wi] = next
					changed = true
				}
			}
		}
	}
	return lv.out_
}

// --- summary path (semstats) ---

// DataflowSummary aggregates the def-use chain and live-width
// distributions of one function — exactly the numbers semstats folds
// into FuncStats, produced without materializing chains or width
// slices.
type DataflowSummary struct {
	Chains      int    // real def sites
	ChainUses   int    // total use events over all chains
	MaxChainLen int    // most uses reached by one def
	ChainsAtLen [4]int // 0, 1, 2, >=3 uses
	Vars         int
	LiveWidthSum int
	MaxLiveWidth int
}

// DataflowScratch is a reusable workspace for Summary. One scratch
// serves one function at a time; steady state it allocates nothing.
type DataflowScratch struct {
	fa funcAnalysis
}

// NewDataflowScratch returns an empty workspace.
func NewDataflowScratch() *DataflowScratch { return &DataflowScratch{} }

// Release drops name-bearing state so a pooled scratch does not pin
// the last-analyzed source's strings between uses.
func (ds *DataflowScratch) Release() {
	clear(ds.fa.varID)
	ds.fa.vars = ds.fa.vars[:0]
	ds.fa.g = nil
	ds.fa.funcs = nil
	ds.fa.rpo = ds.fa.rpo[:0]
}

// Summary computes both dataflow summaries of g over reused storage.
// The result aggregates what DefUseChains and LiveWidths would return.
func (ds *DataflowScratch) Summary(g *CFG, funcs map[string]*cppast.FuncDecl) DataflowSummary {
	fa := &ds.fa
	fa.init(g, funcs)
	r := fa.reachingDefs()
	fa.useCnt = resizeI32(fa.useCnt, r.nReal)
	fa.cur = resizeU64(fa.cur, r.w)
	fa.scanChains(r, fa.cur, func(site, _ int32) {
		fa.useCnt[site]++
	})
	var sum DataflowSummary
	sum.Chains = r.nReal
	for _, n := range fa.useCnt {
		sum.ChainUses += int(n)
		if int(n) > sum.MaxChainLen {
			sum.MaxChainLen = int(n)
		}
		switch {
		case n == 0:
			sum.ChainsAtLen[0]++
		case n == 1:
			sum.ChainsAtLen[1]++
		case n == 2:
			sum.ChainsAtLen[2]++
		default:
			sum.ChainsAtLen[3]++
		}
	}
	counts := fa.liveWidthCounts()
	sum.Vars = len(fa.vars)
	for _, c := range counts {
		sum.LiveWidthSum += int(c)
		if int(c) > sum.MaxLiveWidth {
			sum.MaxLiveWidth = int(c)
		}
	}
	return sum
}
