package attrib

import (
	"bytes"
	"testing"

	"gptattr/internal/corpus"
	"gptattr/internal/stylometry"
)

// miniCorpus builds a small, fast corpus for ladder tests (the shared
// fixture's 16 authors is overkill for three forests).
func miniCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	human, _, err := corpus.GenerateYear(corpus.YearConfig{Year: 2017, NumAuthors: 6, Seed: 7})
	if err != nil {
		t.Fatalf("GenerateYear: %v", err)
	}
	return human
}

func TestTrainOracleLadder(t *testing.T) {
	human := miniCorpus(t)
	cfg := Config{Trees: 10, TopFeatures: 150, Seed: 42}
	ladder, err := TrainOracleLadder(human, cfg)
	if err != nil {
		t.Fatalf("TrainOracleLadder: %v", err)
	}
	for lvl := stylometry.DegradeNone; lvl <= stylometry.MaxDegrade; lvl++ {
		o := ladder[lvl]
		if o == nil {
			t.Fatalf("ladder[%v] missing", lvl)
		}
		if o.Level() != lvl {
			t.Errorf("ladder[%v].Level() = %v", lvl, o.Level())
		}
		if o.Calibration() <= 0 || o.Calibration() > 1 {
			t.Errorf("ladder[%v].Calibration() = %v, want (0,1]", lvl, o.Calibration())
		}
		// Every rung must score a vector degraded to its level without
		// indexing shed families: predict on filtered features.
		full, err := stylometry.Extract(human.Samples[0].Source)
		if err != nil {
			t.Fatalf("Extract: %v", err)
		}
		degraded := stylometry.FilterFamilies(full, lvl.Families())
		if got := o.PredictFeatures(degraded); got == "" {
			t.Errorf("ladder[%v] produced empty prediction", lvl)
		}
	}

	// The deeper rungs' vocabularies must not reach into shed families.
	for lvl := stylometry.DegradeNoSemantic; lvl <= stylometry.MaxDegrade; lvl++ {
		for _, name := range ladder[lvl].vec.FeatureNames() {
			if !lvl.Keeps(stylometry.Family(name)) {
				t.Fatalf("ladder[%v] vectorizer indexes %s from a shed family", lvl, name)
			}
		}
	}
}

// TestLadderPersistRoundTrip pins that ladder metadata (level,
// families, calibration) survives Save/Load, and that a degraded
// vector scores identically before and after the round trip.
func TestLadderPersistRoundTrip(t *testing.T) {
	human := miniCorpus(t)
	cfg := Config{Trees: 10, TopFeatures: 150, Seed: 42}
	ladder, err := TrainOracleLadder(human, cfg)
	if err != nil {
		t.Fatalf("TrainOracleLadder: %v", err)
	}
	o := ladder[stylometry.DegradeNoSemantic]
	var buf bytes.Buffer
	if err := o.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := LoadOracle(&buf)
	if err != nil {
		t.Fatalf("LoadOracle: %v", err)
	}
	if got.Level() != o.Level() {
		t.Errorf("loaded level %v, want %v", got.Level(), o.Level())
	}
	if got.Calibration() != o.Calibration() {
		t.Errorf("loaded calibration %v, want %v", got.Calibration(), o.Calibration())
	}
	if len(got.Families()) != len(o.Families()) {
		t.Errorf("loaded %d families, want %d", len(got.Families()), len(o.Families()))
	}
	full, err := stylometry.Extract(human.Samples[1].Source)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	degraded := stylometry.FilterFamilies(full, o.Level().Families())
	p1, b1 := o.ProbaFeatures(degraded)
	p2, b2 := got.ProbaFeatures(degraded)
	if b1 != b2 {
		t.Fatalf("prediction changed across round trip: %s vs %s", b1, b2)
	}
	for k, v := range p1 {
		if p2[k] != v {
			t.Fatalf("proba[%s] changed across round trip: %v vs %v", k, v, p2[k])
		}
	}
}

// TestLegacyEnvelopeLoads pins back-compat: a model saved without
// ladder metadata (the pre-ladder Save path writes zero values, which
// omitempty elides) loads as level 0, uncalibrated.
func TestLegacyEnvelopeLoads(t *testing.T) {
	human := miniCorpus(t)
	o, err := TrainOracle(human, Config{Trees: 5, TopFeatures: 100, Seed: 42})
	if err != nil {
		t.Fatalf("TrainOracle: %v", err)
	}
	var buf bytes.Buffer
	if err := o.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := LoadOracle(&buf)
	if err != nil {
		t.Fatalf("LoadOracle: %v", err)
	}
	if got.Level() != stylometry.DegradeNone || got.Calibration() != 0 {
		t.Fatalf("legacy model loaded as level %v calib %v, want 0/0", got.Level(), got.Calibration())
	}
}

func TestTrainBinaryLadder(t *testing.T) {
	fx := fixture(t)
	cfg := Config{Trees: 8, TopFeatures: 150, Seed: 42}
	ladder, err := TrainBinaryLadder(fx.human, fx.transformed, cfg)
	if err != nil {
		t.Fatalf("TrainBinaryLadder: %v", err)
	}
	for lvl := stylometry.DegradeNone; lvl <= stylometry.MaxDegrade; lvl++ {
		c := ladder[lvl]
		if c == nil {
			t.Fatalf("ladder[%v] missing", lvl)
		}
		if c.Level() != lvl {
			t.Errorf("ladder[%v].Level() = %v", lvl, c.Level())
		}
		full, err := stylometry.Extract(fx.transformed.Samples[0].Source)
		if err != nil {
			t.Fatalf("Extract: %v", err)
		}
		degraded := stylometry.FilterFamilies(full, lvl.Families())
		if _, conf := c.DetectFeatures(degraded); conf < 0 || conf > 1 {
			t.Errorf("ladder[%v] confidence %v out of range", lvl, conf)
		}
	}
}
