module gptattr

go 1.22
