package stylometry

import (
	"math"
	"strings"
	"testing"

	"gptattr/internal/cpptok"
)

const sampleA = `#include <iostream>
using namespace std;
int main() {
    int nCase;
    cin >> nCase;
    for (int iCase = 1; iCase <= nCase; ++iCase) {
        int d, n;
        cin >> d >> n;
        cout << d + n << endl;
    }
    return 0;
}`

const sampleB = `#include <cstdio>
/* block comment style */
int solve_case(int case_id)
{
	int d;
	int n;
	scanf("%d %d", &d, &n);
	printf("Case #%d: %d\n", case_id, d + n);
	return 0;
}
int main()
{
	int num_cases;
	scanf("%d", &num_cases);
	while (num_cases--)
	{
		solve_case(num_cases);
	}
	return 0;
}`

func TestExtractBasics(t *testing.T) {
	f, err := Extract(sampleA)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	// Word unigrams present for identifiers.
	if f["WordUnigram:nCase"] != 3 {
		t.Errorf("WordUnigram:nCase = %v, want 3", f["WordUnigram:nCase"])
	}
	// Control-keyword density features exist for all six keywords.
	for _, kw := range []string{"do", "if", "else", "switch", "for", "while"} {
		if _, ok := f["LnKeywordDensity:"+kw]; !ok {
			t.Errorf("missing LnKeywordDensity:%s", kw)
		}
	}
	// "for" appears once; its density must exceed the absent "while".
	if f["LnKeywordDensity:for"] <= f["LnKeywordDensity:while"] {
		t.Errorf("for density %v not > while density %v",
			f["LnKeywordDensity:for"], f["LnKeywordDensity:while"])
	}
	if f["MaxASTDepth"] < 6 {
		t.Errorf("MaxASTDepth = %v, want >= 6", f["MaxASTDepth"])
	}
	if f["ASTNodeTF:For"] != 1 {
		t.Errorf("ASTNodeTF:For = %v, want 1", f["ASTNodeTF:For"])
	}
	if f["ASTBigramTF:Block>For"] != 1 {
		t.Errorf("ASTBigramTF:Block>For = %v, want 1", f["ASTBigramTF:Block>For"])
	}
}

func TestExtractEmptySource(t *testing.T) {
	if _, err := Extract("   \n\t "); err == nil {
		t.Error("Extract of blank source succeeded")
	}
}

func TestLayoutDiscriminatesStyles(t *testing.T) {
	fa, err := Extract(sampleA)
	if err != nil {
		t.Fatalf("Extract A: %v", err)
	}
	fb, err := Extract(sampleB)
	if err != nil {
		t.Fatalf("Extract B: %v", err)
	}
	// Sample A: 4-space indents, K&R braces, camel/hungarian names.
	// Sample B: tab indents, Allman braces, snake names, block comment.
	if fa["TabsLeadLines"] != 0 {
		t.Error("A should not be tab-led")
	}
	if fb["TabsLeadLines"] != 1 {
		t.Error("B should be tab-led")
	}
	if fa["IndentUnit"] != 4 {
		t.Errorf("A indent unit = %v, want 4", fa["IndentUnit"])
	}
	if fa["NewlineBeforeOpenBrace"] != 0 {
		t.Error("A is K&R; NewlineBeforeOpenBrace should be 0")
	}
	if fb["NewlineBeforeOpenBrace"] != 1 {
		t.Error("B is Allman; NewlineBeforeOpenBrace should be 1")
	}
	if fb["LineCommentRatio"] != 0 {
		t.Errorf("B uses block comments only; LineCommentRatio = %v", fb["LineCommentRatio"])
	}
	if fa["NameFracSnake"] >= fb["NameFracSnake"] {
		t.Errorf("snake fraction A %v should be < B %v", fa["NameFracSnake"], fb["NameFracSnake"])
	}
	if fa["NameFracHungarian"] <= fb["NameFracHungarian"] {
		t.Errorf("hungarian fraction A %v should be > B %v", fa["NameFracHungarian"], fb["NameFracHungarian"])
	}
	if fb["HelperFunctionCount"] != 1 {
		t.Errorf("B helper count = %v, want 1", fb["HelperFunctionCount"])
	}
	if fa["HelperFunctionCount"] != 0 {
		t.Errorf("A helper count = %v, want 0", fa["HelperFunctionCount"])
	}
}

func TestClassifyName(t *testing.T) {
	tests := []struct {
		name string
		want string
	}{
		{"solve_case", "snake"},
		{"numCases", "camel"},
		{"MAXN", "upper"},
		{"nCase", "hungarian"},
		{"iCase", "hungarian"},
		{"x", "other"},
		{"main", "other"},
		{"", "other"},
	}
	for _, tt := range tests {
		if got := classifyNameFast(tt.name); got != tt.want {
			t.Errorf("classifyNameFast(%q) = %q, want %q", tt.name, got, tt.want)
		}
	}
}

func TestSpacedRatios(t *testing.T) {
	src := "int a = 1;\nint b=2;\nf(x, y);\ng(p,q);\nif (a == b) {}"
	var surf cpptok.Surface
	if _, err := cpptok.ScanSurface(src, nil, &surf); err != nil {
		t.Fatal(err)
	}
	if got := ratio(surf.EqSpaced, surf.EqTotal); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("spaced-assign ratio = %v, want 0.5 (== must not count)", got)
	}
	if got := ratio(surf.CommaSpaced, surf.CommaTotal); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("space-after-comma ratio = %v, want 0.5", got)
	}
}

func TestLnDensityMonotone(t *testing.T) {
	if lnDensity(0, 100) >= lnDensity(5, 100) {
		t.Error("lnDensity not monotone in count")
	}
	if !finite(lnDensity(0, 100)) {
		t.Error("lnDensity(0) not finite")
	}
}

func finite(f float64) bool { return !math.IsInf(f, 0) && !math.IsNaN(f) }

func TestAllFeaturesFinite(t *testing.T) {
	for _, src := range []string{sampleA, sampleB, "int main(){}"} {
		f, err := Extract(src)
		if err != nil {
			t.Fatalf("Extract: %v", err)
		}
		for name, val := range f {
			if !finite(val) {
				t.Errorf("feature %q = %v (not finite) for %q...", name, val, src[:20])
			}
		}
	}
}

func TestVectorizer(t *testing.T) {
	docs := []Features{
		{"WordUnigram:alpha": 2, "AvgLineLength": 10},
		{"WordUnigram:alpha": 1, "WordUnigram:rare": 1, "AvgLineLength": 20},
		{"WordUnigram:alpha": 3, "AvgLineLength": 30},
	}
	v := NewVectorizer(docs, VectorizerConfig{MinDocFreq: 2})
	names := v.FeatureNames()
	for _, n := range names {
		if n == "WordUnigram:rare" {
			t.Error("rare term survived MinDocFreq=2")
		}
	}
	found := false
	for _, n := range names {
		if n == "WordUnigram:alpha" {
			found = true
		}
	}
	if !found {
		t.Error("frequent term missing from dictionary")
	}
	// Scalar features are kept regardless of document frequency.
	vec := v.Vector(docs[0])
	if len(vec) != v.NumFeatures() {
		t.Fatalf("vector length %d != dict size %d", len(vec), v.NumFeatures())
	}
	// Unknown features are ignored silently.
	_ = v.Vector(Features{"WordUnigram:never-seen": 9})
}

func TestVectorizerDeterministicOrder(t *testing.T) {
	docs := []Features{
		{"b": 1, "a": 1, "c": 1},
		{"c": 1, "a": 1, "b": 1},
	}
	v1 := NewVectorizer(docs, VectorizerConfig{MinDocFreq: 1})
	v2 := NewVectorizer([]Features{docs[1], docs[0]}, VectorizerConfig{MinDocFreq: 1})
	n1, n2 := v1.FeatureNames(), v2.FeatureNames()
	if strings.Join(n1, ",") != strings.Join(n2, ",") {
		t.Errorf("column order unstable: %v vs %v", n1, n2)
	}
}

func TestVectorizerTFIDF(t *testing.T) {
	docs := []Features{
		{"WordUnigram:common": 1},
		{"WordUnigram:common": 1},
		{"WordUnigram:common": 1, "WordUnigram:seldom": 1},
		{"WordUnigram:common": 1, "WordUnigram:seldom": 1},
	}
	v := NewVectorizer(docs, VectorizerConfig{MinDocFreq: 1, UseTFIDF: true})
	row := v.Vector(docs[2])
	var common, seldom float64
	for i, n := range v.FeatureNames() {
		switch n {
		case "WordUnigram:common":
			common = row[i]
		case "WordUnigram:seldom":
			seldom = row[i]
		}
	}
	if seldom <= common {
		t.Errorf("IDF should upweight rarer term: seldom=%v common=%v", seldom, common)
	}
}

func TestBuildDataset(t *testing.T) {
	sources := []string{sampleA, sampleB, sampleA}
	labels := []int{0, 1, 0}
	d, v, err := BuildDataset(sources, labels, 2, VectorizerConfig{MinDocFreq: 1})
	if err != nil {
		t.Fatalf("BuildDataset: %v", err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("dataset invalid: %v", err)
	}
	if len(d.X) != 3 || d.NumFeatures() != v.NumFeatures() {
		t.Errorf("dataset shape %dx%d unexpected", len(d.X), d.NumFeatures())
	}
	// Identical sources must produce identical rows.
	for j := range d.X[0] {
		if d.X[0][j] != d.X[2][j] {
			t.Errorf("identical sources produced different vectors at col %d", j)
			break
		}
	}
}

func TestBuildDatasetPropagatesError(t *testing.T) {
	if _, _, err := BuildDataset([]string{""}, []int{0}, 1, VectorizerConfig{}); err == nil {
		t.Error("BuildDataset with empty source succeeded")
	}
}
