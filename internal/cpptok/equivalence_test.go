package cpptok

import (
	"strings"
	"testing"
)

// equivCorpus is the committed equivalence corpus: every construct the
// scanner distinguishes, plus boundary-condition slivers that exercise
// EOF inside each sub-scanner.
var equivCorpus = []string{
	"",
	"\n",
	"\r\n\r\n",
	"int main() { return 0; }",
	"int main(){int x;cin>>x;while(x-->0){cout<<x;}return 0;}",
	"#include <vector>\n#define MAX(a,b) \\\n  ((a)>(b)?(a):(b))\nint g;\n",
	"// line comment\n/* block\ncomment */ int x; // tail",
	"auto f = [](int a, int b) -> int { return a <=> b; };",
	"x <<= 1; y >>= 2; p ->* q; v .* w; a ... b;",
	"1.5 2e10 3.25f .5 0x1F 42ll 0x 1. 2.e 9ull 1e+5 1e- 7lf",
	"\"str with \\\" escape\" 'c' '\\n' \"unterminated",
	"'x",
	"\"ends with backslash\\",
	"R\"(raw)\" R\"delim(a)nope)delim\" R\"unterminated",
	"R\"d",
	"R\"(never closed",
	"/* never closed",
	"# not preproc? no: line start\nx; # after token\n  \t# ws only before\n",
	"a@b $c `d \x01\x02\xff",
	"\tint  main( )\t{\r\n\t\tdouble d = 1.5e3;\r\n\t\treturn (int)d;\r\n\t}\r\n",
	"::a->b++c--d<<e>>f<=g>=h==i!=j&&k||l+=m-=n*=o/=p%=q&=r|=s^=t",
	"a=b , c ,d, e = f ==g",
	"=",
	"=x",
	"x=",
	",",
	"\u00a0 int x; \u2028",
	"int  \xc2\xa0y;\n\xc2\xa0\n",
	"\\\n#define A 1\n",
	"#def\\\nine B\\",
	"e10 E5 _1e5 0xeF 1e5e5",
}

func sameTokens(t *testing.T, src string, got, want []Token, gotErr, wantErr error) {
	t.Helper()
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("src %q: err %v, reference err %v", src, gotErr, wantErr)
	}
	if gotErr != nil && gotErr.Error() != wantErr.Error() {
		t.Fatalf("src %q: err %q, reference err %q", src, gotErr, wantErr)
	}
	if len(got) != len(want) {
		t.Fatalf("src %q: %d tokens, reference %d\n got: %v\nwant: %v", src, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("src %q: token %d = %v, reference %v", src, i, got[i], want[i])
		}
	}
}

// refSurface recomputes Surface with the pre-rewrite multi-pass code
// (strings.Split line walk + whole-source byte loops), so the fused
// single-pass accumulation is checked against the original semantics.
func refSurface(src string) Surface {
	var sf Surface
	lines := strings.Split(src, "\n")
	sf.Lines = len(lines)
	indentWidths := make(map[int]int)
	for _, ln := range lines {
		l := float64(len(ln))
		sf.LineLenSum += l
		sf.LineLenSumSq += l * l
		if strings.TrimSpace(ln) == "" {
			sf.EmptyLines++
			continue
		}
		switch {
		case strings.HasPrefix(ln, "\t"):
			sf.TabLeadLines++
		case strings.HasPrefix(ln, " "):
			sf.SpaceLeadLines++
			w := 0
			for w < len(ln) && ln[w] == ' ' {
				w++
			}
			indentWidths[w]++
		}
	}
	sf.Indent2, sf.Indent3, sf.Indent4, sf.Indent8 =
		indentWidths[2], indentWidths[3], indentWidths[4], indentWidths[8]
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case '\t':
			sf.Tabs++
			sf.WSChars++
		case ' ':
			sf.Spaces++
			sf.WSChars++
		case '\n', '\r':
			sf.WSChars++
		}
	}
	for _, ln := range lines {
		t := strings.TrimSpace(ln)
		if t == "{" {
			sf.BraceOwnLine++
		} else if strings.HasSuffix(t, "{") && len(t) > 1 {
			sf.BraceSameLine++
		}
	}
	for i := 1; i < len(src)-1; i++ {
		if src[i] != '=' {
			continue
		}
		prev, next := src[i-1], src[i+1]
		if opChar(prev) || opChar(next) {
			continue
		}
		sf.EqTotal++
		if prev == ' ' && next == ' ' {
			sf.EqSpaced++
		}
	}
	for i := 0; i < len(src)-1; i++ {
		if src[i] != ',' {
			continue
		}
		sf.CommaTotal++
		if src[i+1] == ' ' {
			sf.CommaSpaced++
		}
	}
	return sf
}

func checkEquivalence(t *testing.T, src string) {
	t.Helper()
	want, wantErr := referenceScan(src)
	got, gotErr := Scan(src)
	sameTokens(t, src, got, want, gotErr, wantErr)

	var surf Surface
	got2, gotErr2 := ScanSurface(src, nil, &surf)
	sameTokens(t, src, got2, want, gotErr2, wantErr)
	if wantSurf := refSurface(src); surf != wantSurf {
		t.Fatalf("src %q:\nfused surface %+v\n  ref surface %+v", src, surf, wantSurf)
	}
}

// TestScanEquivalenceCorpus runs the differential check over the
// committed corpus (the fuzzer's seed set) so equivalence is enforced
// on every plain `go test` run, not only under -fuzz.
func TestScanEquivalenceCorpus(t *testing.T) {
	for _, src := range equivCorpus {
		checkEquivalence(t, src)
	}
	checkEquivalence(t, benchSrc)
}

// FuzzScanEquivalence feeds arbitrary bytes through both the byte-table
// scanner and the frozen reference scanner: token streams, positions,
// errors, and fused surface stats must match exactly.
func FuzzScanEquivalence(f *testing.F) {
	for _, src := range equivCorpus {
		f.Add(src)
	}
	f.Add(benchSrc)
	f.Fuzz(func(t *testing.T, src string) {
		checkEquivalence(t, src)
	})
}

// TestOperatorTableMaximalMunch enumerates every operator prefix pair
// (including single-character punctuation prefixes) and asserts the
// scanner consumes the longest operator — the property that used to
// rest on the ordering of the operators slice and is now built into
// opTab's longest-first candidate lists.
func TestOperatorTableMaximalMunch(t *testing.T) {
	for _, long := range operators {
		for _, short := range operators {
			if short != long && strings.HasPrefix(long, short) {
				assertSingleOp(t, long, short)
			}
		}
		// The 1-byte prefix is always a valid punct fallback.
		assertSingleOp(t, long, long[:1])
	}
	// The table itself must list longer candidates first: a shorter
	// candidate matching before a longer one would break maximal munch
	// even when both match.
	for b, cands := range opTab {
		for i := 1; i < len(cands); i++ {
			if cands[i-1].n < cands[i].n {
				t.Errorf("opTab[%q]: candidate %d (len %d) sorted after len %d",
					byte(b), i, cands[i].n, cands[i-1].n)
			}
		}
	}
}

func assertSingleOp(t *testing.T, long, short string) {
	t.Helper()
	toks, err := Scan(long)
	if err != nil {
		t.Fatalf("Scan(%q): %v", long, err)
	}
	if len(toks) != 2 || toks[0].Text != long || toks[0].Kind != KindPunct {
		t.Errorf("Scan(%q) = %v; prefix %q must not shadow the full operator", long, toks, short)
	}
}
