package experiments

import (
	"fmt"

	"gptattr/internal/attrib"
	"gptattr/internal/challenge"
	"gptattr/internal/corpus"
	"gptattr/internal/gpt"
	"gptattr/internal/ir"
)

// llmSpec describes one simulated LLM for the multi-model extension —
// the paper's future-work direction of studying "a broader range of
// LLMs, including Gemini-1.5-pro, GPT-4o, and Claude". Each simulated
// model differs in repertoire size, concentration, and rewrite
// thoroughness, the axes the paper's measurements expose.
type llmSpec struct {
	Name         string
	Styles       int
	Skew         float64
	Thoroughness float64
}

func llmSpecs() []llmSpec {
	return []llmSpec{
		{Name: "SimGPT", Styles: 12, Skew: 1.3, Thoroughness: 0.85},
		{Name: "SimGemini", Styles: 20, Skew: 1.0, Thoroughness: 0.70},
		{Name: "SimClaude", Styles: 6, Skew: 1.9, Thoroughness: 0.95},
	}
}

// ExtensionMultiLLM compares three simulated LLMs: per-model style
// statistics and a cross-model detector-transfer matrix (train the
// ChatGPT-vs-human detector on model A's output, test on model B's).
func (s *Suite) ExtensionMultiLLM() (string, error) {
	yd, err := s.Year(2017)
	if err != nil {
		return "", err
	}
	specs := llmSpecs()
	type modelData struct {
		spec        llmSpec
		transformed *corpus.Corpus
		stats       *attrib.StyleStats
	}
	var models []modelData
	for i, spec := range specs {
		m := gpt.NewModel(gpt.Config{
			Seed:         s.scale.Seed*211 + int64(i),
			NumStyles:    spec.Styles,
			Skew:         spec.Skew,
			Thoroughness: spec.Thoroughness,
		})
		transformed, err := corpus.GenerateTransformed(corpus.TransformedConfig{
			Year: 2017, Rounds: s.scale.Rounds, Model: m,
			Seed: s.scale.Seed*223 + int64(i), SkipVerify: true,
		})
		if err != nil {
			return "", fmt.Errorf("experiments: multi-llm %s: %w", spec.Name, err)
		}
		stats, err := attrib.AnalyzeStyles(yd.Oracle, transformed, nil)
		if err != nil {
			return "", err
		}
		models = append(models, modelData{spec, transformed, stats})
	}

	var rows [][]string
	for _, md := range models {
		_, head := md.stats.DominantLabel()
		rows = append(rows, []string{
			md.spec.Name,
			itos(md.spec.Styles),
			itos(md.stats.MaxStyleCount()),
			fmt.Sprintf("%.1f", md.stats.AverageStyleCount(corpus.SettingGPTNCT)),
			fmt.Sprintf("%.1f", head),
		})
	}
	out := renderTable(
		"Extension: simulated multi-LLM style profiles (GCJ 2017 oracle)",
		[]string{"Model", "Repertoire", "MaxObserved", "AvgStyles(+N)", "HeadShare%"},
		rows, "")

	// Cross-model detector transfer.
	cfg := s.attribConfig()
	var xRows [][]string
	for _, trainMd := range models {
		clf, err := attrib.TrainBinary(yd.Human, trainMd.transformed, cfg)
		if err != nil {
			return "", err
		}
		row := []string{trainMd.spec.Name}
		for _, testMd := range models {
			acc, err := clf.EvaluateOn(yd.Human, testMd.transformed)
			if err != nil {
				return "", err
			}
			row = append(row, pct(acc))
		}
		xRows = append(xRows, row)
	}
	header := []string{"train\\test"}
	for _, md := range models {
		header = append(header, md.spec.Name)
	}
	out += "\n" + renderTable(
		"Extension: cross-model detector transfer (balanced accuracy)",
		header, xRows,
		"diagonal = same-model detection; off-diagonal = zero-shot transfer")
	return out, nil
}

// ExtensionCrossYear measures detector generalization across dataset
// years: train the binary detector on year X, evaluate on year Y.
func (s *Suite) ExtensionCrossYear() (string, error) {
	cfg := s.attribConfig()
	years := Years()
	type yearPair struct {
		human *corpus.Corpus
		gpt   *corpus.Corpus
	}
	data := map[int]yearPair{}
	for _, y := range years {
		yd, err := s.Year(y)
		if err != nil {
			return "", err
		}
		data[y] = yearPair{yd.Human, yd.Transformed}
	}
	var rows [][]string
	for _, trainY := range years {
		clf, err := attrib.TrainBinary(data[trainY].human, data[trainY].gpt, cfg)
		if err != nil {
			return "", err
		}
		row := []string{fmt.Sprintf("%d", trainY)}
		for _, testY := range years {
			acc, err := clf.EvaluateOn(data[testY].human, data[testY].gpt)
			if err != nil {
				return "", err
			}
			row = append(row, pct(acc))
		}
		rows = append(rows, row)
	}
	header := []string{"train\\test"}
	for _, y := range years {
		header = append(header, fmt.Sprintf("%d", y))
	}
	return renderTable(
		"Extension: cross-year detector transfer (balanced accuracy)",
		header, rows,
		"diagonal = in-year training accuracy; off-diagonal = transfer to unseen year"), nil
}

// ExtensionChainDepth asks whether chaining deeper evades detection: a
// detector is trained on shallow CT rounds and evaluated on
// progressively deeper rounds of held-back chains.
func (s *Suite) ExtensionChainDepth() (string, error) {
	yd, err := s.Year(2017)
	if err != nil {
		return "", err
	}
	maxRound := 0
	for _, smp := range yd.Transformed.Samples {
		if smp.Round > maxRound {
			maxRound = smp.Round
		}
	}
	if maxRound < 4 {
		return "", fmt.Errorf("experiments: chain-depth needs >= 4 rounds, have %d", maxRound)
	}
	shallowCut := maxRound / 3
	train := yd.Transformed.Filter(func(smp corpus.Sample) bool {
		return smp.Setting == corpus.SettingGPTCT && smp.Round <= shallowCut ||
			smp.Setting == corpus.SettingHumCT && smp.Round <= shallowCut
	})
	clf, err := attrib.TrainBinary(yd.Human, train, s.attribConfig())
	if err != nil {
		return "", err
	}
	var rows [][]string
	bands := [][2]int{
		{1, shallowCut},
		{shallowCut + 1, 2 * shallowCut},
		{2*shallowCut + 1, maxRound},
	}
	for _, band := range bands {
		lo, hi := band[0], band[1]
		test := yd.Transformed.Filter(func(smp corpus.Sample) bool {
			return (smp.Setting == corpus.SettingGPTCT || smp.Setting == corpus.SettingHumCT) &&
				smp.Round >= lo && smp.Round <= hi
		})
		if len(test.Samples) == 0 {
			continue
		}
		acc, err := clf.EvaluateOn(yd.Human, test)
		if err != nil {
			return "", err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d-%d", lo, hi),
			itos(len(test.Samples)),
			pct(acc),
		})
	}
	return renderTable(
		fmt.Sprintf("Extension: detection vs chaining depth (detector trained on CT rounds 1-%d)", shallowCut),
		[]string{"Rounds", "Samples", "BalancedAcc"},
		rows,
		"stable accuracy across bands = chaining deeper does not evade the detector"), nil
}

// ExtensionGeneration500 replicates the background observation of
// Choi et al. (paper §IV-A): generating many codes from one challenge
// statement yields a bounded number of styles ("500 codes ... only up
// to 27 different styles"). We generate 500 solutions of one challenge
// with a 27-style model and count the oracle's distinct labels.
func (s *Suite) ExtensionGeneration500() (string, error) {
	yd, err := s.Year(2017)
	if err != nil {
		return "", err
	}
	model := gpt.NewModel(gpt.Config{Seed: s.scale.Seed*307 + 1, NumStyles: 27, Skew: 1.1})
	gen := &corpus.Corpus{}
	ch := challengeFirst(2017)
	for i := 0; i < 500; i++ {
		src, _ := model.Generate(ch)
		gen.Samples = append(gen.Samples, corpus.Sample{
			Source: src, Author: "ChatGPT", Year: 2017, Challenge: "C1",
			Origin: corpus.OriginGPT, Round: i + 1,
		})
	}
	stats, err := attrib.AnalyzeStyles(yd.Oracle, gen, nil)
	if err != nil {
		return "", err
	}
	distinct := len(stats.Histogram)
	_, head := stats.DominantLabel()
	return fmt.Sprintf(`Extension: 500 generations from one challenge (paper background: <= 27 styles)
generated codes: 500 (single challenge, 27-style model)
distinct oracle labels: %d (paper observed up to 27)
head label share: %.1f%%
`, distinct, head), nil
}

// ExtensionGeneratedAttribution replicates the background result on
// *generated* (not transformed) code: the feature-based approach
// reaches high accuracy while the naive approach struggles (paper
// §IV-A: over 93%% vs 29.2%%).
func (s *Suite) ExtensionGeneratedAttribution() (string, error) {
	yd, err := s.Year(2017)
	if err != nil {
		return "", err
	}
	model := gpt.NewModel(gpt.Config{Seed: s.scale.Seed*311 + 5, NumStyles: s.scale.NumStyles, Skew: 1.0})
	gen, err := corpus.GenerateGPT(corpus.GeneratedConfig{
		Year: 2017, PerChallenge: s.scale.Rounds * 2, Model: model,
	})
	if err != nil {
		return "", err
	}
	naive, err := attrib.EvaluateAttribution(yd.Human, gen, yd.Oracle, attrib.ApproachNaive, s.attribConfig())
	if err != nil {
		return "", err
	}
	fb, err := attrib.EvaluateAttribution(yd.Human, gen, yd.Oracle, attrib.ApproachFeatureBased, s.attribConfig())
	if err != nil {
		return "", err
	}
	rows := [][]string{
		{"naive", pct(naive.MeanAccuracy), pct(naive.ChatGPTRate), itos(naive.SetSize)},
		{"feature-based", pct(fb.MeanAccuracy), pct(fb.ChatGPTRate), itos(fb.SetSize)},
	}
	return renderTable(
		"Extension: attribution of ChatGPT-GENERATED code (paper background: feature-based >93%, naive 29.2%)",
		[]string{"Approach", "205-acc", "ChatGPT-set rate", "Set size"},
		rows,
		fmt.Sprintf("feature-based target label: %s", fb.TargetLabel)), nil
}

func challengeFirst(year int) *ir.Program {
	return challenge.ByYear(year)[0].Prog
}

// Extensions lists the future-work extension runners.
func (s *Suite) Extensions() map[string]func() (string, error) {
	return map[string]func() (string, error){
		"multillm":          s.ExtensionMultiLLM,
		"crossyear":         s.ExtensionCrossYear,
		"chaindepth":        s.ExtensionChainDepth,
		"gen500":            s.ExtensionGeneration500,
		"generated":         s.ExtensionGeneratedAttribution,
		"evasion":           s.ExtensionEvasion,
		"arena":             s.ExtensionArena,
		"semantic-ablation": s.ExtensionSemanticAblation,
		"degrade-ladder":    s.ExtensionDegradeLadder,
	}
}
