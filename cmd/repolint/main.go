// Command repolint enforces repository invariants that go vet cannot
// express, using nothing but go/ast:
//
//   - Deterministic pipeline packages (corpus, codegen, transform,
//     stylometry, ml) must not call time.Now or use the global
//     math/rand source — every sample, style, and split must be
//     reproducible from an explicit seed. Constructing explicitly
//     seeded generators (rand.New, rand.NewSource, rand.NewZipf) is
//     allowed.
//   - Non-test files must not discard the error from io.Closer.Close
//     (a bare `f.Close()` or `defer f.Close()` statement). Types
//     declared in this repository whose Close returns nothing (e.g.
//     serve.Batcher) are exempt — there is no error to discard.
//   - Supervised pipeline packages (stylometry, ml, experiments,
//     featcache) must not call naked panic: a panic that escapes a
//     worker kills a whole multi-hour run, so failures must flow
//     through per-sample/per-fold errors under the recover supervisors
//     (see internal/fault). A deliberate panic at a recover-supervised
//     site is exempted with a `// repolint:allow-panic <reason>`
//     comment on the same or preceding line.
//   - Non-test files must not drop the error from os.Rename or
//     os.WriteFile (a bare call statement): both are how torn or
//     missing files are born. Handle the error or assign it to _ with
//     a reason.
//   - Deterministic pipeline packages must not feed map iteration
//     order into order-sensitive sinks (append, printing, writers,
//     serializers): Go randomizes map range order per run, so any
//     output assembled that way breaks bit-identical reproducibility.
//     Ranging to fill another map (commutative) is fine, as is
//     appending to a slice that is later passed through sort or
//     slices.Sort. A deliberate order-insensitive site is exempted
//     with a `// repolint:allow-maprange <reason>` comment on the
//     same or preceding line as the range statement.
//   - internal/stylometry must not construct feature maps
//     (make(Features), Features{...}, or a raw map[string]float64) in
//     non-test files: the extraction hot path accumulates through the
//     interned FeatureVec, and a fresh map inside a pass silently
//     reintroduces per-request allocation and map-order hazards. The
//     boundary converters that deliberately materialize the map view
//     (Features(), family filters, training-time tables) are exempted
//     with a `// repolint:allow-featmap <reason>` comment on the same
//     or preceding line.
//   - Serving packages (serve, fleet, arena) must not call time.Sleep
//     in non-test files: a bare sleep on a request or control path
//     ignores contexts and deadlines, stalls shutdown, and hides
//     missing backpressure. Wait on a context, a timer channel, or a
//     condition instead. A deliberate sleep (e.g. a jittered retry
//     loop that also honours its context) is exempted with a
//     `// repolint:allow-sleep <reason>` comment on the same or
//     preceding line.
//
// Exit status: 0 clean, 1 findings, 2 usage or parse errors.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// deterministicPkgs are the pipeline packages whose output must be a
// pure function of their seeds.
var deterministicPkgs = []string{
	"internal/corpus", "internal/codegen", "internal/transform",
	"internal/stylometry", "internal/ml", "internal/evade",
	"internal/arena", "internal/semstats",
}

// supervisedPkgs are the pipeline packages whose long runs must not be
// killable by a stray panic: failures belong in per-sample errors
// under the recover supervisors.
var supervisedPkgs = []string{
	"internal/stylometry", "internal/ml", "internal/experiments",
	"internal/featcache",
}

// servingPkgs are the online-serving packages where a bare time.Sleep
// on a request or control path is a latent deadline/shutdown bug.
var servingPkgs = []string{
	"internal/serve", "internal/fleet", "internal/arena",
}

// allowPanicDirective marks a deliberate panic at a recover-supervised
// site as exempt from the naked-panic rule.
const allowPanicDirective = "repolint:allow-panic"

// allowSleepDirective marks a deliberate sleep in a serving package as
// exempt from the bare-sleep rule.
const allowSleepDirective = "repolint:allow-sleep"

// allowMapRangeDirective marks a range-over-map whose sink order
// genuinely does not matter as exempt from the map-order rule.
const allowMapRangeDirective = "repolint:allow-maprange"

// allowFeatMapDirective marks a deliberate feature-map construction at
// a package boundary as exempt from the interned-path rule.
const allowFeatMapDirective = "repolint:allow-featmap"

// featMapPkgs are the packages where feature maps may only be built at
// annotated boundaries: extraction proper goes through FeatureVec.
var featMapPkgs = []string{"internal/stylometry"}

// seededConstructors are the math/rand names that build explicitly
// seeded generators, plus the type names used to pass them around —
// both are how deterministic code is supposed to use the package.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"Rand": true, "Source": true, "Source64": true, "Zipf": true,
}

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
	}
	os.Exit(code)
}

type finding struct {
	pos token.Position
	msg string
}

func run(args []string, out *os.File) (int, error) {
	fs2 := flag.NewFlagSet("repolint", flag.ContinueOnError)
	root := fs2.String("root", ".", "repository root to lint")
	if err := fs2.Parse(args); err != nil {
		return 2, err
	}

	files, err := goFiles(*root)
	if err != nil {
		return 2, err
	}
	fset := token.NewFileSet()
	parsed := make(map[string]*ast.File, len(files))
	for _, path := range files {
		// Comments ride along for the allow-panic directive.
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return 2, err
		}
		parsed[path] = f
	}

	voidClose := voidCloseTypes(parsed)
	var findings []finding
	for _, path := range files {
		f := parsed[path]
		rel, err := filepath.Rel(*root, path)
		if err != nil {
			rel = path
		}
		isTest := strings.HasSuffix(path, "_test.go")
		if !isTest && inDeterministicPkg(rel) {
			findings = append(findings, checkDeterminism(fset, f)...)
			findings = append(findings, checkMapRange(fset, f)...)
		}
		if !isTest && inSupervisedPkg(rel) {
			findings = append(findings, checkPanics(fset, f)...)
		}
		if !isTest && inPkgList(rel, servingPkgs) {
			findings = append(findings, checkSleeps(fset, f)...)
		}
		if !isTest && inPkgList(rel, featMapPkgs) {
			findings = append(findings, checkFeatMaps(fset, f)...)
		}
		if !isTest {
			findings = append(findings, checkCloseErrors(fset, f, voidClose)...)
			findings = append(findings, checkUncheckedFileOps(fset, f)...)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].pos.Filename != findings[j].pos.Filename {
			return findings[i].pos.Filename < findings[j].pos.Filename
		}
		return findings[i].pos.Line < findings[j].pos.Line
	})
	for _, f := range findings {
		fmt.Fprintf(out, "%s:%d: %s\n", f.pos.Filename, f.pos.Line, f.msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(out, "repolint: %d finding(s)\n", len(findings))
		return 1, nil
	}
	return 0, nil
}

func goFiles(root string) ([]string, error) {
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") && name != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	return files, nil
}

func inDeterministicPkg(rel string) bool {
	return inPkgList(rel, deterministicPkgs)
}

func inSupervisedPkg(rel string) bool {
	return inPkgList(rel, supervisedPkgs)
}

func inPkgList(rel string, pkgs []string) bool {
	rel = filepath.ToSlash(rel)
	for _, pkg := range pkgs {
		if strings.HasPrefix(rel, pkg+"/") {
			return true
		}
	}
	return false
}

// importAlias returns the name under which the file refers to the
// given import path, or "" when it is not imported.
func importAlias(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return path[strings.LastIndex(path, "/")+1:]
	}
	return ""
}

func checkDeterminism(fset *token.FileSet, f *ast.File) []finding {
	timeAlias := importAlias(f, "time")
	randAlias := importAlias(f, "math/rand")
	if randAlias == "" {
		randAlias = importAlias(f, "math/rand/v2")
	}
	if timeAlias == "" && randAlias == "" {
		return nil
	}
	var out []finding
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Obj != nil { // Obj != nil: a local shadows the package name
			return true
		}
		switch {
		case timeAlias != "" && pkg.Name == timeAlias && sel.Sel.Name == "Now":
			out = append(out, finding{fset.Position(n.Pos()),
				"time.Now in a deterministic pipeline package (outputs must be reproducible from seeds)"})
		case randAlias != "" && pkg.Name == randAlias && !seededConstructors[sel.Sel.Name]:
			out = append(out, finding{fset.Position(n.Pos()),
				fmt.Sprintf("global math/rand.%s in a deterministic pipeline package (use an explicitly seeded rand.New)", sel.Sel.Name)})
		}
		return true
	})
	return out
}

// checkPanics flags naked panic calls in supervised pipeline
// packages. A `// repolint:allow-panic <reason>` comment on the same
// or immediately preceding line exempts a deliberate panic at a
// recover-supervised site.
func checkPanics(fset *token.FileSet, f *ast.File) []finding {
	allowed := directiveLines(fset, f, allowPanicDirective)
	var out []finding
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "panic" || id.Obj != nil { // Obj != nil: locally shadowed
			return true
		}
		pos := fset.Position(call.Pos())
		if allowed[pos.Line] || allowed[pos.Line-1] {
			return true
		}
		out = append(out, finding{pos,
			"naked panic in a supervised pipeline package (return an error so the worker supervisors contain it, or annotate with // " + allowPanicDirective + " <reason>)"})
		return true
	})
	return out
}

// checkSleeps flags time.Sleep calls in serving packages. A sleep
// there ignores contexts and deadlines; waiting belongs on a timer
// channel or a condition. A `// repolint:allow-sleep <reason>` comment
// on the same or immediately preceding line exempts a deliberate one.
func checkSleeps(fset *token.FileSet, f *ast.File) []finding {
	timeAlias := importAlias(f, "time")
	if timeAlias == "" {
		return nil
	}
	allowed := directiveLines(fset, f, allowSleepDirective)
	var out []finding
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Sleep" {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != timeAlias || pkg.Obj != nil {
			return true
		}
		pos := fset.Position(call.Pos())
		if allowed[pos.Line] || allowed[pos.Line-1] {
			return true
		}
		out = append(out, finding{pos,
			"bare time.Sleep in a serving package (wait on a context or timer channel, or annotate with // " + allowSleepDirective + " <reason>)"})
		return true
	})
	return out
}

// directiveLines returns the set of source lines carrying the given
// lint directive in a comment, so rules can exempt the same or the
// following line.
func directiveLines(fset *token.FileSet, f *ast.File, directive string) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, directive) {
				lines[fset.Position(c.Pos()).Line] = true
				lines[fset.Position(c.End()).Line] = true
			}
		}
	}
	return lines
}

// isFeatMapType reports whether a type expression is the feature-map
// shape: the named Features type or a literal map[string]float64.
func isFeatMapType(t ast.Expr) bool {
	switch v := t.(type) {
	case *ast.Ident:
		return v.Name == "Features"
	case *ast.SelectorExpr:
		pkg, ok := v.X.(*ast.Ident)
		return ok && pkg.Obj == nil && v.Sel.Name == "Features" && pkg.Name == "stylometry"
	case *ast.MapType:
		k, kOK := v.Key.(*ast.Ident)
		val, vOK := v.Value.(*ast.Ident)
		return kOK && vOK && k.Name == "string" && val.Name == "float64"
	}
	return false
}

// checkFeatMaps flags construction of feature maps — make(Features),
// a Features composite literal, or a raw make(map[string]float64) — in
// the extraction package. The hot path is the interned FeatureVec;
// fresh maps belong only at annotated package boundaries
// (// repolint:allow-featmap <reason>).
func checkFeatMaps(fset *token.FileSet, f *ast.File) []finding {
	allowed := directiveLines(fset, f, allowFeatMapDirective)
	var out []finding
	flag := func(n ast.Node, what string) {
		pos := fset.Position(n.Pos())
		if allowed[pos.Line] || allowed[pos.Line-1] {
			return
		}
		out = append(out, finding{pos,
			fmt.Sprintf("%s constructed in the extraction package (accumulate through the interned FeatureVec, or annotate a boundary converter with // %s <reason>)", what, allowFeatMapDirective)})
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			id, ok := v.Fun.(*ast.Ident)
			if ok && id.Name == "make" && id.Obj == nil &&
				len(v.Args) > 0 && isFeatMapType(v.Args[0]) {
				flag(v, "feature map")
			}
		case *ast.CompositeLit:
			if v.Type != nil && isFeatMapType(v.Type) {
				flag(v, "feature-map literal")
			}
		}
		return true
	})
	return out
}

// mapRangeSinkMethods are receiver methods whose call order is
// observable in the output: writers and streaming encoders.
var mapRangeSinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Encode": true,
}

// mapRangeFmtSinks are the fmt package functions that emit output.
var mapRangeFmtSinks = map[string]bool{
	"Fprintf": true, "Printf": true, "Fprintln": true, "Println": true,
	"Print": true, "Fprint": true, "Sprintf": true, "Sprintln": true,
	"Sprint": true,
}

// checkMapRange flags range-over-map loops in deterministic packages
// whose bodies feed order-sensitive sinks. Go randomizes map iteration
// order per run; appending, printing, writing, or serializing inside
// such a loop makes output depend on that order. Writing into another
// map is commutative and not flagged, and an append whose target is
// later passed to sort/slices is exempt (the sort erases the order).
func checkMapRange(fset *token.FileSet, f *ast.File) []finding {
	allowed := directiveLines(fset, f, allowMapRangeDirective)

	// Map-typed objects: declared with a map type, assigned from
	// make(map...) or a map literal, or received as a map parameter.
	mapObjs := make(map[*ast.Object]bool)
	mark := func(id *ast.Ident) {
		if id != nil && id.Obj != nil {
			mapObjs[id.Obj] = true
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.ValueSpec:
			if isMapType(d.Type) {
				for _, name := range d.Names {
					mark(name)
				}
			}
			for i, name := range d.Names {
				if i < len(d.Values) && isMapExpr(d.Values[i]) {
					mark(name)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range d.Lhs {
				if i < len(d.Rhs) && isMapExpr(d.Rhs[i]) {
					if id, ok := lhs.(*ast.Ident); ok {
						mark(id)
					}
				}
			}
		case *ast.Field:
			if isMapType(d.Type) {
				for _, name := range d.Names {
					mark(name)
				}
			}
		}
		return true
	})

	// Append targets that are later sorted anywhere in the file: the
	// sort erases iteration order, so the append is safe.
	sorted := make(map[string]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Obj != nil || (pkg.Name != "sort" && pkg.Name != "slices") {
			return true
		}
		for _, arg := range call.Args {
			sorted[exprString(arg)] = true
		}
		return true
	})

	var out []finding
	ast.Inspect(f, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		id, ok := rng.X.(*ast.Ident)
		if !ok || id.Obj == nil || !mapObjs[id.Obj] {
			return true
		}
		pos := fset.Position(rng.Pos())
		if allowed[pos.Line] || allowed[pos.Line-1] {
			return true
		}
		if sink := mapRangeSink(f, rng.Body, sorted); sink != "" {
			out = append(out, finding{pos,
				fmt.Sprintf("map iteration order feeds %s in a deterministic pipeline package (iterate sorted keys, or annotate with // %s <reason>)", sink, allowMapRangeDirective)})
		}
		return true
	})
	return out
}

// mapRangeSink scans a range body for the first order-sensitive sink
// and names it, or returns "" when the body is order-safe.
func mapRangeSink(f *ast.File, body *ast.BlockStmt, sorted map[string]bool) string {
	fmtAlias := importAlias(f, "fmt")
	jsonAlias := importAlias(f, "encoding/json")
	sink := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "append" && fun.Obj == nil && len(call.Args) > 0 {
				if !sorted[exprString(call.Args[0])] {
					sink = "append"
				}
			}
		case *ast.SelectorExpr:
			pkg, isPkg := fun.X.(*ast.Ident)
			isPkg = isPkg && pkg.Obj == nil
			switch {
			case isPkg && fmtAlias != "" && pkg.Name == fmtAlias && mapRangeFmtSinks[fun.Sel.Name]:
				sink = "fmt." + fun.Sel.Name
			case isPkg && jsonAlias != "" && pkg.Name == jsonAlias &&
				(fun.Sel.Name == "Marshal" || fun.Sel.Name == "MarshalIndent"):
				sink = "json." + fun.Sel.Name
			case !isPkg && mapRangeSinkMethods[fun.Sel.Name]:
				sink = "." + fun.Sel.Name
			case isPkg && mapRangeSinkMethods[fun.Sel.Name]:
				// A package-level Write/Encode etc. is still a sink.
				sink = pkg.Name + "." + fun.Sel.Name
			}
		}
		return true
	})
	return sink
}

// isMapType reports whether a type expression is literally a map.
func isMapType(t ast.Expr) bool {
	_, ok := t.(*ast.MapType)
	return ok
}

// isMapExpr reports whether an expression evaluates to a fresh map:
// make(map[...]...) or a map composite literal.
func isMapExpr(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CallExpr:
		id, ok := v.Fun.(*ast.Ident)
		return ok && id.Name == "make" && id.Obj == nil &&
			len(v.Args) > 0 && isMapType(v.Args[0])
	case *ast.CompositeLit:
		return v.Type != nil && isMapType(v.Type)
	}
	return false
}

// exprString renders an expression for structural comparison (e.g.
// matching an append target against a later sort call's argument).
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return exprString(v.X) + "[" + exprString(v.Index) + "]"
	case *ast.StarExpr:
		return "*" + exprString(v.X)
	case *ast.CallExpr:
		return exprString(v.Fun) + "(...)"
	case *ast.BasicLit:
		return v.Value
	}
	return fmt.Sprintf("%T", e)
}

// checkUncheckedFileOps flags bare-statement calls to os.Rename and
// os.WriteFile whose error result is dropped on the floor: both
// silently produce missing or torn files when they fail.
func checkUncheckedFileOps(fset *token.FileSet, f *ast.File) []finding {
	osAlias := importAlias(f, "os")
	if osAlias == "" {
		return nil
	}
	var out []finding
	flag := func(call *ast.CallExpr) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != osAlias || pkg.Obj != nil {
			return
		}
		if sel.Sel.Name != "Rename" && sel.Sel.Name != "WriteFile" {
			return
		}
		out = append(out, finding{fset.Position(call.Pos()),
			fmt.Sprintf("os.%s error ignored (handle it, or assign to _ with a reason)", sel.Sel.Name)})
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				flag(call)
			}
		case *ast.DeferStmt:
			flag(s.Call)
		case *ast.GoStmt:
			flag(s.Call)
		}
		return true
	})
	return out
}

// voidCloseTypes collects names of repo-declared types whose Close
// method has no results: calls on their values have no error to lose.
func voidCloseTypes(parsed map[string]*ast.File) map[string]bool {
	out := make(map[string]bool)
	for _, f := range parsed {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Close" || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			if fd.Type.Results != nil && len(fd.Type.Results.List) > 0 {
				continue
			}
			t := fd.Recv.List[0].Type
			if star, ok := t.(*ast.StarExpr); ok {
				t = star.X
			}
			if id, ok := t.(*ast.Ident); ok {
				out[strings.ToLower(id.Name)] = true
			}
		}
	}
	return out
}

// checkCloseErrors flags statements that call .Close() and drop the
// result. Without type information the receiver test is a heuristic:
// a receiver identifier that case-insensitively matches a repo type
// with a void Close is exempt.
func checkCloseErrors(fset *token.FileSet, f *ast.File, voidClose map[string]bool) []finding {
	var out []finding
	flag := func(call *ast.CallExpr) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" || len(call.Args) != 0 {
			return
		}
		if id, ok := sel.X.(*ast.Ident); ok && voidClose[strings.ToLower(id.Name)] {
			return
		}
		out = append(out, finding{fset.Position(call.Pos()),
			"Close error ignored (handle it, or assign to _ with a reason)"})
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				flag(call)
			}
		case *ast.DeferStmt:
			flag(s.Call)
		}
		return true
	})
	return out
}
