package experiments

import (
	"strings"
	"testing"
)

func TestExtensionCrossYear(t *testing.T) {
	s := testSuite(t)
	out, err := s.ExtensionCrossYear()
	if err != nil {
		t.Fatalf("ExtensionCrossYear: %v", err)
	}
	if !strings.Contains(out, "2017") || !strings.Contains(out, "train\\test") {
		t.Errorf("malformed cross-year table:\n%s", out)
	}
}

func TestExtensionMultiLLM(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-LLM extension regenerates three transformed corpora")
	}
	s := testSuite(t)
	out, err := s.ExtensionMultiLLM()
	if err != nil {
		t.Fatalf("ExtensionMultiLLM: %v", err)
	}
	for _, want := range []string{"SimGPT", "SimGemini", "SimClaude", "transfer"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestExtensionsRegistry(t *testing.T) {
	s := testSuite(t)
	exts := s.Extensions()
	for _, name := range []string{"multillm", "crossyear", "chaindepth", "gen500", "generated", "evasion", "arena"} {
		if exts[name] == nil {
			t.Errorf("extension %q missing", name)
		}
	}
	if len(exts) != 7 {
		t.Errorf("extensions = %d, want 7", len(exts))
	}
}

func TestExtensionGeneratedAttribution(t *testing.T) {
	s := testSuite(t)
	out, err := s.ExtensionGeneratedAttribution()
	if err != nil {
		t.Fatalf("ExtensionGeneratedAttribution: %v", err)
	}
	if !strings.Contains(out, "naive") || !strings.Contains(out, "feature-based") {
		t.Errorf("malformed generated-attribution table:\n%s", out)
	}
}

func TestExtensionGeneration500(t *testing.T) {
	if testing.Short() {
		t.Skip("generates 500 sources")
	}
	s := testSuite(t)
	out, err := s.ExtensionGeneration500()
	if err != nil {
		t.Fatalf("ExtensionGeneration500: %v", err)
	}
	if !strings.Contains(out, "distinct oracle labels") {
		t.Errorf("malformed gen500 output:\n%s", out)
	}
}

func TestExtensionEvasion(t *testing.T) {
	s := testSuite(t)
	out, err := s.ExtensionEvasion()
	if err != nil {
		t.Fatalf("ExtensionEvasion: %v", err)
	}
	if !strings.Contains(out, "MCTS") && !strings.Contains(out, "nothing to attack") {
		t.Errorf("malformed evasion output:\n%s", out)
	}
}

func TestExtensionArena(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full attack campaigns and retrains a hardened forest")
	}
	s := testSuite(t)
	out, err := s.ExtensionArena()
	if err != nil {
		t.Fatalf("ExtensionArena: %v", err)
	}
	if strings.Contains(out, "nothing to attack") {
		t.Skipf("oracle never attributed the victim at test scale:\n%s", out)
	}
	for _, want := range []string{"untargeted", "targeted", "Baseline ASR", "Hardened ASR"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in arena table:\n%s", want, out)
		}
	}
}

func TestExtensionChainDepth(t *testing.T) {
	s := testSuite(t)
	out, err := s.ExtensionChainDepth()
	if err != nil {
		t.Fatalf("ExtensionChainDepth: %v", err)
	}
	if !strings.Contains(out, "Rounds") || !strings.Contains(out, "BalancedAcc") {
		t.Errorf("malformed chain-depth table:\n%s", out)
	}
}
