package attrib

import (
	"sort"

	"gptattr/internal/corpus"
	"gptattr/internal/stylometry"
)

// StyleStats reports the oracle's view of a transformed corpus: which
// author labels it assigns, per challenge and setting (Table IV), and
// how often each label occurs overall (Tables V-VII).
type StyleStats struct {
	// Predictions holds the oracle label for every sample, parallel to
	// the corpus.
	Predictions []string
	// CountsByChallenge[challenge][setting] is the number of distinct
	// labels (Table IV cells).
	CountsByChallenge map[string]map[corpus.Setting]int
	// Histogram counts label occurrences over the whole corpus
	// (Tables V-VII).
	Histogram map[string]int
}

// AnalyzeStyles predicts labels for the transformed corpus and derives
// the style-count and diversity statistics.
func AnalyzeStyles(o *Oracle, transformed *corpus.Corpus, feats []stylometry.Features) (*StyleStats, error) {
	preds, err := o.PredictCorpus(transformed, feats)
	if err != nil {
		return nil, err
	}
	st := &StyleStats{
		Predictions:       preds,
		CountsByChallenge: make(map[string]map[corpus.Setting]int),
		Histogram:         make(map[string]int),
	}
	distinct := make(map[string]map[corpus.Setting]map[string]bool)
	for i, s := range transformed.Samples {
		label := preds[i]
		st.Histogram[label]++
		if distinct[s.Challenge] == nil {
			distinct[s.Challenge] = make(map[corpus.Setting]map[string]bool)
		}
		if distinct[s.Challenge][s.Setting] == nil {
			distinct[s.Challenge][s.Setting] = make(map[string]bool)
		}
		distinct[s.Challenge][s.Setting][label] = true
	}
	for ch, bySetting := range distinct {
		st.CountsByChallenge[ch] = make(map[corpus.Setting]int)
		for set, labels := range bySetting {
			st.CountsByChallenge[ch][set] = len(labels)
		}
	}
	return st, nil
}

// AverageStyleCount returns the mean distinct-label count for one
// setting across challenges (a Table IV "A" row cell).
func (st *StyleStats) AverageStyleCount(setting corpus.Setting) float64 {
	total, n := 0, 0
	for _, bySetting := range st.CountsByChallenge {
		if c, ok := bySetting[setting]; ok {
			total += c
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}

// MaxStyleCount returns the largest distinct-label count across all
// cells (the paper's "maximum of 12 styles" observation).
func (st *StyleStats) MaxStyleCount() int {
	max := 0
	for _, bySetting := range st.CountsByChallenge {
		for _, c := range bySetting {
			if c > max {
				max = c
			}
		}
	}
	return max
}

// LabelShare is a histogram row: a label with its occurrence count and
// share of the corpus.
type LabelShare struct {
	Label       string
	Occurrences int
	Percentage  float64
}

// TopLabels returns histogram rows sorted by occurrences descending,
// dropping labels with fewer than minOccurrences (the tables filter
// labels occurring fewer than two times).
func (st *StyleStats) TopLabels(minOccurrences int) []LabelShare {
	total := 0
	for _, c := range st.Histogram {
		total += c
	}
	var out []LabelShare
	for label, c := range st.Histogram {
		if c < minOccurrences {
			continue
		}
		out = append(out, LabelShare{
			Label:       label,
			Occurrences: c,
			Percentage:  100 * float64(c) / float64(total),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Occurrences != out[j].Occurrences {
			return out[i].Occurrences > out[j].Occurrences
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// DominantLabel returns the most frequent label and its share.
func (st *StyleStats) DominantLabel() (string, float64) {
	top := st.TopLabels(1)
	if len(top) == 0 {
		return "", 0
	}
	return top[0].Label, top[0].Percentage
}
