package ml

import (
	"fmt"
	"math"
	"sort"
)

// KNN is a k-nearest-neighbours classifier over Euclidean distance,
// kept as a simple baseline against the random forest.
type KNN struct {
	k          int
	X          [][]float64
	Y          []int
	numClasses int
}

// FitKNN memorizes the training set.
func FitKNN(d *Dataset, k int) (*KNN, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("ml: k = %d, want >= 1", k)
	}
	return &KNN{k: k, X: d.X, Y: d.Y, numClasses: d.NumClasses}, nil
}

// Predict returns the majority class among the k nearest neighbours;
// ties break toward the nearer neighbour's class.
func (m *KNN) Predict(x []float64) int {
	type nb struct {
		dist float64
		y    int
	}
	nbs := make([]nb, len(m.X))
	for i, row := range m.X {
		nbs[i] = nb{dist: sqDist(row, x), y: m.Y[i]}
	}
	sort.Slice(nbs, func(a, b int) bool { return nbs[a].dist < nbs[b].dist })
	k := m.k
	if k > len(nbs) {
		k = len(nbs)
	}
	votes := make([]int, m.numClasses)
	best, bestVotes := nbs[0].y, 0
	for i := 0; i < k; i++ {
		votes[nbs[i].y]++
		if votes[nbs[i].y] > bestVotes {
			bestVotes = votes[nbs[i].y]
			best = nbs[i].y
		}
	}
	return best
}

// PredictAll classifies each row.
func (m *KNN) PredictAll(X [][]float64) []int {
	out := make([]int, len(X))
	for i, x := range X {
		out[i] = m.Predict(x)
	}
	return out
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	if math.IsNaN(s) {
		return math.Inf(1)
	}
	return s
}
