package fleet

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock for deterministic breaker
// cooldown tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1700000000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// testBreaker builds a breaker with a small deterministic window and
// the fake clock, recording every transition.
func testBreaker(clk *fakeClock, transitions *[]string) *Breaker {
	return NewBreaker(BreakerConfig{
		Window:     8,
		MinSamples: 4,
		FailRate:   0.5,
		OpenFor:    time.Second,
		Probes:     2,
		OnChange: func(from, to BreakerState) {
			*transitions = append(*transitions, from.String()+">"+to.String())
		},
		now: clk.now,
	})
}

func TestBreakerStaysClosedBelowMinSamples(t *testing.T) {
	clk := newFakeClock()
	var trans []string
	b := testBreaker(clk, &trans)

	// Three straight failures: 100% failure rate, but below MinSamples
	// the rate is not trusted — one early blip must not open it.
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected dispatch %d", i)
		}
		b.Observe(true, 0)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state %v after %d samples (< MinSamples), want closed", got, 3)
	}
	if len(trans) != 0 {
		t.Fatalf("unexpected transitions %v", trans)
	}
}

func TestBreakerOpensAtFailRateAndRejects(t *testing.T) {
	clk := newFakeClock()
	var trans []string
	b := testBreaker(clk, &trans)

	// Two successes then enough failures to cross FailRate with the
	// window past MinSamples.
	b.Observe(false, 0)
	b.Observe(false, 0)
	for i := 0; i < 4 && b.State() == BreakerClosed; i++ {
		b.Observe(true, 0)
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state %v after failure burst, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a dispatch before cooldown")
	}
	if b.Admissible() {
		t.Fatal("open breaker reported admissible before cooldown")
	}
	if len(trans) != 1 || trans[0] != "closed>open" {
		t.Fatalf("transitions %v, want [closed>open]", trans)
	}
}

func TestBreakerHalfOpenProbesThenCloses(t *testing.T) {
	clk := newFakeClock()
	var trans []string
	b := testBreaker(clk, &trans)
	for i := 0; i < 6; i++ {
		b.Observe(true, 0)
	}
	if b.State() != BreakerOpen {
		t.Fatal("setup: breaker did not open")
	}

	clk.advance(time.Second) // cooldown elapses
	if !b.Admissible() {
		t.Fatal("cooled-down breaker not admissible")
	}
	// First Allow flips half-open and consumes probe slot 1 of 2.
	if !b.Allow() {
		t.Fatal("cooled-down breaker rejected the first probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v after probe dispatch, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open breaker rejected probe 2 of 2")
	}
	// Probe slots are bounded: a third concurrent dispatch must wait.
	if b.Allow() {
		t.Fatal("half-open breaker exceeded its probe budget")
	}
	b.Observe(false, 0)
	b.Observe(false, 0)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state %v after %d good probes, want closed", got, 2)
	}
	want := []string{"closed>open", "open>half-open", "half-open>closed"}
	if len(trans) != len(want) {
		t.Fatalf("transitions %v, want %v", trans, want)
	}
	for i := range want {
		if trans[i] != want[i] {
			t.Fatalf("transitions %v, want %v", trans, want)
		}
	}
	// The window restarted on close: one failure must not reopen.
	b.Observe(true, 0)
	if b.State() != BreakerClosed {
		t.Fatal("breaker reopened on a single post-close failure (window not reset)")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := newFakeClock()
	var trans []string
	b := testBreaker(clk, &trans)
	for i := 0; i < 6; i++ {
		b.Observe(true, 0)
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooled-down breaker rejected the probe")
	}
	b.Observe(true, 0)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state %v after failed probe, want open", got)
	}
	// The cooldown restarts from the reopen.
	if b.Allow() {
		t.Fatal("reopened breaker allowed a dispatch with no new cooldown")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("reopened breaker rejected a probe after its fresh cooldown")
	}
}

func TestBreakerCancelReturnsProbeSlot(t *testing.T) {
	clk := newFakeClock()
	var trans []string
	b := testBreaker(clk, &trans)
	for i := 0; i < 6; i++ {
		b.Observe(true, 0)
	}
	clk.advance(time.Second)
	if !b.Allow() || !b.Allow() {
		t.Fatal("probe slots not granted")
	}
	if b.Allow() {
		t.Fatal("probe budget not enforced")
	}
	// An abandoned dispatch (caller deadline died before the replica
	// was reached) returns its slot instead of wedging half-open.
	b.Cancel()
	if !b.Allow() {
		t.Fatal("cancelled probe slot was not returned")
	}
}

func TestBreakerSlowAfterCountsLatencyAsFailure(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{
		Window: 8, MinSamples: 4, FailRate: 0.5,
		SlowAfter: 50 * time.Millisecond,
		now:       clk.now,
	})
	// All dispatches succeed on the wire but exceed the latency bar: a
	// replica in a latency storm is as useless as a dead one.
	for i := 0; i < 4; i++ {
		b.Observe(false, 200*time.Millisecond)
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state %v after slow-success storm, want open", got)
	}
}

func TestBreakerFailureRate(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Window: 8, MinSamples: 8, now: clk.now})
	if got := b.FailureRate(); got != 0 {
		t.Fatalf("empty-window failure rate %v, want 0", got)
	}
	b.Observe(true, 0)
	b.Observe(false, 0)
	if got := b.FailureRate(); got != 0.5 {
		t.Fatalf("failure rate %v, want 0.5", got)
	}
}
