package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gptattr/internal/serve"
)

func TestRunFlagValidation(t *testing.T) {
	if err := run(nil, io.Discard); err == nil || !strings.Contains(err.Error(), "required") {
		t.Fatalf("err = %v, want missing-flag error", err)
	}
	err := run([]string{"-url", "http://x", "-corpus", t.TempDir(), "-endpoint", "bogus"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "endpoint") {
		t.Fatalf("err = %v, want endpoint error", err)
	}
}

func TestLoadSources(t *testing.T) {
	dir := t.TempDir()
	if _, err := loadSources(dir); err == nil {
		t.Fatal("empty dir yielded sources")
	}
	sub := filepath.Join(dir, "a")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, body := range map[string]string{
		filepath.Join(dir, "one.cc"):   "int main() {}",
		filepath.Join(sub, "two.cpp"):  "int x;",
		filepath.Join(dir, "skip.txt"): "not code",
	} {
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	srcs, err := loadSources(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) != 2 {
		t.Fatalf("loaded %d sources, want 2 (.txt excluded)", len(srcs))
	}
}

// stubServer mimics attrserve: answers attribute/detect with canned
// JSON and injects 429s every rejectEvery-th request.
func stubServer(t *testing.T, rejectEvery int) (*httptest.Server, *atomic.Uint64, *atomic.Uint64) {
	t.Helper()
	var attrs, dets atomic.Uint64
	var seq atomic.Uint64
	mux := http.NewServeMux()
	handle := func(hits *atomic.Uint64, payload any) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			var req serve.AttributeRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Source == "" {
				t.Errorf("bad request body: %v", err)
				w.WriteHeader(http.StatusBadRequest)
				return
			}
			if n := seq.Add(1); rejectEvery > 0 && n%uint64(rejectEvery) == 0 {
				w.Header().Set("Retry-After", "1")
				w.WriteHeader(http.StatusTooManyRequests)
				json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "saturated"})
				return
			}
			hits.Add(1)
			json.NewEncoder(w).Encode(payload)
		}
	}
	mux.Handle("/v1/attribute", handle(&attrs, serve.AttributeResponse{Author: "a", ModelGeneration: 1}))
	mux.Handle("/v1/detect", handle(&dets, serve.DetectResponse{ChatGPT: true, Confidence: 0.9, ModelGeneration: 1}))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, &attrs, &dets
}

func TestLoadTestReportsOutcomes(t *testing.T) {
	srv, attrs, dets := stubServer(t, 5)
	rep := loadTest(loadConfig{
		BaseURL:  srv.URL,
		Endpoint: "mixed",
		Sources:  []string{"int main() {}", "int y;"},
		Clients:  8,
		Duration: 5 * time.Second,
		Requests: 200,
		Timeout:  5 * time.Second,
	})
	if rep.Total != 200 {
		t.Fatalf("total = %d, want 200", rep.Total)
	}
	want429 := uint64(200 / 5)
	if got := rep.ByStatus[http.StatusTooManyRequests]; got != want429 {
		t.Errorf("429s = %d, want %d", got, want429)
	}
	if rep.OK != 200-want429 {
		t.Errorf("ok = %d, want %d", rep.OK, 200-want429)
	}
	if rep.OK != rep.ByStatus[http.StatusOK] {
		t.Errorf("ok %d != status-200 count %d", rep.OK, rep.ByStatus[http.StatusOK])
	}
	if got := attrs.Load() + dets.Load(); got != rep.OK {
		t.Errorf("server saw %d ok requests, client counted %d", got, rep.OK)
	}
	if attrs.Load() == 0 || dets.Load() == 0 {
		t.Errorf("mixed endpoint skewed: attribute=%d detect=%d", attrs.Load(), dets.Load())
	}
	if rep.NetErrs != 0 {
		t.Errorf("network errors = %d", rep.NetErrs)
	}
	if s := rep.Latency; s.Count != uint64(rep.Total) || s.P50 <= 0 || s.P99 < s.P50 {
		t.Errorf("latency snapshot inconsistent: %+v", s)
	}
	text := rep.String()
	for _, want := range []string{"200 total", "status 200:", "status 429:", "throughput:", "latency:"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

func TestRunEndToEndAgainstStub(t *testing.T) {
	srv, _, _ := stubServer(t, 0)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.cc"), []byte("int main() {}"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := run([]string{
		"-url", srv.URL,
		"-corpus", dir,
		"-clients", "4",
		"-duration", "30s",
		"-requests", "50",
		"-server-metrics=false",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "50 total, 50 ok") {
		t.Errorf("unexpected report:\n%s", out.String())
	}
}
