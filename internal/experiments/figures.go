package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"gptattr/internal/attrib"
	"gptattr/internal/challenge"
	"gptattr/internal/codegen"
	"gptattr/internal/gpt"
	"gptattr/internal/ir"
	"gptattr/internal/style"
)

// figureProfile is a fig-3-like author: Hungarian-ish names, K&R,
// mixed I/O (cin input, printf output), inline main.
func figureProfile() style.Profile {
	return style.Profile{
		Name:              "Fig3Author",
		Naming:            style.NamingHungarian,
		Indent:            style.Indent{Width: 4},
		Brace:             style.BraceKR,
		IO:                style.IOMixed,
		Loop:              style.LoopFor,
		Decomp:            style.DecompInline,
		Comments:          style.CommentNone,
		UsingNamespaceStd: true,
		SpaceAroundOps:    true,
		SpaceAfterComma:   true,
		BracesAlways:      true,
		PreIncrement:      true,
	}
}

// Figure1 prints the ChatGPT code-transformation pipeline overview
// (the paper's Figure 1) annotated with the modules realizing each
// stage, and runs a miniature end-to-end pass through it.
func (s *Suite) Figure1() (string, error) {
	yd, err := s.Year(2017)
	if err != nil {
		return "", err
	}
	naive, err := attribOne(s, yd, false)
	if err != nil {
		return "", err
	}
	fb, err := attribOne(s, yd, true)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(`Figure 1: overview of ChatGPT code transformation (as implemented)

 (1) sources                    (2) transformation              (3) attribution
 +---------------------+        +----------------------+        +--------------------------+
 | ChatGPT-generated   |  NCT   | GPT(code) -> code'   |        | oracle predicts labels   |
 |   gpt.Model.Generate|------->|  rename / IO / loops |        |   attrib.AnalyzeStyles   |
 | non-ChatGPT code    |  CT    |  reprint in style    |------->| group sets (feature/naive)|
 |   corpus.GenerateYear|------>|  transform.* verified|        | train 205-author model   |
 +---------------------+        +----------------------+        +--------------------------+
`)
	fmt.Fprintf(&b, "\nminiature run-through (year 2017, %d authors, %d rounds):\n",
		s.scale.Authors, s.scale.Rounds)
	fmt.Fprintf(&b, "  transformed samples: %d; oracle styles observed: %d (max per cell)\n",
		len(yd.Transformed.Samples), yd.Stats.MaxStyleCount())
	fmt.Fprintf(&b, "  naive ChatGPT-set rate: %.0f%%; feature-based: %.0f%% (target %s)\n",
		100*naive.ChatGPTRate, 100*fb.ChatGPTRate, fb.TargetLabel)
	return b.String(), nil
}

func attribOne(s *Suite, yd *YearData, featureBased bool) (*attrib.AttributionResult, error) {
	a := attrib.ApproachNaive
	if featureBased {
		a = attrib.ApproachFeatureBased
	}
	return attrib.EvaluateAttribution(yd.Human, yd.Transformed, yd.Oracle, a, s.attribConfig())
}

// Figure2 demonstrates the NCT vs CT dataflow: it runs both protocols
// for a few rounds and prints the style index trace, showing NCT
// resampling styles independently while CT sticks.
func (s *Suite) Figure2() (string, error) {
	ch, err := challenge.Get(2017, "C1")
	if err != nil {
		return "", err
	}
	model := gpt.NewModel(gpt.Config{Seed: s.scale.Seed*13 + 7, NumStyles: s.scale.NumStyles})
	src := codegen.Render(ch.Prog, figureProfile(), 1)
	run, err := ir.Synthesize(ch.Prog, 3, rand.New(rand.NewSource(s.scale.Seed)))
	if err != nil {
		return "", err
	}
	inputs := []string{run.Input}
	rounds := 8

	nct, err := model.NCT(src, rounds, inputs)
	if err != nil {
		return "", fmt.Errorf("experiments: figure 2 NCT: %w", err)
	}
	ct, err := model.CT(src, rounds, inputs)
	if err != nil {
		return "", fmt.Errorf("experiments: figure 2 CT: %w", err)
	}
	trace := func(rs []gpt.Result) string {
		var parts []string
		for _, r := range rs {
			parts = append(parts, fmt.Sprintf("S%02d", r.StyleIndex+1))
		}
		return strings.Join(parts, " -> ")
	}
	distinct := func(rs []gpt.Result) int {
		set := map[int]bool{}
		for _, r := range rs {
			set[r.StyleIndex] = true
		}
		return len(set)
	}
	var b strings.Builder
	b.WriteString("Figure 2: non-chaining (NCT) vs chaining (CT) transformation\n")
	fmt.Fprintf(&b, "NCT: CGc0 -> GPT -> CGc_i (independent rounds)\n  styles: %s  (%d distinct)\n",
		trace(nct), distinct(nct))
	fmt.Fprintf(&b, "CT:  CGc_i -> GPT -> CGc_{i+1} (chained rounds)\n  styles: %s  (%d distinct)\n",
		trace(ct), distinct(ct))
	b.WriteString("every round verified behaviour-preserving on sampled inputs\n")
	return b.String(), nil
}

// Figure345 reproduces the paper's running example: the original
// horse-race program (Figure 3), one NCT transformation (Figure 4),
// and two CT rounds (Figure 5), all behaviour-verified.
func (s *Suite) Figure345() (string, error) {
	ch, err := challenge.Get(2017, "C1")
	if err != nil {
		return "", err
	}
	src := codegen.Render(ch.Prog, figureProfile(), 1)
	run, err := ir.Synthesize(ch.Prog, 3, rand.New(rand.NewSource(s.scale.Seed+5)))
	if err != nil {
		return "", err
	}
	inputs := []string{run.Input}
	model := gpt.NewModel(gpt.Config{Seed: s.scale.Seed*19 + 3, NumStyles: s.scale.NumStyles})

	nct, err := model.NCT(src, 2, inputs)
	if err != nil {
		return "", fmt.Errorf("experiments: figure 4: %w", err)
	}
	ct, err := model.CT(src, 2, inputs)
	if err != nil {
		return "", fmt.Errorf("experiments: figure 5: %w", err)
	}
	var b strings.Builder
	b.WriteString("Figure 3: original code (synthetic author, cf. paper Figure 3)\n")
	b.WriteString(indent(src))
	fmt.Fprintf(&b, "\nFigure 4a: first NCT transformation (style S%02d)\n", nct[0].StyleIndex+1)
	b.WriteString(indent(nct[0].Source))
	fmt.Fprintf(&b, "\nFigure 4b: second NCT transformation of the SAME original (style S%02d)\n", nct[1].StyleIndex+1)
	b.WriteString(indent(nct[1].Source))
	fmt.Fprintf(&b, "\nFigure 5a: first CT transformation (style S%02d)\n", ct[0].StyleIndex+1)
	b.WriteString(indent(ct[0].Source))
	fmt.Fprintf(&b, "\nFigure 5b: second CT transformation of 5a (style S%02d)\n", ct[1].StyleIndex+1)
	b.WriteString(indent(ct[1].Source))
	b.WriteString("\nall four variants verified to print the same output as the original\n")
	return b.String(), nil
}

func indent(src string) string {
	lines := strings.Split(strings.TrimRight(src, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "    | " + l
	}
	return strings.Join(lines, "\n") + "\n"
}
