package experiments

import (
	"fmt"
	"strings"

	"gptattr/internal/attrib"
	"gptattr/internal/corpus"
)

// renderTable formats rows with aligned columns.
func renderTable(title string, header []string, rows [][]string, footer string) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteByte('\n')
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	if footer != "" {
		b.WriteString(footer + "\n")
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func pct(f float64) string { return fmt.Sprintf("%.1f", 100*f) }
func itos(i int) string    { return fmt.Sprintf("%d", i) }
func f1s(f float64) string { return fmt.Sprintf("%.1f", f) }
func mark(ok bool) string {
	if ok {
		return "Y"
	}
	return "x"
}

// TableI reports the non-ChatGPT dataset shapes (paper Table I:
// 204 authors x 8 challenges = 1,632 per year).
func (s *Suite) TableI() (string, error) {
	var rows [][]string
	for _, y := range Years() {
		yd, err := s.Year(y)
		if err != nil {
			return "", err
		}
		rows = append(rows, []string{
			fmt.Sprintf("GCJ %d", y),
			itos(len(yd.Human.Authors())),
			"8", "C++",
			itos(len(yd.Human.Samples)),
		})
	}
	return renderTable(
		"Table I: non-ChatGPT datasets (paper: 204 authors, 8 challenges, 1,632 total per year)",
		[]string{"Dataset", "Authors", "Challenges", "Language", "Total"},
		rows, ""), nil
}

// TableII reports the transformed dataset shapes (paper Table II:
// 50 per setting per challenge; 1,600 per year).
func (s *Suite) TableII() (string, error) {
	var rows [][]string
	for _, y := range Years() {
		yd, err := s.Year(y)
		if err != nil {
			return "", err
		}
		counts := map[corpus.Setting]int{}
		for _, smp := range yd.Transformed.Samples {
			counts[smp.Setting]++
		}
		per := func(set corpus.Setting) string { return itos(counts[set] / 8) }
		rows = append(rows, []string{
			fmt.Sprintf("GCJ %d", y),
			per(corpus.SettingGPTNCT), per(corpus.SettingGPTCT),
			per(corpus.SettingHumNCT), per(corpus.SettingHumCT),
			fmt.Sprintf("%d (%dx8)", len(yd.Transformed.Samples), len(yd.Transformed.Samples)/8),
		})
	}
	return renderTable(
		"Table II: ChatGPT-transformed datasets per challenge (paper: 50 per setting; 1,600 (200x8) per year)",
		[]string{"Dataset", "+N", "+C", "±N", "±C", "Total"},
		rows, ""), nil
}

// TableIII reports the binary-classification dataset shapes (paper
// Table III: 3,200 per year; combined 6,000 over 15 challenges).
func (s *Suite) TableIII() (string, error) {
	var rows [][]string
	for _, y := range Years() {
		yd, err := s.Year(y)
		if err != nil {
			return "", err
		}
		perCh := len(yd.Transformed.Samples) / 8
		total := 2 * len(yd.Transformed.Samples)
		rows = append(rows, []string{
			fmt.Sprintf("GCJ %d", y), "8", itos(2 * perCh), "C++", itos(total),
		})
	}
	// Combined: 5 challenges per year across 3 years.
	combinedTotal := 0
	for _, y := range Years() {
		yd, err := s.Year(y)
		if err != nil {
			return "", err
		}
		kept := yd.Transformed.Filter(func(sm corpus.Sample) bool { return keepCombined(sm.Challenge) })
		combinedTotal += 2 * len(kept.Samples)
	}
	perCh := 0
	if yd, err := s.Year(2017); err == nil {
		perCh = 2 * len(yd.Transformed.Samples) / 8
	}
	rows = append(rows, []string{"Combined", "15", itos(perCh), "C++", itos(combinedTotal)})
	return renderTable(
		"Table III: binary classification datasets (paper: 3,200 per year; combined 6,000)",
		[]string{"Dataset", "Challenges", "Codes/challenge", "Language", "Total"},
		rows, ""), nil
}

// keepCombined keeps challenges C1..C5 for the combined dataset (the
// paper reduces 8 challenges to 5 per year to balance at 6,000).
func keepCombined(ch string) bool {
	switch ch {
	case "C1", "C2", "C3", "C4", "C5":
		return true
	}
	return false
}

// TableIVResult holds the number-of-styles analysis.
type TableIVResult struct {
	// Counts[year][challenge][setting] = distinct oracle labels.
	Counts map[int]map[string]map[corpus.Setting]int
	// Averages[year][setting] = mean over challenges.
	Averages map[int]map[corpus.Setting]float64
	// Max is the largest cell (paper: 12).
	Max int
}

// TableIVData computes the structured Table IV result.
func (s *Suite) TableIVData() (*TableIVResult, error) {
	res := &TableIVResult{
		Counts:   make(map[int]map[string]map[corpus.Setting]int),
		Averages: make(map[int]map[corpus.Setting]float64),
	}
	for _, y := range Years() {
		yd, err := s.Year(y)
		if err != nil {
			return nil, err
		}
		res.Counts[y] = yd.Stats.CountsByChallenge
		res.Averages[y] = make(map[corpus.Setting]float64)
		for _, set := range corpus.Settings() {
			res.Averages[y][set] = yd.Stats.AverageStyleCount(set)
		}
		if m := yd.Stats.MaxStyleCount(); m > res.Max {
			res.Max = m
		}
	}
	return res, nil
}

// TableIV renders the number-of-styles table (paper Table IV; averages
// 3.1/1.8/2.5/2.0, 3.9/1.8/9.6/3.8, 3.3/1.5/7.1/2.4; max 12).
func (s *Suite) TableIV() (string, error) {
	data, err := s.TableIVData()
	if err != nil {
		return "", err
	}
	header := []string{"C"}
	for range Years() {
		header = append(header, "+N", "+C", "±N", "±C")
	}
	var rows [][]string
	for c := 1; c <= 8; c++ {
		ch := fmt.Sprintf("C%d", c)
		row := []string{ch}
		for _, y := range Years() {
			for _, set := range corpus.Settings() {
				row = append(row, itos(data.Counts[y][ch][set]))
			}
		}
		rows = append(rows, row)
	}
	avg := []string{"A"}
	for _, y := range Years() {
		for _, set := range corpus.Settings() {
			avg = append(avg, f1s(data.Averages[y][set]))
		}
	}
	rows = append(rows, avg)
	title := "Table IV: number of styles (columns grouped 2017 | 2018 | 2019)\n" +
		"paper averages: 2017: 3.1/1.8/2.5/2.0  2018: 3.9/1.8/9.6/3.8  2019: 3.3/1.5/7.1/2.4; max 12"
	footer := fmt.Sprintf("measured max styles: %d (paper: 12)", data.Max)
	return renderTable(title, header, rows, footer), nil
}

// TableDiversity renders the diversity-of-styles histogram for one
// year (paper Tables V-VII).
func (s *Suite) TableDiversity(year int) (string, error) {
	yd, err := s.Year(year)
	if err != nil {
		return "", err
	}
	top := yd.Stats.TopLabels(2)
	var rows [][]string
	for _, l := range top {
		rows = append(rows, []string{l.Label, itos(l.Occurrences), fmt.Sprintf("%.1f", l.Percentage)})
	}
	singles := 0
	for _, c := range yd.Stats.Histogram {
		if c < 2 {
			singles++
		}
	}
	paper := map[int]string{
		2017: "paper: head label A49 at 77.1%",
		2018: "paper: top three labels total 66.5% (24.8/23.4/18.3)",
		2019: "paper: top two labels total 58.6% (39.9/18.7)",
	}
	title := fmt.Sprintf("Table %s: diversity of styles - GCJ %d (%s)",
		map[int]string{2017: "V", 2018: "VI", 2019: "VII"}[year], year, paper[year])
	footer := fmt.Sprintf("filtered %d label(s) with fewer than two occurrences", singles)
	return renderTable(title, []string{"Label", "Occurrences", "Percentage"}, rows, footer), nil
}

// AttributionRow bundles one year's Table VIII/IX result.
type AttributionRow struct {
	Year   int
	Result *attrib.AttributionResult
}

// TableVIIIData evaluates the naive approach per year.
func (s *Suite) TableVIIIData() ([]AttributionRow, error) {
	return s.attributionData(attrib.ApproachNaive)
}

// TableIXData evaluates the feature-based approach per year.
func (s *Suite) TableIXData() ([]AttributionRow, error) {
	return s.attributionData(attrib.ApproachFeatureBased)
}

func (s *Suite) attributionData(a attrib.Approach) ([]AttributionRow, error) {
	out := make([]AttributionRow, len(Years()))
	err := s.forYears(func(i, y int) error {
		// One checkpoint unit per (approach, year): a resumed run
		// replays finished years and only recomputes the rest.
		key := fmt.Sprintf("attr:%s:year:%d", a, y)
		var res *attrib.AttributionResult
		if ok, err := s.lookupUnit(key, &res); err != nil {
			return err
		} else if ok {
			out[i] = AttributionRow{Year: y, Result: res}
			return nil
		}
		yd, err := s.Year(y)
		if err != nil {
			return err
		}
		res, err = attrib.EvaluateAttribution(yd.Human, yd.Transformed, yd.Oracle, a, s.attribConfig())
		if err != nil {
			return fmt.Errorf("experiments: year %d %s: %w", y, a, err)
		}
		if err := s.storeUnit(key, res); err != nil {
			return err
		}
		out[i] = AttributionRow{Year: y, Result: res}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TableVIII renders the naive-approach accuracies (paper Table VIII:
// averages 90.2/80.2/85.4; N rates 100/50/37.5).
func (s *Suite) TableVIII() (string, error) {
	data, err := s.TableVIIIData()
	if err != nil {
		return "", err
	}
	return renderAttribution("Table VIII: naive approach, 205 authors\n"+
		"paper: avg accuracy 90.2/80.2/85.4; ChatGPT-set rate 100/50/37.5", data, false), nil
}

// TableIX renders the feature-based accuracies (paper Table IX:
// averages 90.2/79.6/85.2; T 100/100/62.5; F 100/87.5/62.5).
func (s *Suite) TableIX() (string, error) {
	data, err := s.TableIXData()
	if err != nil {
		return "", err
	}
	return renderAttribution("Table IX: feature-based approach, 205 authors\n"+
		"paper: avg accuracy 90.2/79.6/85.2; target rate 100/100/62.5; ChatGPT-set rate 100/87.5/62.5", data, true), nil
}

func renderAttribution(title string, data []AttributionRow, withTarget bool) string {
	header := []string{"C"}
	for _, row := range data {
		if withTarget {
			header = append(header, fmt.Sprintf("%d", row.Year), "T", "F")
		} else {
			header = append(header, fmt.Sprintf("%d", row.Year), "N")
		}
	}
	var rows [][]string
	for c := 0; c < 8; c++ {
		row := []string{fmt.Sprintf("C%d", c+1)}
		for _, d := range data {
			if c >= len(d.Result.Folds) {
				row = append(row, "-", "-")
				if withTarget {
					row = append(row, "-")
				}
				continue
			}
			f := d.Result.Folds[c]
			row = append(row, pct(f.Accuracy))
			if withTarget {
				row = append(row, mark(f.TargetOK), mark(f.ChatGPTOK))
			} else {
				row = append(row, mark(f.ChatGPTOK))
			}
		}
		rows = append(rows, row)
	}
	avg := []string{"A"}
	for _, d := range data {
		avg = append(avg, pct(d.Result.MeanAccuracy))
		if withTarget {
			avg = append(avg, pct(d.Result.TargetRate), pct(d.Result.ChatGPTRate))
		} else {
			avg = append(avg, pct(d.Result.ChatGPTRate))
		}
	}
	rows = append(rows, avg)
	footer := ""
	for _, d := range data {
		if d.Result.TargetLabel != "" {
			footer += fmt.Sprintf("%d target label: %s (set size %d)  ", d.Year, d.Result.TargetLabel, d.Result.SetSize)
		}
	}
	return renderTable(title, header, rows, strings.TrimSpace(footer))
}

// TableXData evaluates binary classification for each year and the
// combined dataset; the combined entry carries year -1.
func (s *Suite) TableXData() ([]struct {
	Year   int
	Result *attrib.BinaryResult
}, error) {
	cfg := s.attribConfig()
	years := Years()
	out := make([]struct {
		Year   int
		Result *attrib.BinaryResult
	}, len(years))
	humans := make([]*corpus.Corpus, len(years))
	gpts := make([]*corpus.Corpus, len(years))
	// When the combined evaluation is already checkpointed, the
	// per-year corpora feeding it are not needed; a fully checkpointed
	// Table X then resumes without rebuilding any year.
	var combined *attrib.BinaryResult
	combinedCached, err := s.lookupUnit("binary:combined", &combined)
	if err != nil {
		return nil, err
	}
	err = s.forYears(func(i, y int) error {
		key := fmt.Sprintf("binary:year:%d", y)
		var res *attrib.BinaryResult
		cached, err := s.lookupUnit(key, &res)
		if err != nil {
			return err
		}
		if !cached {
			yd, err := s.Year(y)
			if err != nil {
				return err
			}
			res, err = attrib.EvaluateBinary(yd.Human, yd.Transformed, cfg)
			if err != nil {
				return fmt.Errorf("experiments: binary %d: %w", y, err)
			}
			if err := s.storeUnit(key, res); err != nil {
				return err
			}
		}
		out[i] = struct {
			Year   int
			Result *attrib.BinaryResult
		}{y, res}
		if !combinedCached {
			yd, err := s.Year(y)
			if err != nil {
				return err
			}
			humans[i] = yd.Human.Filter(func(sm corpus.Sample) bool { return keepCombined(sm.Challenge) })
			gpts[i] = yd.Transformed.Filter(func(sm corpus.Sample) bool { return keepCombined(sm.Challenge) })
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if !combinedCached {
		combined, err = attrib.EvaluateBinary(corpus.Merge(humans...), corpus.Merge(gpts...), cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: binary combined: %w", err)
		}
		if err := s.storeUnit("binary:combined", combined); err != nil {
			return nil, err
		}
	}
	out = append(out, struct {
		Year   int
		Result *attrib.BinaryResult
	}{-1, combined})
	return out, nil
}

// TableX renders the binary-classification accuracies (paper Table X:
// individual averages 90.9/89.7/93.8; combined 93.1).
func (s *Suite) TableX() (string, error) {
	data, err := s.TableXData()
	if err != nil {
		return "", err
	}
	header := []string{"Fold"}
	for _, d := range data {
		if d.Year < 0 {
			header = append(header, "Combined")
		} else {
			header = append(header, fmt.Sprintf("%d", d.Year))
		}
	}
	maxFolds := 0
	for _, d := range data {
		if len(d.Result.Folds) > maxFolds {
			maxFolds = len(d.Result.Folds)
		}
	}
	var rows [][]string
	for i := 0; i < maxFolds; i++ {
		row := []string{fmt.Sprintf("F%d", i+1)}
		for _, d := range data {
			if i < len(d.Result.Folds) {
				f := d.Result.Folds[i]
				row = append(row, fmt.Sprintf("%s=%s", f.Challenge, pct(f.Accuracy)))
			} else {
				row = append(row, "")
			}
		}
		rows = append(rows, row)
	}
	avg := []string{"A"}
	for _, d := range data {
		avg = append(avg, pct(d.Result.MeanAccuracy))
	}
	rows = append(rows, avg)
	return renderTable("Table X: binary classification accuracy\n"+
		"paper: individual averages 90.9/89.7/93.8; combined 93.1",
		header, rows, ""), nil
}
