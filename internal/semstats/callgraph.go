package semstats

import (
	"sort"
	"strings"

	"gptattr/internal/cppast"
)

// callGraph is the file-level call structure between the unit's own
// defined functions. Library calls are out of scope here — they show up
// in the expression-shape grams instead.
type callGraph struct {
	// callees maps each defined function to its distinct intra-file
	// callees, sorted.
	callees map[string][]string
	// fanIn counts distinct intra-file callers per function.
	fanIn map[string]int
	// recursive marks functions on a call cycle (including self-calls).
	recursive map[string]bool
	// edges is the total number of distinct caller->callee pairs.
	edges int
}

// buildCallGraph walks every function body collecting calls that
// resolve to functions defined (with a body) in the same unit.
func buildCallGraph(tu *cppast.TranslationUnit) *callGraph {
	defined := make(map[string]bool)
	var names []string // source order
	for _, f := range tu.Functions() {
		if f.Body != nil && !defined[f.Name] {
			defined[f.Name] = true
			names = append(names, f.Name)
		}
	}
	cg := &callGraph{
		callees:   make(map[string][]string, len(names)),
		fanIn:     make(map[string]int, len(names)),
		recursive: make(map[string]bool, len(names)),
	}
	for _, f := range tu.Functions() {
		if f.Body == nil || cg.callees[f.Name] != nil {
			continue
		}
		set := make(map[string]bool)
		cppast.Walk(f.Body, func(n cppast.Node, _ int) bool {
			call, ok := n.(*cppast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*cppast.Ident); ok {
				name := strings.TrimPrefix(id.Name, "std::")
				if defined[name] {
					set[name] = true
				}
			}
			return true
		})
		out := make([]string, 0, len(set))
		for callee := range set {
			out = append(out, callee)
		}
		sort.Strings(out)
		cg.callees[f.Name] = out
		cg.edges += len(out)
		for _, callee := range out {
			cg.fanIn[callee]++
		}
	}
	// A function is recursive when it can reach itself through at least
	// one call edge. The graphs are tiny (a handful of helpers), so a
	// DFS per function is plenty.
	for _, name := range names {
		cg.recursive[name] = reaches(cg.callees, name, name)
	}
	return cg
}

// reaches reports whether target is reachable from any callee of from
// (a self-edge counts immediately).
func reaches(callees map[string][]string, from, target string) bool {
	seen := make(map[string]bool)
	stack := append([]string(nil), callees[from]...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == target {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, callees[n]...)
	}
	return false
}
