package transform

import (
	"strings"
	"testing"
	"time"
)

const verifyOrig = `
#include <iostream>
using namespace std;
int main() {
    int n;
    cin >> n;
    int total = 0;
    for (int i = 0; i < n; i++) {
        total += i;
    }
    cout << total << endl;
    return 0;
}
`

func TestStaticVerifyEquivalentOnRenameAndLoopForm(t *testing.T) {
	rewritten := `
#include <iostream>
using namespace std;
int main() {
    int count;
    cin >> count;
    int acc = 0;
    int idx = 0;
    while (idx < count) {
        acc += idx;
        ++idx;
    }
    cout << acc << endl;
    return 0;
}
`
	if got := StaticVerify(verifyOrig, rewritten); got != StaticEquivalent {
		t.Fatalf("rename + for->while rewrite should be statically equivalent, got %v", got)
	}
}

func TestStaticVerifyUnknownOnSemanticChange(t *testing.T) {
	mutated := strings.Replace(verifyOrig, "total += i", "total -= i", 1)
	if got := StaticVerify(verifyOrig, mutated); got != StaticUnknown {
		t.Fatalf("operator mutation must fall through to the interpreter, got %v", got)
	}
}

func TestStaticVerifyRejectsOrphanedVariable(t *testing.T) {
	// A rewrite that drops the initializing read leaves total's first
	// use reachable from its uninitialized declaration.
	broken := `
#include <iostream>
using namespace std;
int main() {
    int n;
    cin >> n;
    int total;
    for (int i = 0; i < n; i++) {
        total += i;
    }
    cout << total << endl;
    return 0;
}
`
	if got := StaticVerify(verifyOrig, broken); got != StaticRejected {
		t.Fatalf("rewrite orphaning a variable must be rejected statically, got %v", got)
	}
	if err := Verify(verifyOrig, broken, []string{"3\n"}); err == nil ||
		!strings.Contains(err.Error(), "uninitialized") {
		t.Fatalf("Verify must surface the static rejection, got %v", err)
	}
}

func TestStaticVerifyNotRejectedWhenOriginalHasSameDefect(t *testing.T) {
	// Pre-existing diagnostics in the original must not condemn the
	// transformation: rejection keys on defects the rewrite introduced.
	dirty := `
#include <iostream>
using namespace std;
int main() {
    int x;
    cout << x << endl;
    return 0;
}
`
	if got := StaticVerify(dirty, dirty); got != StaticEquivalent {
		t.Fatalf("identical defective programs are still equivalent, got %v", got)
	}
}

func TestVerifySkipsInterpreterOnStaticMatch(t *testing.T) {
	before := Stats.InterpRuns.Load()
	hitsBefore := Stats.StaticHits.Load()
	if err := Verify(verifyOrig, verifyOrig, []string{"5\n"}); err != nil {
		t.Fatalf("identical programs must verify: %v", err)
	}
	if got := Stats.InterpRuns.Load(); got != before {
		t.Fatalf("static match must not run the interpreter (%d extra runs)", got-before)
	}
	if Stats.StaticHits.Load() != hitsBefore+1 {
		t.Fatal("static hit counter must advance")
	}
}

func TestVerifyStillCatchesOutputMismatch(t *testing.T) {
	changed := strings.Replace(verifyOrig, "total = 0", "total = 1", 1)
	if err := Verify(verifyOrig, changed, []string{"4\n"}); err == nil {
		t.Fatal("literal change must fail dynamic verification")
	}
}

func TestVerifyInfiniteLoopHitsStepBudget(t *testing.T) {
	looping := `
#include <iostream>
using namespace std;
int main() {
    int n;
    cin >> n;
    while (n >= 0) {
        n = 1;
    }
    cout << n << endl;
    return 0;
}
`
	done := make(chan error, 1)
	go func() { done <- Verify(verifyOrig, looping, []string{"2\n"}) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("non-terminating transformation must fail verification")
		}
		if !strings.Contains(err.Error(), "step budget") {
			t.Fatalf("want a step-budget error, got: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Verify stalled on a non-terminating program")
	}
}

func TestVerifyEmptyInputsStillRejected(t *testing.T) {
	// The no-inputs guard must stay ahead of the static screen: a
	// caller with no inputs has a configuration bug even when the
	// programs are identical.
	if err := Verify(verifyOrig, verifyOrig, nil); err == nil {
		t.Fatal("empty input list must be an error")
	}
}

func TestStatsSnapshotConsistent(t *testing.T) {
	checks, hits, rejects, runs := Stats.Snapshot()
	if checks < hits+rejects {
		t.Fatalf("checks=%d < hits=%d + rejects=%d", checks, hits, rejects)
	}
	if runs < 0 {
		t.Fatalf("negative interpreter runs: %d", runs)
	}
}
