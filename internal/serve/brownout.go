package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"gptattr/internal/stylometry"
)

// BrownoutConfig tunes the adaptive overload controller.
type BrownoutConfig struct {
	// Target is the acceptable standing queue delay (default 25ms).
	// CoDel-style: delay below Target is just burst absorption; the
	// minimum delay over a whole window staying above Target means a
	// standing queue — real overload, not a burst.
	Target time.Duration
	// Window is the decision interval (default 100ms). One level step
	// at most per window keeps transitions monotone and observable.
	Window time.Duration
	// Max caps how deep the controller will degrade (default
	// stylometry.MaxDegrade).
	Max stylometry.DegradeLevel
	// Logf, when non-nil, receives one line per level transition.
	Logf func(format string, args ...any)
	// now overrides the clock in tests.
	now func() time.Time
}

func (c BrownoutConfig) withDefaults() BrownoutConfig {
	if c.Target <= 0 {
		c.Target = 25 * time.Millisecond
	}
	if c.Window <= 0 {
		c.Window = 100 * time.Millisecond
	}
	if c.Max <= 0 || c.Max > stylometry.MaxDegrade {
		c.Max = stylometry.MaxDegrade
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Brownout is the adaptive admission controller that walks the degrade
// ladder under queue-delay pressure before the server ever sheds a
// request: feature families are cheaper to drop than answers. It
// follows CoDel's key idea — track the MINIMUM queue delay over a
// sliding window, because the minimum filters out bursts and exposes
// only the standing queue. A window whose minimum exceeds Target steps
// the forced degrade level up one; a window whose minimum clears
// Target/2 steps it back down one. Single steps per window make the
// level trajectory monotone between decisions, which the chaos tests
// pin.
//
// Shedding is unchanged: the batcher's bounded queue still answers
// ErrSaturated (429) on overflow — brownout just makes each queued
// request cheaper first, so saturation is reached later or not at all.
type Brownout struct {
	cfg BrownoutConfig

	// level is the current forced floor, read lock-free per batch.
	level atomic.Int32

	// stepsUp/stepsDown count transitions for /metrics.
	stepsUp   atomic.Uint64
	stepsDown atomic.Uint64

	mu        sync.Mutex
	windowEnd time.Time
	minDelay  time.Duration
	sampled   bool
}

// NewBrownout builds a controller starting at level 0 (full fidelity).
func NewBrownout(cfg BrownoutConfig) *Brownout {
	return &Brownout{cfg: cfg.withDefaults()}
}

// Level returns the current forced degrade floor (lock-free).
func (b *Brownout) Level() stylometry.DegradeLevel {
	return stylometry.DegradeLevel(b.level.Load())
}

// StepsUp reports how many times the controller has degraded a level.
func (b *Brownout) StepsUp() uint64 { return b.stepsUp.Load() }

// StepsDown reports how many times the controller has recovered a level.
func (b *Brownout) StepsDown() uint64 { return b.stepsDown.Load() }

// Observe feeds one request's queue delay (admission to batch start).
// The batcher calls it for every job in every batch, expired or not.
func (b *Brownout) Observe(delay time.Duration) {
	now := b.cfg.now()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.windowEnd.IsZero() {
		b.windowEnd = now.Add(b.cfg.Window)
	}
	if now.After(b.windowEnd) {
		if b.sampled {
			b.decideLocked()
		}
		b.windowEnd = now.Add(b.cfg.Window)
		b.sampled = false
	}
	if !b.sampled || delay < b.minDelay {
		b.minDelay = delay
	}
	b.sampled = true
}

// decideLocked applies one window's verdict. Callers hold mu.
func (b *Brownout) decideLocked() {
	cur := stylometry.DegradeLevel(b.level.Load())
	switch {
	case b.minDelay > b.cfg.Target && cur < b.cfg.Max:
		b.level.Store(int32(cur + 1))
		b.stepsUp.Add(1)
		b.logf("serve: brownout step up %v -> %v (min queue delay %v > target %v)",
			cur, cur+1, b.minDelay, b.cfg.Target)
	case b.minDelay <= b.cfg.Target/2 && cur > stylometry.DegradeNone:
		b.level.Store(int32(cur - 1))
		b.stepsDown.Add(1)
		b.logf("serve: brownout step down %v -> %v (min queue delay %v cleared)",
			cur, cur-1, b.minDelay)
	}
}

func (b *Brownout) logf(format string, args ...any) {
	if b.cfg.Logf != nil {
		b.cfg.Logf(format, args...)
	}
}
