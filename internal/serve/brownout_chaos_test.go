package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"gptattr/internal/fault"
	"gptattr/internal/semstats"
	"gptattr/internal/stylometry"
)

// brownoutTransitions maps every legal (single-step) controller
// transition log fragment to its direction. Any transition line NOT
// matching one of these is a jump — a monotonicity violation.
var brownoutTransitions = []string{
	"full -> no-semantic",
	"no-semantic -> surface",
	"surface -> no-semantic",
	"no-semantic -> full",
}

// TestBrownoutChaosSemstatsLatencyStorm is the serving half of the
// brownout acceptance test: a seeded latency storm on the semantic
// analysis pass (every per-function semstats pass pays injected
// latency) must never produce a hard failure — the controller detects
// the standing queue, sheds the semantic family, and every request
// still answers 200, some at degrade level > 0 scored by the fallback
// rungs. When the storm lifts, the controller walks back to full
// fidelity. All level transitions are single steps.
func TestBrownoutChaosSemstatsLatencyStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("trains ladder models and drives a latency storm")
	}
	defer fault.Disable()

	var (
		logMu sync.Mutex
		logs  []string
	)
	brown := NewBrownout(BrownoutConfig{
		Target: 5 * time.Millisecond,
		Window: 25 * time.Millisecond,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	})
	r, err := NewRegistry(ladderDir(t))
	if err != nil {
		t.Fatal(err)
	}
	// One worker and small batches so injected semantic latency turns
	// into real standing queue delay.
	b := NewBatcher(BatchConfig{
		MaxBatch: 4, MaxDelay: time.Millisecond, QueueDepth: 256,
		Workers: 1, Brownout: brown,
	})
	s, err := New(Config{Registry: r, Batcher: b, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); b.Close() })

	fault.Enable(4242)
	fault.Set(semstats.PointAnalyze, fault.Policy{
		Kind: fault.KindLatency, Latency: 3 * time.Millisecond, Prob: 1.0,
	})

	// More closed-loop clients than one batch can carry: the overflow
	// has to queue behind an in-flight batch, which is exactly the
	// standing delay the controller watches.
	const clients, perClient = 12, 6
	type answer struct {
		status int
		level  int
	}
	answers := make(chan answer, clients*perClient)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, _, err := tryPostJSON(ts.URL+"/v1/attribute",
					AttributeRequest{Source: sampleSource(t, c*perClient+i)})
				if err != nil {
					t.Errorf("client %d: transport error under storm: %v", c, err)
					answers <- answer{status: -1}
					continue
				}
				lvl := 0
				if v, perr := strconv.Atoi(resp.Header.Get(DegradeHeader)); perr == nil {
					lvl = v
				}
				answers <- answer{status: resp.StatusCode, level: lvl}
			}
		}(c)
	}
	wg.Wait()
	close(answers)

	degraded, total := 0, 0
	for a := range answers {
		total++
		if a.status != http.StatusOK {
			t.Errorf("status %d under semantic latency storm, want 200 (brownout must shed features, not requests)", a.status)
		}
		if a.level < 0 || a.level > int(stylometry.MaxDegrade) {
			t.Errorf("degrade level %d outside the ladder", a.level)
		}
		if a.level > 0 {
			degraded++
		}
	}
	if total != clients*perClient {
		t.Fatalf("%d answers for %d requests", total, clients*perClient)
	}
	if brown.StepsUp() == 0 {
		t.Fatal("controller never stepped up under a sustained semantic latency storm")
	}
	if degraded == 0 {
		t.Fatal("no response was served degraded under the storm")
	}
	t.Logf("storm: %d/%d answers degraded, %d steps up", degraded, total, brown.StepsUp())

	// Storm lifts: the controller must walk back to full fidelity and
	// answer level 0 again (bounded wait — recovery needs one healthy
	// window per level).
	fault.Disable()
	deadline := time.Now().Add(15 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		resp, body, err := tryPostJSON(ts.URL+"/v1/attribute",
			AttributeRequest{Source: sampleSource(t, 2)})
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-storm status %d: %s", resp.StatusCode, body)
		}
		if resp.Header.Get(DegradeHeader) == "0" && brown.Level() == stylometry.DegradeNone {
			var ar AttributeResponse
			if err := json.Unmarshal(body, &ar); err != nil || ar.Author == "" {
				t.Fatalf("post-storm full-fidelity answer unusable: %v %s", err, body)
			}
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatalf("controller never recovered to level 0 after the storm (level %v, %d down-steps)",
			brown.Level(), brown.StepsDown())
	}

	// Every logged transition is one of the four legal single steps.
	logMu.Lock()
	defer logMu.Unlock()
	for _, line := range logs {
		legal := false
		for _, tr := range brownoutTransitions {
			if strings.Contains(line, tr) {
				legal = true
				break
			}
		}
		if !legal {
			t.Errorf("non-monotone controller transition: %q", line)
		}
	}
}

// TestDegradedExtractionWorkerCountInvariant pins the determinism half
// of the brownout contract: degraded batch extraction is byte-identical
// at any worker count, for every forced level.
func TestDegradedExtractionWorkerCountInvariant(t *testing.T) {
	sources := make([]string, 10)
	for i := range sources {
		sources[i] = sampleSource(t, i)
	}
	ctxs := make([]context.Context, len(sources))
	for i := range ctxs {
		ctxs[i] = context.Background()
	}
	for lvl := stylometry.DegradeNone; lvl <= stylometry.MaxDegrade; lvl++ {
		ref, refLevels, refErrs := stylometry.ExtractEachDegraded(ctxs, sources, lvl,
			stylometry.ExtractConfig{Workers: 1})
		for _, workers := range []int{2, 4} {
			got, gotLevels, gotErrs := stylometry.ExtractEachDegraded(ctxs, sources, lvl,
				stylometry.ExtractConfig{Workers: workers})
			if !reflect.DeepEqual(refLevels, gotLevels) {
				t.Fatalf("level %v: degrade levels differ between workers=1 and workers=%d", lvl, workers)
			}
			for i := range sources {
				if (refErrs[i] == nil) != (gotErrs[i] == nil) {
					t.Fatalf("level %v source %d: error mismatch across worker counts", lvl, i)
				}
				if !reflect.DeepEqual(ref[i], got[i]) {
					t.Fatalf("level %v source %d: features differ between workers=1 and workers=%d", lvl, i, workers)
				}
			}
		}
	}
}
