package arena

import "testing"

// TestSearchInnerLoopAllocFree pins the per-iteration MCTS hot path —
// UCT descent, sequence reconstruction, backpropagation, and the
// no-op expansion of a saturated node — at zero allocations: the
// engine's scratch buffers absorb all of it.
func TestSearchInnerLoopAllocFree(t *testing.T) {
	cfg := Config{}.withDefaults()
	e := &engine{cfg: cfg, tried: make([]bool, len(cfg.Actions))}
	root := &node{action: -1}
	for ai := range cfg.Actions {
		root.children = append(root.children,
			&node{parent: root, action: ai, depth: 1, visits: 1, value: 0.5})
	}
	root.visits = len(cfg.Actions)
	full := root.children[0]
	for ai := range cfg.Actions {
		full.children = append(full.children,
			&node{parent: full, action: ai, depth: 2, visits: 1, value: 0.25})
	}
	full.visits = len(cfg.Actions)

	allocs := testing.AllocsPerRun(200, func() {
		n := e.selectNode(root)
		if len(e.seqOf(n)) == 0 {
			t.Fatal("selection never left the root")
		}
		if e.expand(full) == full && len(full.children) != len(cfg.Actions) {
			t.Fatal("expand lost children")
		}
		backprop(n, 0.5)
	})
	if allocs != 0 {
		t.Fatalf("search inner loop allocates %.1f per iteration, want 0", allocs)
	}
}
