package stylometry

import "testing"

// TestVectorIntoAllocs pins VectorInto's allocation-free contract: the
// serving path reuses one row buffer across requests and vectorization
// must not allocate per call.
func TestVectorIntoAllocs(t *testing.T) {
	docs := []Features{
		{"WordUnigram:for": 2, "WordUnigram:int": 1, "LineLenAvg": 14.5},
		{"WordUnigram:for": 1, "WordUnigram:while": 3, "LineLenAvg": 22.0},
		{"WordUnigram:int": 4, "LeafTF:x": 2, "LineLenAvg": 9.1},
	}
	v := NewVectorizer(docs, VectorizerConfig{MinDocFreq: 1, UseTFIDF: true})
	row := make([]float64, v.NumFeatures())
	if a := testing.AllocsPerRun(100, func() { v.VectorInto(docs[0], row) }); a > 0 {
		t.Errorf("VectorInto allocates %.2f per call, want 0", a)
	}
}

// TestVectorIntoSizeMismatchPanics documents the misuse guard.
func TestVectorIntoSizeMismatchPanics(t *testing.T) {
	v := NewVectorizer([]Features{{"LineLenAvg": 1}}, VectorizerConfig{})
	defer func() {
		if recover() == nil {
			t.Fatal("VectorInto with short row did not panic")
		}
	}()
	v.VectorInto(Features{}, make([]float64, v.NumFeatures()+1))
}
