package codegen

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"gptattr/internal/challenge"
	"gptattr/internal/cppast"
	"gptattr/internal/cppcheck"
	"gptattr/internal/cppinterp"
	"gptattr/internal/ir"
	"gptattr/internal/style"
)

// TestEveryChallengeEveryProfileShape is the core substrate-correctness
// test: for every challenge and a spread of random author profiles, the
// rendered C++ executed by cppinterp must produce byte-identical output
// to the IR evaluator's ground truth.
func TestEveryChallengeEveryProfileShape(t *testing.T) {
	profiles := make([]style.Profile, 0, 12)
	rng := rand.New(rand.NewSource(2024))
	for i := 0; i < 12; i++ {
		profiles = append(profiles, style.Random(fmt.Sprintf("Author%02d", i), rng))
	}
	for _, c := range challenge.All() {
		c := c
		t.Run(c.Key(), func(t *testing.T) {
			run, err := ir.Synthesize(c.Prog, 5, rand.New(rand.NewSource(7)))
			if err != nil {
				t.Fatalf("Synthesize: %v", err)
			}
			for pi, prof := range profiles {
				src := Render(c.Prog, prof, int64(pi))
				got, err := cppinterp.Run(src, run.Input)
				if err != nil {
					t.Fatalf("profile %d (%s): interpreter error: %v\n--- source ---\n%s",
						pi, prof.Name, err, src)
				}
				if got != run.Output {
					t.Fatalf("profile %d (%s): output mismatch\n got: %q\nwant: %q\n--- source ---\n%s",
						pi, prof.Name, got, run.Output, src)
				}
			}
		})
	}
}

func TestRenderDeterministic(t *testing.T) {
	c, err := challenge.Get(2017, "C1")
	if err != nil {
		t.Fatal(err)
	}
	prof := style.Random("A", rand.New(rand.NewSource(1)))
	a := Render(c.Prog, prof, 5)
	b := Render(c.Prog, prof, 5)
	if a != b {
		t.Error("Render not deterministic for equal inputs")
	}
}

func TestRenderFileJitterVariesOnlyCosmetics(t *testing.T) {
	c, err := challenge.Get(2017, "C1")
	if err != nil {
		t.Fatal(err)
	}
	prof := style.Random("A", rand.New(rand.NewSource(3)))
	prof.Comments = style.CommentLine
	prof.CommentDensity = 0.9
	prof.BlankLineDensity = 0.5
	a := Render(c.Prog, prof, 1)
	b := Render(c.Prog, prof, 2)
	if a == b {
		t.Skip("file seeds produced identical files (possible but unlikely); skipping")
	}
	// Behaviour must be unchanged.
	run, err := ir.Synthesize(c.Prog, 3, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	outA, err := cppinterp.Run(a, run.Input)
	if err != nil {
		t.Fatalf("run a: %v", err)
	}
	outB, err := cppinterp.Run(b, run.Input)
	if err != nil {
		t.Fatalf("run b: %v", err)
	}
	if outA != outB || outA != run.Output {
		t.Error("file jitter changed program behaviour")
	}
}

func TestRenderStyleAxesVisible(t *testing.T) {
	c, err := challenge.Get(2017, "C2")
	if err != nil {
		t.Fatal(err)
	}
	base := style.Profile{
		Name:              "base",
		Naming:            style.NamingCamel,
		Indent:            style.Indent{Width: 4},
		Brace:             style.BraceKR,
		IO:                style.IOStreams,
		Loop:              style.LoopFor,
		Decomp:            style.DecompInline,
		Comments:          style.CommentNone,
		UsingNamespaceStd: true,
		SpaceAroundOps:    true,
		SpaceAfterComma:   true,
		BracesAlways:      true,
		ReturnZero:        true,
	}

	t.Run("io stdio", func(t *testing.T) {
		p := base
		p.IO = style.IOStdio
		src := Render(c.Prog, p, 0)
		if !strings.Contains(src, "scanf(") || !strings.Contains(src, "printf(") {
			t.Errorf("stdio profile lacks scanf/printf:\n%s", src)
		}
		if strings.Contains(src, "cin") {
			t.Errorf("stdio profile uses cin:\n%s", src)
		}
	})
	t.Run("io streams", func(t *testing.T) {
		src := Render(c.Prog, base, 0)
		if !strings.Contains(src, "cin >>") || !strings.Contains(src, "cout <<") {
			t.Errorf("streams profile lacks cin/cout:\n%s", src)
		}
	})
	t.Run("allman braces", func(t *testing.T) {
		p := base
		p.Brace = style.BraceAllman
		src := Render(c.Prog, p, 0)
		if !strings.Contains(src, "int main()\n{") {
			t.Errorf("allman profile keeps brace on same line:\n%s", src)
		}
	})
	t.Run("tabs", func(t *testing.T) {
		p := base
		p.Indent = style.Indent{UseTabs: true}
		src := Render(c.Prog, p, 0)
		if !strings.Contains(src, "\n\t") {
			t.Errorf("tab profile has no tab indentation:\n%s", src)
		}
	})
	t.Run("snake naming", func(t *testing.T) {
		p := base
		p.Naming = style.NamingSnake
		src := Render(c.Prog, p, 0)
		if !strings.Contains(src, "num_cases") && !strings.Contains(src, "test_cases") &&
			!strings.Contains(src, "case_num") && !strings.Contains(src, "case_id") {
			t.Errorf("snake profile shows no snake_case names:\n%s", src)
		}
	})
	t.Run("helper decomposition", func(t *testing.T) {
		p := base
		p.Decomp = style.DecompSolveValue
		src := Render(c.Prog, p, 0)
		if !strings.Contains(src, "solve") {
			t.Errorf("solve-value profile has no helper:\n%s", src)
		}
		fns := strings.Count(src, "\n}")
		if fns < 2 {
			t.Errorf("expected two functions, source:\n%s", src)
		}
	})
	t.Run("typedef ll", func(t *testing.T) {
		p := base
		p.TypedefLL = true
		src := Render(c.Prog, p, 0)
		if !strings.Contains(src, "typedef long long ll;") || !strings.Contains(src, "ll ") {
			t.Errorf("typedef profile lacks ll usage:\n%s", src)
		}
	})
	t.Run("bits header", func(t *testing.T) {
		p := base
		p.BitsHeader = true
		src := Render(c.Prog, p, 0)
		if !strings.Contains(src, "<bits/stdc++.h>") {
			t.Errorf("bits profile lacks bits header:\n%s", src)
		}
		if strings.Contains(src, "<iostream>") {
			t.Errorf("bits profile also includes iostream:\n%s", src)
		}
	})
	t.Run("no using namespace", func(t *testing.T) {
		p := base
		p.UsingNamespaceStd = false
		src := Render(c.Prog, p, 0)
		if strings.Contains(src, "using namespace std") {
			t.Errorf("profile still imports namespace:\n%s", src)
		}
		if !strings.Contains(src, "std::cin") {
			t.Errorf("profile does not qualify std::cin:\n%s", src)
		}
	})
	t.Run("tight spacing", func(t *testing.T) {
		p := base
		p.SpaceAroundOps = false
		src := Render(c.Prog, p, 0)
		if !strings.Contains(src, "=0") && !strings.Contains(src, "=1") {
			t.Errorf("tight profile still spaces operators:\n%s", src)
		}
	})
	t.Run("while case loop", func(t *testing.T) {
		p := base
		p.Loop = style.LoopWhile
		src := Render(c.Prog, p, 0)
		if !strings.Contains(src, "while (") {
			t.Errorf("while profile has no while loop:\n%s", src)
		}
	})
	t.Run("comments", func(t *testing.T) {
		p := base
		p.Comments = style.CommentLine
		p.CommentDensity = 1.0
		src := Render(c.Prog, p, 0)
		if !strings.Contains(src, "// ") {
			t.Errorf("comment profile produced no comments:\n%s", src)
		}
		p.Comments = style.CommentBlock
		src = Render(c.Prog, p, 0)
		if !strings.Contains(src, "/* ") {
			t.Errorf("block-comment profile produced no block comments:\n%s", src)
		}
	})
	t.Run("return zero", func(t *testing.T) {
		p := base
		p.ReturnZero = false
		src := Render(c.Prog, p, 0)
		if strings.Contains(src, "return 0;") {
			t.Errorf("no-return profile still returns 0:\n%s", src)
		}
	})
}

// TestRenderedSourceDistinguishesAuthors checks that two different
// profiles produce textually distinct sources for the same challenge —
// the property the whole attribution pipeline depends on.
func TestRenderedSourceDistinguishesAuthors(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	c, err := challenge.Get(2018, "C5")
	if err != nil {
		t.Fatal(err)
	}
	a := Render(c.Prog, style.Random("A", rng), 0)
	b := Render(c.Prog, style.Random("B", rng), 0)
	if a == b {
		t.Error("different profiles rendered identical sources")
	}
}

func TestDecompositionsBehaviourallyEqual(t *testing.T) {
	for _, decomp := range []style.Decomp{style.DecompInline, style.DecompSolvePrint, style.DecompSolveValue} {
		for _, c := range challenge.All()[:8] {
			prof := style.Random("X", rand.New(rand.NewSource(8)))
			prof.Decomp = decomp
			run, err := ir.Synthesize(c.Prog, 3, rand.New(rand.NewSource(4)))
			if err != nil {
				t.Fatal(err)
			}
			src := Render(c.Prog, prof, 0)
			got, err := cppinterp.Run(src, run.Input)
			if err != nil {
				t.Fatalf("%s decomp %d: %v\n%s", c.Key(), decomp, err, src)
			}
			if got != run.Output {
				t.Fatalf("%s decomp %d: mismatch\n got %q\nwant %q\n%s", c.Key(), decomp, got, run.Output, src)
			}
		}
	}
}

// TestEveryRenderingDiagnosticClean makes the static analyzer a
// standing correctness oracle for the generator: every author x
// challenge rendering must produce zero cppcheck findings. A finding
// here means either the generator emitted defective code or the
// analyzer grew a false positive — both are bugs worth stopping on.
func TestEveryRenderingDiagnosticClean(t *testing.T) {
	profiles := make([]style.Profile, 0, 12)
	rng := rand.New(rand.NewSource(2024))
	for i := 0; i < 12; i++ {
		profiles = append(profiles, style.Random(fmt.Sprintf("Author%02d", i), rng))
	}
	for _, c := range challenge.All() {
		c := c
		t.Run(c.Key(), func(t *testing.T) {
			for pi, prof := range profiles {
				src := Render(c.Prog, prof, int64(pi))
				tu, err := cppast.Parse(src)
				if err != nil {
					t.Fatalf("profile %d (%s): parse: %v\n--- source ---\n%s", pi, prof.Name, err, src)
				}
				if ds := cppcheck.Analyze(tu); len(ds) > 0 {
					t.Fatalf("profile %d (%s): %d finding(s): %v\n--- source ---\n%s",
						pi, prof.Name, len(ds), ds, src)
				}
			}
		})
	}
}
