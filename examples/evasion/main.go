// Evasion study: measure how often ChatGPT-style transformation flips
// an authorship model's verdict, comparing the paper's NCT and CT
// protocols — a miniature of the paper's RQ1 experiment, with every
// transformation verified behaviour-preserving.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"gptattr/attribution"
	"gptattr/internal/challenge"
	"gptattr/internal/codegen"
	"gptattr/internal/ir"
	"gptattr/internal/style"
)

const (
	numAuthors = 8
	rounds     = 10
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "evasion:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(3))
	corpus := map[string][]string{}
	var victim style.Profile
	for i := 0; i < numAuthors; i++ {
		name := fmt.Sprintf("author-%d", i+1)
		prof := style.Random(name, rng)
		if i == 0 {
			victim = prof
		}
		for _, ch := range challenge.ByYear(2017) {
			corpus[name] = append(corpus[name], codegen.Render(ch.Prog, prof, rng.Int63()))
		}
	}
	model, err := attribution.TrainAuthorship(corpus, attribution.Params{Trees: 60, Seed: 2})
	if err != nil {
		return err
	}
	fmt.Printf("attribution model over %d authors; victim = author-1\n\n", numAuthors)

	tr := attribution.NewTransformer(attribution.TransformerConfig{Seed: 5})

	for _, mode := range []string{"NCT", "CT"} {
		evaded, verified := 0, 0
		for _, ch := range challenge.ByYear(2018)[:4] {
			src := codegen.Render(ch.Prog, victim, rng.Int63())
			run, err := ir.Synthesize(ch.Prog, 3, rand.New(rand.NewSource(9)))
			if err != nil {
				return err
			}
			var variants []string
			if mode == "NCT" {
				variants, err = tr.NCT(src, rounds, run.Input)
			} else {
				variants, err = tr.CT(src, rounds, run.Input)
			}
			if err != nil {
				return err
			}
			for _, v := range variants {
				verified++
				pred, err := model.Predict(v)
				if err != nil {
					return err
				}
				if pred != "author-1" {
					evaded++
				}
			}
		}
		fmt.Printf("%s: %d/%d behaviour-verified variants misattributed (%.0f%% evasion)\n",
			mode, evaded, verified, 100*float64(evaded)/float64(verified))
	}
	fmt.Println("\n(the paper reports ChatGPT transformations can reliably change the")
	fmt.Println(" predicted author while preserving functionality — RQ1)")
	return nil
}
