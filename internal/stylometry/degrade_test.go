package stylometry

import (
	"context"
	"sync"
	"testing"
	"time"

	"gptattr/internal/fault"
	"gptattr/internal/semstats"
)

// TestDegradedEqualsFilteredFull pins the ladder's core invariant: a
// vector extracted at level N is bit-identical to the full vector
// filtered to that level's families. This is what makes family-subset
// oracles correct on degraded vectors — they score exactly the vectors
// they were trained on.
func TestDegradedEqualsFilteredFull(t *testing.T) {
	for _, src := range []string{sampleA, sampleB} {
		full, err := Extract(src)
		if err != nil {
			t.Fatalf("Extract: %v", err)
		}
		for lvl := DegradeNone; lvl <= MaxDegrade; lvl++ {
			got, gotLvl, err := ExtractDegraded(context.Background(), src, lvl)
			if err != nil {
				t.Fatalf("ExtractDegraded(%v): %v", lvl, err)
			}
			if gotLvl != lvl {
				t.Fatalf("ExtractDegraded(%v) reported level %v", lvl, gotLvl)
			}
			want := FilterFamilies(full, lvl.Families())
			if len(got) != len(want) {
				t.Errorf("level %v: %d features, want %d", lvl, len(got), len(want))
			}
			for name, v := range want {
				if got[name] != v {
					t.Errorf("level %v: %s = %v, want %v", lvl, name, got[name], v)
				}
			}
			for name := range got {
				if !lvl.Keeps(Family(name)) {
					t.Errorf("level %v: feature %s from shed family %v survived", lvl, name, Family(name))
				}
			}
		}
	}
}

// TestDegradeLadderNested pins that each level's families are a strict
// subset of the previous level's — the property the fallback oracles
// rely on (a more-degraded model's vocabulary exists at every less
// degraded level).
func TestDegradeLadderNested(t *testing.T) {
	for lvl := DegradeNoSemantic; lvl <= MaxDegrade; lvl++ {
		prev := (lvl - 1).Families()
		cur := lvl.Families()
		if len(cur) >= len(prev) {
			t.Fatalf("level %v has %d families, previous has %d — not shrinking", lvl, len(cur), len(prev))
		}
		for _, fam := range cur {
			if !(lvl - 1).Keeps(fam) {
				t.Fatalf("level %v keeps %v which level %v sheds — not nested", lvl, fam, lvl-1)
			}
		}
	}
}

// TestExtractDegradedBudgetExpiry drives a latency storm on the
// semantic pass boundary: the injected sleep exceeds the budget, so
// the extractor must return a valid no-semantic vector (never an
// error, never a partial semantic family).
func TestExtractDegradedBudgetExpiry(t *testing.T) {
	fault.Enable(42)
	defer fault.Disable()
	fault.Set(semstats.PointAnalyze, fault.Policy{Kind: fault.KindLatency, Latency: 10 * time.Second})

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	f, lvl, err := ExtractDegraded(ctx, sampleB, DegradeNone)
	if err != nil {
		t.Fatalf("ExtractDegraded under storm: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("extraction blocked %v under a budget of 50ms", elapsed)
	}
	if lvl != DegradeNoSemantic {
		t.Fatalf("level = %v, want %v", lvl, DegradeNoSemantic)
	}
	for name := range f {
		if Family(name) == FamilySemantic {
			t.Fatalf("partial semantic feature %s survived budget expiry", name)
		}
	}
	// And the surviving families are still exactly the full extraction's.
	fault.Disable()
	full, err := Extract(sampleB)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	want := FilterFamilies(full, DegradeNoSemantic.Families())
	if len(f) != len(want) {
		t.Fatalf("degraded vector has %d features, want %d", len(f), len(want))
	}
	for name, v := range want {
		if f[name] != v {
			t.Fatalf("degraded %s = %v, want %v", name, f[name], v)
		}
	}
}

// TestExtractDegradedCacheDiscipline pins the cache contract: degraded
// vectors are never cached; cache hits answer full vectors even under
// a forced floor.
func TestExtractDegradedCacheDiscipline(t *testing.T) {
	cache := &mapCache{m: make(map[string]Features)}

	// A forced-surface extraction must not populate the cache.
	out, levels, errs := ExtractEachDegraded(nil, []string{sampleA}, DegradeSurface, ExtractConfig{Workers: 1, Cache: cache})
	if errs[0] != nil {
		t.Fatalf("ExtractEachDegraded: %v", errs[0])
	}
	if levels[0] != DegradeSurface {
		t.Fatalf("level = %v, want %v", levels[0], DegradeSurface)
	}
	if len(cache.m) != 0 {
		t.Fatalf("degraded vector was cached (%d entries)", len(cache.m))
	}
	for name := range out[0] {
		if fam := Family(name); fam == FamilySemantic || fam == FamilySyntactic {
			t.Fatalf("surface vector carries %v feature %s", fam, name)
		}
	}

	// A full extraction caches; a later forced-degraded request then
	// hits and gets the full vector back at level 0.
	if _, levels, errs = ExtractEachDegraded(nil, []string{sampleA}, DegradeNone, ExtractConfig{Workers: 1, Cache: cache}); errs[0] != nil {
		t.Fatalf("full extraction: %v", errs[0])
	}
	if levels[0] != DegradeNone || len(cache.m) != 1 {
		t.Fatalf("full extraction: level %v, %d cached", levels[0], len(cache.m))
	}
	_, levels, errs = ExtractEachDegraded(nil, []string{sampleA}, DegradeSurface, ExtractConfig{Workers: 1, Cache: cache})
	if errs[0] != nil || levels[0] != DegradeNone {
		t.Fatalf("cache hit under forced floor: level %v err %v, want level 0", levels[0], errs[0])
	}
}

// TestDegradeLevelStrings covers the header/log rendering.
func TestDegradeLevelStrings(t *testing.T) {
	cases := map[DegradeLevel]string{
		DegradeNone:       "full",
		DegradeNoSemantic: "no-semantic",
		DegradeSurface:    "surface",
	}
	for lvl, want := range cases {
		if got := lvl.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(lvl), got, want)
		}
	}
	if DegradeLevel(9).Clamp() != MaxDegrade || DegradeLevel(-3).Clamp() != DegradeNone {
		t.Error("Clamp out of range")
	}
}

// mapCache is a minimal FeatureCache for tests.
type mapCache struct {
	mu sync.Mutex
	m  map[string]Features
}

func (c *mapCache) Get(src string) (Features, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.m[src]
	return f, ok
}

func (c *mapCache) Put(src string, f Features) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[src] = f
}
