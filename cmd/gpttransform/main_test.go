package main

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"gptattr/internal/challenge"
	"gptattr/internal/codegen"
	"gptattr/internal/ir"
	"gptattr/internal/style"
)

func writeSolution(t *testing.T) (srcPath, stdinPath string) {
	t.Helper()
	ch, err := challenge.Get(2017, "C2")
	if err != nil {
		t.Fatal(err)
	}
	prof := style.Random("X", rand.New(rand.NewSource(2)))
	src := codegen.Render(ch.Prog, prof, 1)
	run, err := ir.Synthesize(ch.Prog, 3, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	srcPath = filepath.Join(dir, "sol.cc")
	stdinPath = filepath.Join(dir, "input.txt")
	if err := os.WriteFile(srcPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(stdinPath, []byte(run.Input), 0o644); err != nil {
		t.Fatal(err)
	}
	return srcPath, stdinPath
}

func TestRunNCTToDir(t *testing.T) {
	srcPath, stdinPath := writeSolution(t)
	out := t.TempDir()
	err := run([]string{"-in", srcPath, "-mode", "nct", "-rounds", "3", "-stdin", stdinPath, "-out", out})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	files, err := filepath.Glob(filepath.Join(out, "*.cc"))
	if err != nil || len(files) != 3 {
		t.Fatalf("wrote %d variants (err %v), want 3", len(files), err)
	}
}

func TestRunCTStdout(t *testing.T) {
	srcPath, _ := writeSolution(t)
	if err := run([]string{"-in", srcPath, "-mode", "ct", "-rounds", "2"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -in accepted")
	}
	srcPath, _ := writeSolution(t)
	if err := run([]string{"-in", srcPath, "-mode", "zigzag"}); err == nil {
		t.Error("bad mode accepted")
	}
	if err := run([]string{"-in", "/nonexistent.cc"}); err == nil {
		t.Error("missing input file accepted")
	}
}
