package arena

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// blockingRun returns a RunFunc that signals each start and blocks
// until released (or its context dies, returning a truncated result).
func blockingRun() (run RunFunc, started chan string, release chan struct{}) {
	started = make(chan string, 64)
	release = make(chan struct{})
	run = func(ctx context.Context, spec JobSpec) (*Result, error) {
		started <- spec.Source
		select {
		case <-release:
			return &Result{Success: true, Source: spec.Source}, nil
		case <-ctx.Done():
			return &Result{Source: spec.Source, Truncated: true}, nil
		}
	}
	return run, started, release
}

func TestManagerRunsJobs(t *testing.T) {
	m := NewManager(ManagerConfig{MaxRunning: 2, MaxQueued: 4}, func(ctx context.Context, spec JobSpec) (*Result, error) {
		return &Result{Success: true, Source: spec.Source}, nil
	})
	defer m.Close()
	id, err := m.Submit(JobSpec{Source: "s1", TrueAuthor: "A001"})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone || st.Result == nil || st.Result.Source != "s1" {
		t.Fatalf("job status: %+v", st)
	}
	if got, err := m.Status(id); err != nil || got.State != JobDone {
		t.Fatalf("poll after done: %+v %v", got, err)
	}
}

// TestManagerExactSaturation pins the admission contract: with
// MaxRunning searches live and MaxQueued more accepted, submit N+1
// is refused with ErrSaturated and NOTHING ELSE is disturbed.
func TestManagerExactSaturation(t *testing.T) {
	run, started, release := blockingRun()
	m := NewManager(ManagerConfig{MaxRunning: 2, MaxQueued: 3}, run)
	defer m.Close()

	var ids []string
	// Fill the running slots and wait until both searches are live.
	for i := 0; i < 2; i++ {
		id, err := m.Submit(JobSpec{Source: fmt.Sprintf("r%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("workers never picked up the jobs")
		}
	}
	// Fill the queue exactly.
	for i := 0; i < 3; i++ {
		id, err := m.Submit(JobSpec{Source: fmt.Sprintf("q%d", i)})
		if err != nil {
			t.Fatalf("queue slot %d refused: %v", i, err)
		}
		ids = append(ids, id)
	}
	// Exact N+1: the next submit must be refused.
	if _, err := m.Submit(JobSpec{Source: "overflow"}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("overflow submit: %v, want ErrSaturated", err)
	}
	// Releasing the searches drains everything; every accepted job
	// completes.
	close(release)
	for _, id := range ids {
		st, err := m.Wait(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != JobDone {
			t.Fatalf("%s: state %s", id, st.State)
		}
	}
	// Capacity is free again.
	if _, err := m.Submit(JobSpec{Source: "after"}); err != nil {
		t.Fatalf("post-drain submit refused: %v", err)
	}
}

func TestManagerWaitDeadline(t *testing.T) {
	run, started, release := blockingRun()
	m := NewManager(ManagerConfig{MaxRunning: 1, MaxQueued: 1}, run)
	defer func() { close(release); m.Close() }()
	id, err := m.Submit(JobSpec{Source: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := m.Wait(ctx, id); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait on a running job: %v, want deadline exceeded", err)
	}
	// The job itself is unharmed.
	if st, err := m.Status(id); err != nil || st.State.Terminal() {
		t.Fatalf("job state after waiter timeout: %+v %v", st, err)
	}
}

// TestManagerGracefulDrainMidSearch proves Close cancels live
// searches and every accepted job still reaches a terminal state.
func TestManagerGracefulDrainMidSearch(t *testing.T) {
	run, started, release := blockingRun()
	defer close(release)
	m := NewManager(ManagerConfig{MaxRunning: 1, MaxQueued: 2}, run)
	running, err := m.Submit(JobSpec{Source: "mid-search"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := m.Submit(JobSpec{Source: "still-queued"})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() { m.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not drain")
	}
	// The mid-search job was cancelled into a truncated best-so-far
	// answer — answered, not dropped.
	st, err := m.Status(running)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone || st.Result == nil || !st.Result.Truncated {
		t.Fatalf("mid-search job after drain: %+v", st)
	}
	// The queued job was cancelled before starting.
	st, err = m.Status(queued)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobCanceled {
		t.Fatalf("queued job after drain: %+v", st)
	}
	// Submits after Close are refused with the shutdown sentinel.
	if _, err := m.Submit(JobSpec{Source: "late"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close submit: %v, want ErrClosed", err)
	}
}

func TestManagerJobTimeoutTruncates(t *testing.T) {
	run, _, release := blockingRun()
	defer close(release)
	m := NewManager(ManagerConfig{MaxRunning: 1, MaxQueued: 1, JobTimeout: 30 * time.Millisecond}, run)
	defer m.Close()
	id, err := m.Submit(JobSpec{Source: "budgeted"})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone || st.Result == nil || !st.Result.Truncated {
		t.Fatalf("timed-out job: %+v", st)
	}
}

func TestManagerFailedJob(t *testing.T) {
	m := NewManager(ManagerConfig{}, func(ctx context.Context, spec JobSpec) (*Result, error) {
		return nil, fmt.Errorf("oracle exploded")
	})
	defer m.Close()
	id, err := m.Submit(JobSpec{Source: "s"})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobFailed || st.Err == "" {
		t.Fatalf("failed job: %+v", st)
	}
}

func TestManagerUnknownJob(t *testing.T) {
	m := NewManager(ManagerConfig{}, func(ctx context.Context, spec JobSpec) (*Result, error) {
		return &Result{}, nil
	})
	defer m.Close()
	if _, err := m.Status("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Status: %v", err)
	}
	if _, err := m.Wait(context.Background(), "nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Wait: %v", err)
	}
}

func TestManagerEvictsOldTerminalJobs(t *testing.T) {
	m := NewManager(ManagerConfig{MaxRunning: 1, MaxQueued: 8, MaxRetained: 2},
		func(ctx context.Context, spec JobSpec) (*Result, error) {
			return &Result{Source: spec.Source}, nil
		})
	defer m.Close()
	var ids []string
	for i := 0; i < 4; i++ {
		id, err := m.Submit(JobSpec{Source: fmt.Sprintf("s%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if _, err := m.Status(ids[0]); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("oldest job not evicted: %v", err)
	}
	if _, err := m.Status(ids[3]); err != nil {
		t.Fatalf("newest job evicted: %v", err)
	}
	active, finished := m.Stats()
	if active != 0 || finished != 2 {
		t.Fatalf("Stats = %d active %d finished, want 0/2", active, finished)
	}
}

// TestManagerConcurrentSubmitters hammers Submit/Wait under race.
func TestManagerConcurrentSubmitters(t *testing.T) {
	m := NewManager(ManagerConfig{MaxRunning: 4, MaxQueued: 16},
		func(ctx context.Context, spec JobSpec) (*Result, error) {
			return &Result{Source: spec.Source}, nil
		})
	defer m.Close()
	var wg sync.WaitGroup
	var okCount, satCount int64
	var mu sync.Mutex
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				id, err := m.Submit(JobSpec{Source: fmt.Sprintf("g%d-%d", g, i)})
				if errors.Is(err, ErrSaturated) {
					mu.Lock()
					satCount++
					mu.Unlock()
					continue
				}
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				if _, err := m.Wait(context.Background(), id); err != nil {
					t.Errorf("wait: %v", err)
					return
				}
				mu.Lock()
				okCount++
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if okCount == 0 {
		t.Fatal("no jobs completed")
	}
	t.Logf("completed %d, saturated %d", okCount, satCount)
}
