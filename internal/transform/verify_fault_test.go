package transform

import (
	"strings"
	"testing"

	"gptattr/internal/fault"
)

const faultProg = `#include <iostream>
using namespace std;
int main() {
    int n;
    cin >> n;
    cout << n * 2 << endl;
    return 0;
}`

// faultProgRenamed differs only in a variable name, so the static
// pre-screen certifies it and no interpreter run happens; the variant
// below with a changed literal forces interpreter runs.
const faultProgDoubled = `#include <iostream>
using namespace std;
int main() {
    int n;
    cin >> n;
    cout << (n * 4) / 2 << endl;
    return 0;
}`

// TestVerifySurvivesTransientInterpFaults arms a bounded error fault
// on the interpreter point and asserts Verify still passes: the retry
// supervisor absorbs the flaky-executor simulation, so an injected
// fault can never turn into a false verification failure.
func TestVerifySurvivesTransientInterpFaults(t *testing.T) {
	defer fault.Disable()
	fault.Enable(4)
	fault.Set(PointVerifyInterp, fault.Policy{Kind: fault.KindError, Every: 2, Limit: verifyRetries - 1})
	if err := Verify(faultProg, faultProgDoubled, []string{"3\n", "10\n"}); err != nil {
		t.Fatalf("Verify failed under bounded transient faults: %v", err)
	}
	if fault.Stats()[PointVerifyInterp].Fires == 0 {
		t.Fatal("fault never fired (static pre-screen skipped the interpreter?)")
	}
}

// TestVerifyFaultPastRetryBudgetSurfaces arms an unlimited error
// fault: Verify must fail with the injected error (clearly marked),
// not hang or misreport a behavioural divergence.
func TestVerifyFaultPastRetryBudgetSurfaces(t *testing.T) {
	defer fault.Disable()
	fault.Enable(4)
	fault.Set(PointVerifyInterp, fault.Policy{Kind: fault.KindError})
	err := Verify(faultProg, faultProgDoubled, []string{"3\n"})
	if err == nil {
		t.Fatal("Verify passed although every interpreter run faulted")
	}
	if !strings.Contains(err.Error(), "fault: injected") {
		t.Fatalf("error %v does not name the injected fault", err)
	}
	if strings.Contains(err.Error(), "output mismatch") {
		t.Fatalf("injected fault misreported as behavioural divergence: %v", err)
	}
}

// TestVerifyRealFailureNotRetried pins that genuine interpreter
// verdicts are not retried: a real divergence costs exactly one run
// of each program per input.
func TestVerifyRealFailureNotRetried(t *testing.T) {
	divergent := strings.Replace(faultProgDoubled, "/ 2", "/ 2 + 1", 1)
	before := Stats.InterpRuns.Load()
	if err := Verify(faultProg, divergent, []string{"3\n"}); err == nil {
		t.Fatal("divergent program verified")
	}
	if got := Stats.InterpRuns.Load() - before; got != 2 {
		t.Fatalf("divergence cost %d interpreter runs, want 2 (no retries)", got)
	}
}
