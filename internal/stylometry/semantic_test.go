package stylometry_test

// The semantic feature group's whole reason to exist is surviving
// rewrites: a surface rewriter may move every lexical and layout
// feature, but renaming and reformatting must not move a single
// semantic feature. This file pins that contract bit-for-bit against
// the real evade action space — if a new semantic feature or a new
// rename/layout action breaks the invariance, this test names the
// exact features that moved.

import (
	"strings"
	"testing"

	"gptattr/internal/evade"
	"gptattr/internal/stylometry"
)

// invariantActions are the ActionSpace names whose rewrites must leave
// the semantic sub-vector bit-identical: every rename-* and layout-*
// action (the pinned contract), plus the purely lexical rewrites that
// the normalized passes erase by construction.
func invariantAction(name string) bool {
	if strings.HasPrefix(name, "rename-") || strings.HasPrefix(name, "layout-") {
		return true
	}
	switch name {
	case "strip-comments", "use-namespace", "qualify-std", "pre-increment", "post-increment":
		return true
	}
	return false
}

var invarianceSources = []string{
	`#include <iostream>
#include <vector>
using namespace std;
int best;
int score(int a, int b) {
    if (a > b) { return a - b; }
    return b - a;
}
int main() {
    int n;
    cin >> n;
    vector<int> v(n);
    for (int i = 0; i < n; i++) {
        cin >> v[i];
    }
    for (int i = 0; i < n; i++) {
        for (int j = i + 1; j < n; j++) {
            int s = score(v[i], v[j]);
            if (s > best) {
                best = s;
            }
        }
    }
    cout << best << endl;
    return 0;
}
`,
	`#include <cstdio>
long long fact(int n) {
    if (n <= 1) { return 1; }
    return n * fact(n - 1);
}
int main() {
    int t;
    scanf("%d", &t);
    while (t > 0) {
        int x;
        scanf("%d", &x);
        printf("%lld\n", fact(x));
        t--;
    }
    return 0;
}
`,
	`#include <iostream>
#include <string>
using namespace std;
int main() {
    string line;
    int count = 0;
    while (cin >> line) {
        int vowels = 0;
        for (int i = 0; i < (int)line.size(); i++) {
            char c = line[i];
            if (c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u') {
                vowels++;
            }
        }
        if (vowels * 2 > (int)line.size()) {
            count += 1;
        }
    }
    cout << count << "\n";
    return 0;
}
`,
}

// semBlock extracts the semantic sub-vector of a source.
func semBlock(t *testing.T, src string) stylometry.Features {
	t.Helper()
	f, err := stylometry.Extract(src)
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	return stylometry.FilterFamily(f, stylometry.FamilySemantic)
}

// diffFeatures returns a readable diff of two feature maps.
func diffFeatures(a, b stylometry.Features) []string {
	var out []string
	for name, va := range a {
		vb, ok := b[name]
		if !ok {
			out = append(out, name+": dropped")
		} else if va != vb {
			out = append(out, name+": value moved")
		}
	}
	for name := range b {
		if _, ok := a[name]; !ok {
			out = append(out, name+": appeared")
		}
	}
	return out
}

// TestSemanticInvariantUnderRenameAndLayout applies every rename and
// layout action of the evade action space (plus the lexical rewrites
// listed in invariantAction) to realistic sources and requires the
// semantic sub-vector to come back bit-identical.
func TestSemanticInvariantUnderRenameAndLayout(t *testing.T) {
	actions := evade.ActionSpace()
	covered := 0
	for si, src := range invarianceSources {
		base := semBlock(t, src)
		if len(base) == 0 {
			t.Fatalf("source %d produced no semantic features", si)
		}
		for ai, a := range actions {
			if !invariantAction(a.Name) {
				continue
			}
			covered++
			rewritten, err := evade.Render(src, []int{ai})
			if err != nil {
				t.Fatalf("source %d: render %s: %v", si, a.Name, err)
			}
			got := semBlock(t, rewritten)
			if diff := diffFeatures(base, got); len(diff) > 0 {
				t.Errorf("source %d: action %s moved %d semantic features:\n  %s",
					si, a.Name, len(diff), strings.Join(diff, "\n  "))
			}
		}
	}
	if covered == 0 {
		t.Fatal("no invariant actions found in the action space")
	}
}

// TestSemanticInvariantUnderActionStacks goes further than single
// actions: random-ish fixed stacks of rename+layout rewrites applied
// together must still leave the block untouched.
func TestSemanticInvariantUnderActionStacks(t *testing.T) {
	actions := evade.ActionSpace()
	var inv []int
	for i, a := range actions {
		if invariantAction(a.Name) {
			inv = append(inv, i)
		}
	}
	if len(inv) < 4 {
		t.Fatalf("too few invariant actions: %d", len(inv))
	}
	stacks := [][]int{
		{inv[0], inv[len(inv)-1]},
		{inv[len(inv)/2], inv[1], inv[len(inv)-2]},
		inv, // every invariant action in sequence
	}
	src := invarianceSources[0]
	base := semBlock(t, src)
	for ki, seq := range stacks {
		rewritten, err := evade.Render(src, seq)
		if err != nil {
			t.Fatalf("stack %d (%v): %v", ki, evade.Names(seq), err)
		}
		got := semBlock(t, rewritten)
		if diff := diffFeatures(base, got); len(diff) > 0 {
			t.Errorf("stack %d (%v) moved %d semantic features:\n  %s",
				ki, evade.Names(seq), len(diff), strings.Join(diff, "\n  "))
		}
	}
}

// TestSemanticMovesUnderStructuralRewrites is the control: actions
// that genuinely change program semantics — library-call rewrites and
// helper extraction — must move the semantic block. If they did not,
// the group would carry no signal at all.
func TestSemanticMovesUnderStructuralRewrites(t *testing.T) {
	actions := evade.ActionSpace()
	// extractSrc is shaped so extract-solve applies: the main loop's
	// body touches only the loop counter, locals it declares, globals,
	// and protected library names, so the whole body can be lifted into
	// a solveCase helper — adding a function and a call edge.
	const extractSrc = `#include <cstdio>
int total;
int main() {
    int t;
    scanf("%d", &t);
    for (int i = 0; i < t; i++) {
        int x;
        scanf("%d", &x);
        total += x;
        printf("%d\n", total);
    }
    return 0;
}
`
	cases := []struct {
		action string
		src    string
	}{
		{"io-stdio", invarianceSources[0]},   // cin/cout -> scanf/printf: shape grams name library calls
		{"io-streams", invarianceSources[1]}, // scanf/printf -> cin/cout
		{"extract-solve", extractSrc},        // new helper + call edge: call-graph features move
	}
	for _, tc := range cases {
		ai := -1
		for i, a := range actions {
			if a.Name == tc.action {
				ai = i
			}
		}
		if ai < 0 {
			t.Fatalf("action %s not in action space", tc.action)
		}
		rewritten, err := evade.Render(tc.src, []int{ai})
		if err != nil {
			t.Fatalf("render %s: %v", tc.action, err)
		}
		if rewritten == tc.src {
			t.Fatalf("action %s did not rewrite the control source", tc.action)
		}
		base := semBlock(t, tc.src)
		if len(diffFeatures(base, semBlock(t, rewritten))) == 0 {
			t.Errorf("action %s rewrote the source but left the semantic block unchanged", tc.action)
		}
	}
}
