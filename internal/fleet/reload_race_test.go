package fleet

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestCoordinatedReloadUnderLoad is the mixed-version race test (run
// under -race in CI): closed-loop clients hammer the router while the
// fleet flips generations several times. The drain-and-flip contract
// demands that
//
//   - no request fails,
//   - every client observes a non-decreasing generation sequence
//     (a response can never come from a generation older than one
//     already seen — the mixed-version window),
//   - the router's gen-mismatch counter stays zero, and
//   - after the final reload every response carries the final
//     generation.
func TestCoordinatedReloadUnderLoad(t *testing.T) {
	fakes, rt, met := newTestFleet(t, 3, func(c *Config) {
		c.NoHedge = true // hedging off: latency jitter isn't under test here
	})
	_ = fakes

	const (
		clients = 8
		reloads = 4
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, clients)
	regressions := make([]string, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var lastGen uint64
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				src := fmt.Sprintf("int c%d_f%d() { return %d; }", c, i%7, i%7)
				resp, err := attribute(t, rt, src, fmt.Sprintf("race-%d-%d", c, i))
				if err != nil {
					errs[c] = fmt.Errorf("request %d: %w", i, err)
					return
				}
				if resp.ModelGeneration < lastGen {
					regressions[c] = fmt.Sprintf(
						"request %d: generation went backwards %d -> %d (mixed-version window)",
						i, lastGen, resp.ModelGeneration)
					return
				}
				lastGen = resp.ModelGeneration
			}
		}(c)
	}

	var finalGen uint64
	for i := 0; i < reloads; i++ {
		time.Sleep(30 * time.Millisecond) // let load build between flips
		gen, err := rt.CoordinatedReload(context.Background())
		if err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
		finalGen = gen
	}
	time.Sleep(30 * time.Millisecond) // post-flip traffic at the final generation
	close(stop)
	wg.Wait()

	for c := 0; c < clients; c++ {
		if errs[c] != nil {
			t.Errorf("client %d: %v", c, errs[c])
		}
		if regressions[c] != "" {
			t.Errorf("client %d: %s", c, regressions[c])
		}
	}
	if finalGen != uint64(1+reloads) {
		t.Errorf("final generation %d, want %d", finalGen, 1+reloads)
	}
	if n := met.Counter("fleet_gen_mismatch_total").Value(); n != 0 {
		t.Errorf("%d responses disagreed with the fleet generation at dispatch", n)
	}
	// Post-flip check from the replica side: once the fleet is at
	// finalGen, a fresh request must be served at finalGen.
	resp, err := attribute(t, rt, "int fin() { return 1; }", "race-final")
	if err != nil {
		t.Fatal(err)
	}
	if resp.ModelGeneration != finalGen {
		t.Errorf("post-reload response at generation %d, fleet at %d", resp.ModelGeneration, finalGen)
	}
}

// TestStageCommitSplitPhases drives the router's own Stage/Commit
// surface (what an operator or an outer coordinator would call over
// HTTP) and checks the fleet only flips on commit.
func TestStageCommitSplitPhases(t *testing.T) {
	fakes, rt, _ := newTestFleet(t, 3, nil)
	staged, err := rt.Stage()
	if err != nil {
		t.Fatal(err)
	}
	if staged != 2 {
		t.Fatalf("staged generation %d, want 2", staged)
	}
	for _, f := range fakes {
		if g := f.generation(); g != 1 {
			t.Errorf("replica %s flipped to %d on stage alone", f.name, g)
		}
	}
	gen, err := rt.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 {
		t.Fatalf("committed generation %d, want 2", gen)
	}
	for _, f := range fakes {
		if g := f.generation(); g != 2 {
			t.Errorf("replica %s at %d after commit", f.name, g)
		}
	}
}
