package stylometry

import (
	"context"
	"testing"

	"gptattr/internal/cppast"
)

// benchSrc is a realistic contest solution: two functions, nested
// loops, a global, and library I/O — enough to exercise every feature
// family including the semantic passes.
const benchSrc = `#include <iostream>
#include <vector>
using namespace std;
int best;
int score(int a, int b) {
    if (a > b) { return a - b; }
    return b - a;
}
int main() {
    int n;
    cin >> n;
    vector<int> v(n);
    for (int i = 0; i < n; i++) {
        cin >> v[i];
    }
    for (int i = 0; i < n; i++) {
        for (int j = i + 1; j < n; j++) {
            int s = score(v[i], v[j]);
            if (s > best) {
                best = s;
            }
        }
    }
    cout << best << endl;
    return 0;
}
`

// BenchmarkExtract measures the full feature extraction — lexical,
// layout, syntactic, and the semantic pass pipeline — per source.
func BenchmarkExtract(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Extract(benchSrc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSemanticFeatures isolates the semantic feature group: the
// incremental cost the semstats passes add on top of the classic
// Caliskan-Islam extraction (parse excluded, like a cached AST).
func BenchmarkSemanticFeatures(b *testing.B) {
	tu := cppast.MustParse(benchSrc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := make(Features)
		semanticFeatures(f, tu)
	}
}

// BenchmarkVectorInto pins the request path's hot loop: filling a
// dense row from a feature map must not allocate at all.
func BenchmarkVectorInto(b *testing.B) {
	docs := make([]Features, 0, 8)
	for i := 0; i < 8; i++ {
		f, err := Extract(benchSrc)
		if err != nil {
			b.Fatal(err)
		}
		docs = append(docs, f)
	}
	vec := NewVectorizer(docs, VectorizerConfig{MinDocFreq: 1})
	row := make([]float64, vec.NumFeatures())
	doc := docs[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vec.VectorInto(doc, row)
	}
	if n := testing.AllocsPerRun(100, func() { vec.VectorInto(doc, row) }); n != 0 {
		b.Fatalf("VectorInto allocates %v per run, want 0", n)
	}
}

// BenchmarkExtractVec is the steady-state serving path: budgeted
// extraction through a pooled Scratch straight into the interned
// FeatureVec, no map materialization. This is what one attrserve
// request costs after warmup; the trailing AllocsPerRun check hard-
// gates the zero-allocation contract (benchdiff gates wall clock).
func BenchmarkExtractVec(b *testing.B) {
	ctx := context.Background()
	warm := GetScratch()
	if _, err := warm.ExtractVec(ctx, benchSrc, DegradeNone); err != nil {
		b.Fatal(err)
	}
	PutScratch(warm)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := GetScratch()
		if _, err := sc.ExtractVec(ctx, benchSrc, DegradeNone); err != nil {
			b.Fatal(err)
		}
		PutScratch(sc)
	}
	b.StopTimer()
	if !raceEnabled {
		if n := testing.AllocsPerRun(100, func() {
			sc := GetScratch()
			sc.ExtractVec(ctx, benchSrc, DegradeNone)
			PutScratch(sc)
		}); n != 0 {
			b.Fatalf("steady-state ExtractVec allocates %v per run, want 0", n)
		}
	}
}

// BenchmarkExtractDegraded gates the brownout floor: a surface-forced
// extraction is what every admitted request is guaranteed even under
// max degrade, so its latency bounds worst-case batcher throughput.
func BenchmarkExtractDegraded(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := GetScratch()
		if _, err := sc.ExtractVec(ctx, benchSrc, DegradeSurface); err != nil {
			b.Fatal(err)
		}
		PutScratch(sc)
	}
}
