// Package attrib implements the paper's contribution: ChatGPT code
// authorship attribution for transformed code. It trains the
// non-ChatGPT oracle model (Caliskan-Islam random forest over the
// stylometry feature set), counts and histograms the styles the oracle
// assigns to ChatGPT-transformed code (Tables IV-VII), builds the
// 205-author models under the naive and feature-based grouping
// approaches (Tables VIII-IX), and runs the ChatGPT-vs-human binary
// classification (Table X).
package attrib

import (
	"errors"
	"fmt"
	"runtime"

	"gptattr/internal/corpus"
	"gptattr/internal/ml"
	"gptattr/internal/stylometry"
)

// Config carries the shared learning parameters.
type Config struct {
	// Trees is the forest size (default 100).
	Trees int
	// TopFeatures bounds the information-gain feature selection
	// (default 700).
	TopFeatures int
	// MinDocFreq for the vectorizer (default 2).
	MinDocFreq int
	// Seed drives all randomized steps.
	Seed int64
	// Workers bounds parallel feature extraction, cross-validation,
	// and tree building (default GOMAXPROCS).
	Workers int
	// Cache, when non-nil, memoizes feature extraction by source
	// content (see internal/featcache).
	Cache stylometry.FeatureCache
	// Families, when non-empty, restricts training to these feature
	// families (ablation studies; see stylometry.FeatureFamily). The
	// prediction path needs no matching change: vectorizers built from
	// filtered features simply never index the dropped families.
	Families []stylometry.FeatureFamily
}

func (c Config) trees() int {
	if c.Trees <= 0 {
		return 100
	}
	return c.Trees
}

func (c Config) topFeatures() int {
	if c.TopFeatures <= 0 {
		return 700
	}
	return c.TopFeatures
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

// ExtractAll computes stylometry features for every sample, in
// parallel, preserving order.
func ExtractAll(c *corpus.Corpus, workers int) ([]stylometry.Features, error) {
	return ExtractAllCached(c, workers, nil)
}

// ExtractAllCached is ExtractAll with an optional feature cache
// consulted before extraction.
func ExtractAllCached(c *corpus.Corpus, workers int, cache stylometry.FeatureCache) ([]stylometry.Features, error) {
	sources := make([]string, len(c.Samples))
	for i, s := range c.Samples {
		sources[i] = s.Source
	}
	out, err := stylometry.ExtractAll(sources, stylometry.ExtractConfig{Workers: workers, Cache: cache})
	if err != nil {
		var ee *stylometry.ExtractError
		if errors.As(err, &ee) {
			s := c.Samples[ee.Index]
			return nil, fmt.Errorf("attrib: sample %d (%s/%s): %w",
				ee.Index, s.Author, s.Challenge, ee.Err)
		}
		return nil, err
	}
	return out, nil
}

// extractAll applies the config's worker bound and cache.
func extractAll(c *corpus.Corpus, cfg Config) ([]stylometry.Features, error) {
	return ExtractAllCached(c, cfg.workers(), cfg.Cache)
}

// challengeIndex maps "C1".."C8" to a fold group id.
func challengeIndex(id string) int {
	if len(id) >= 2 && id[0] == 'C' {
		n := 0
		for _, r := range id[1:] {
			if r < '0' || r > '9' {
				return 0
			}
			n = n*10 + int(r-'0')
		}
		return n
	}
	return 0
}

// buildDataset vectorizes pre-extracted features with the given label
// assignment and challenge groups, then reduces by information gain.
func buildDataset(c *corpus.Corpus, feats []stylometry.Features, labelOf func(corpus.Sample) int,
	numClasses int, cfg Config) (*ml.Dataset, *stylometry.Vectorizer, []int) {
	if len(cfg.Families) > 0 {
		filtered := make([]stylometry.Features, len(feats))
		for i, f := range feats {
			filtered[i] = stylometry.FilterFamilies(f, cfg.Families)
		}
		feats = filtered
	}
	vec := stylometry.NewVectorizer(feats, stylometry.VectorizerConfig{MinDocFreq: cfg.MinDocFreq})
	d := &ml.Dataset{NumClasses: numClasses, FeatureNames: vec.FeatureNames()}
	d.X = make([][]float64, len(feats))
	d.Y = make([]int, len(feats))
	d.Groups = make([]int, len(feats))
	for i, f := range feats {
		d.X[i] = vec.Vector(f)
		d.Y[i] = labelOf(c.Samples[i])
		d.Groups[i] = challengeIndex(c.Samples[i].Challenge)
	}
	reduced, cols := ml.ReduceByInformationGain(d, cfg.topFeatures(), 10)
	reduced.Groups = d.Groups
	return reduced, vec, cols
}
