package ml

import (
	"bytes"
	"strings"
	"testing"
)

func TestForestEncodeDecodeRoundTrip(t *testing.T) {
	d := blobs(4, 25, 5, 1.0, 31)
	f, err := FitForest(d, ForestConfig{NumTrees: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	g, err := DecodeForest(&buf)
	if err != nil {
		t.Fatalf("DecodeForest: %v", err)
	}
	if g.NumTrees() != f.NumTrees() {
		t.Fatalf("trees = %d, want %d", g.NumTrees(), f.NumTrees())
	}
	for i, x := range d.X {
		if f.Predict(x) != g.Predict(x) {
			t.Fatalf("sample %d: prediction diverged after round trip", i)
		}
		pa, pb := f.PredictProba(x), g.PredictProba(x)
		for c := range pa {
			if pa[c] != pb[c] {
				t.Fatalf("sample %d class %d: proba diverged", i, c)
			}
		}
	}
}

func TestDecodeForestRejectsGarbage(t *testing.T) {
	tests := []struct {
		name string
		data string
	}{
		{"not json", "hello"},
		{"no classes", `{"num_classes":0,"trees":[]}`},
		{"no trees", `{"num_classes":3,"trees":[]}`},
		{"ragged arrays", `{"num_classes":2,"trees":[{"feature":[0],"threshold":[],"left":[],"right":[],"class":[]}]}`},
		{"bad child index", `{"num_classes":2,"trees":[{"feature":[0],"threshold":[1.0],"left":[5],"right":[0],"class":[0]}]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := DecodeForest(strings.NewReader(tt.data)); err == nil {
				t.Error("garbage accepted")
			}
		})
	}
}
