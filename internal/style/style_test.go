package style

import (
	"math/rand"
	"testing"
)

func TestRandomProfilesDiffer(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Random("A", rng)
	b := Random("B", rng)
	if Distance(a, b) == 0 {
		t.Error("two random profiles are identical (vanishingly unlikely)")
	}
	if Distance(a, a) != 0 {
		t.Error("self-distance nonzero")
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	a := Random("A", rand.New(rand.NewSource(5)))
	b := Random("A", rand.New(rand.NewSource(5)))
	if Distance(a, b) != 0 || a.CommentDensity != b.CommentDensity {
		t.Error("Random not deterministic for equal seeds")
	}
}

func TestDistanceBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		a, b := Random("a", rng), Random("b", rng)
		d := Distance(a, b)
		if d < 0 || d > 1 {
			t.Fatalf("Distance = %v out of [0,1]", d)
		}
	}
}

func TestNamerConventions(t *testing.T) {
	tests := []struct {
		naming Naming
		sem    string
		want   string
	}{
		{NamingCamel, "cases", "numCases"},
		{NamingSnake, "cases", "num_cases"},
		{NamingHungarian, "cases", "nNumCases"},
		{NamingShort, "cases", "t"},
		{NamingVerbose, "cases", "numberOfTestCases"},
		{NamingCamel, "best", "best"},
		{NamingSnake, "speed", "speed"},
		{NamingVerbose, "speed", "movementSpeed"},
	}
	for _, tt := range tests {
		nm := NewNamer(tt.naming, nil) // nil rng => first candidate
		if got := nm.Name(tt.sem); got != tt.want {
			t.Errorf("%v name for %q = %q, want %q", tt.naming, tt.sem, got, tt.want)
		}
	}
}

func TestNamerStableAndCollisionFree(t *testing.T) {
	for _, naming := range []Naming{NamingCamel, NamingSnake, NamingHungarian, NamingShort, NamingVerbose} {
		nm := NewNamer(naming, rand.New(rand.NewSource(3)))
		sems := []string{"cases", "caseno", "dist", "count", "best", "pos", "speed", "i", "sum", "val", "mx", "mn", "a", "b", "tmp"}
		seen := make(map[string]string)
		first := make(map[string]string)
		for _, s := range sems {
			n := nm.Name(s)
			if n == "" {
				t.Fatalf("%v: empty name for %q", naming, s)
			}
			if prev, ok := seen[n]; ok {
				t.Errorf("%v: name %q assigned to both %q and %q", naming, n, prev, s)
			}
			seen[n] = s
			first[s] = n
		}
		// Stability: asking again returns the same names.
		for _, s := range sems {
			if nm.Name(s) != first[s] {
				t.Errorf("%v: name for %q changed between calls", naming, s)
			}
		}
	}
}

func TestNamerUnknownSemanticFallback(t *testing.T) {
	nm := NewNamer(NamingSnake, nil)
	if got := nm.Name("zork"); got != "zork" {
		t.Errorf("fallback snake name = %q, want zork", got)
	}
	nm2 := NewNamer(NamingShort, nil)
	if got := nm2.Name("zork"); got != "z" {
		t.Errorf("fallback short name = %q, want z", got)
	}
}

func TestNamerAvoidsReservedWords(t *testing.T) {
	// The "rate" concept's short form is "r"; fine. But a semantic whose
	// candidate collides with a keyword must be skipped: "caseno" short
	// candidates avoid "case" itself by table design; verify rendered
	// names are never reserved.
	for _, naming := range []Naming{NamingCamel, NamingSnake, NamingHungarian, NamingShort, NamingVerbose} {
		nm := NewNamer(naming, rand.New(rand.NewSource(9)))
		for sem := range concepts {
			if reservedWord(nm.Name(sem)) {
				t.Errorf("%v: semantic %q rendered to reserved word %q", naming, sem, nm.Name(sem))
			}
		}
	}
}

func TestNamingString(t *testing.T) {
	if NamingCamel.String() != "camel" || NamingSnake.String() != "snake" {
		t.Error("Naming.String wrong")
	}
	if Naming(99).String() == "" {
		t.Error("unknown naming produced empty string")
	}
}
