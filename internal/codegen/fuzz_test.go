package codegen

import (
	"fmt"
	"math/rand"
	"testing"

	"gptattr/internal/cppinterp"
	"gptattr/internal/ir"
	"gptattr/internal/style"
)

// TestDifferentialRandomPrograms is the repository's differential
// fuzzer: random IR programs (beyond the 24 fixed challenges), rendered
// in random author styles, must produce byte-identical output to the
// IR evaluator's ground truth when run under the interpreter. Any
// disagreement pinpoints a semantics bug in exactly one of: the IR
// evaluator, the renderer, or the interpreter.
func TestDifferentialRandomPrograms(t *testing.T) {
	trials := 150
	if testing.Short() {
		trials = 30
	}
	for seed := int64(0); seed < int64(trials); seed++ {
		prog := ir.RandomProgram(rand.New(rand.NewSource(seed)))
		run, err := ir.Synthesize(prog, 3, rand.New(rand.NewSource(seed+5000)))
		if err != nil {
			t.Fatalf("seed %d: synthesize: %v", seed, err)
		}
		prof := style.Random(fmt.Sprintf("F%d", seed), rand.New(rand.NewSource(seed+9000)))
		src := Render(prog, prof, seed)
		got, err := cppinterp.Run(src, run.Input)
		if err != nil {
			t.Fatalf("seed %d: interpreter: %v\n--- source ---\n%s", seed, err, src)
		}
		if got != run.Output {
			t.Fatalf("seed %d: differential mismatch\n got: %q\nwant: %q\n--- source ---\n%s",
				seed, got, run.Output, src)
		}
	}
}
