package ml

import (
	"math"
	"sort"
)

// InformationGain scores every feature by the mutual information
// between an equal-width discretization of the feature (numBins bins)
// and the class label — the WEKA InfoGainAttributeEval procedure that
// Caliskan-Islam et al. use to prune the stylometric feature space.
func InformationGain(d *Dataset, numBins int) []float64 {
	if numBins < 2 {
		numBins = 10
	}
	n := len(d.X)
	if n == 0 {
		return nil
	}
	hy := classEntropy(d.Y, d.NumClasses)
	nf := d.NumFeatures()
	gains := make([]float64, nf)
	for f := 0; f < nf; f++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, row := range d.X {
			v := row[f]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi <= lo {
			gains[f] = 0 // constant feature carries no information
			continue
		}
		width := (hi - lo) / float64(numBins)
		// joint[bin][class]
		joint := make([][]int, numBins)
		for b := range joint {
			joint[b] = make([]int, d.NumClasses)
		}
		binTotals := make([]int, numBins)
		for i, row := range d.X {
			b := int((row[f] - lo) / width)
			if b >= numBins {
				b = numBins - 1
			}
			joint[b][d.Y[i]]++
			binTotals[b]++
		}
		// H(Y|X) = sum_b p(b) H(Y|b)
		cond := 0.0
		for b := 0; b < numBins; b++ {
			if binTotals[b] == 0 {
				continue
			}
			pb := float64(binTotals[b]) / float64(n)
			hb := 0.0
			for _, c := range joint[b] {
				if c == 0 {
					continue
				}
				p := float64(c) / float64(binTotals[b])
				hb -= p * math.Log2(p)
			}
			cond += pb * hb
		}
		gains[f] = hy - cond
		if gains[f] < 0 {
			gains[f] = 0
		}
	}
	return gains
}

func classEntropy(y []int, numClasses int) float64 {
	counts := make([]int, numClasses)
	for _, c := range y {
		counts[c]++
	}
	h := 0.0
	n := float64(len(y))
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// SelectTopK returns the indices of the k highest-scoring features (all
// features with positive score if fewer than k), sorted ascending so
// column selection preserves original order.
func SelectTopK(scores []float64, k int) []int {
	type fs struct {
		idx   int
		score float64
	}
	ranked := make([]fs, len(scores))
	for i, s := range scores {
		ranked[i] = fs{i, s}
	}
	sort.Slice(ranked, func(a, b int) bool {
		if ranked[a].score != ranked[b].score {
			return ranked[a].score > ranked[b].score
		}
		return ranked[a].idx < ranked[b].idx
	})
	if k > len(ranked) {
		k = len(ranked)
	}
	var out []int
	for i := 0; i < k; i++ {
		if ranked[i].score <= 0 && i > 0 {
			break
		}
		out = append(out, ranked[i].idx)
	}
	sort.Ints(out)
	return out
}

// ReduceByInformationGain selects (up to) k informative columns and
// returns the reduced dataset along with the chosen column indices.
func ReduceByInformationGain(d *Dataset, k, numBins int) (*Dataset, []int) {
	gains := InformationGain(d, numBins)
	cols := SelectTopK(gains, k)
	if len(cols) == 0 {
		// Degenerate: keep the first column so downstream code has a
		// non-empty matrix.
		cols = []int{0}
	}
	return d.SelectColumns(cols), cols
}
