// Package challenge defines the synthetic Google-Code-Jam-style
// problem set: 8 challenges per simulated year (2017, 2018, 2019),
// each an ir.Program whose rendered C++ solutions form the non-ChatGPT
// corpus of Tables I-III. The set deliberately spans the constructs
// the renderer and transformations must handle: counted and while
// loops, conditionals, accumulators, arrays, vectors with sorting,
// float and integer outputs, and math builtins.
package challenge

import (
	"fmt"

	"gptattr/internal/ir"
)

// Challenge is one problem statement with its reference solution in IR
// form.
type Challenge struct {
	// ID is "C1".."C8" within the year.
	ID string
	// Year is the simulated GCJ year (2017, 2018, or 2019).
	Year int
	// Title is a short problem name.
	Title string
	// Prog is the per-case reference solution.
	Prog *ir.Program
}

// Key returns a unique "2017/C3"-style identifier.
func (c Challenge) Key() string { return fmt.Sprintf("%d/%s", c.Year, c.ID) }

// Years lists the simulated dataset years in order.
func Years() []int { return []int{2017, 2018, 2019} }

// ByYear returns the year's eight challenges in order C1..C8.
func ByYear(year int) []Challenge {
	switch year {
	case 2017:
		return year2017()
	case 2018:
		return year2018()
	case 2019:
		return year2019()
	default:
		return nil
	}
}

// All returns every challenge across all years, year-major.
func All() []Challenge {
	var out []Challenge
	for _, y := range Years() {
		out = append(out, ByYear(y)...)
	}
	return out
}

// Get returns the challenge with the given year and id.
func Get(year int, id string) (Challenge, error) {
	for _, c := range ByYear(year) {
		if c.ID == id {
			return c, nil
		}
	}
	return Challenge{}, fmt.Errorf("challenge: no %d/%s", year, id)
}

// Expression helpers keep the definitions readable.
func v(name string) ir.Var                              { return ir.Var{Name: name} }
func il(x int64) ir.IntLit                              { return ir.IntLit{V: x} }
func fl(x float64) ir.FloatLit                          { return ir.FloatLit{V: x} }
func bin(op string, l, r ir.Expr) ir.Bin                { return ir.Bin{Op: op, L: l, R: r} }
func add(l, r ir.Expr) ir.Bin                           { return bin("+", l, r) }
func sub(l, r ir.Expr) ir.Bin                           { return bin("-", l, r) }
func mul(l, r ir.Expr) ir.Bin                           { return bin("*", l, r) }
func div(l, r ir.Expr) ir.Bin                           { return bin("/", l, r) }
func mod(l, r ir.Expr) ir.Bin                           { return bin("%", l, r) }
func toF(x ir.Expr) ir.Cast                             { return ir.Cast{To: ir.TFloat, X: x} }
func call(fn string, args ...ir.Expr) ir.Call           { return ir.Call{Fn: fn, Args: args} }
func maxE(l, r ir.Expr) ir.Call                         { return call("max", l, r) }
func minE(l, r ir.Expr) ir.Call                         { return call("min", l, r) }
func set(name string, x ir.Expr) ir.Assign              { return ir.Assign{Name: name, Op: "=", X: x} }
func inc(name string, x ir.Expr) ir.Assign              { return ir.Assign{Name: name, Op: "+=", X: x} }
func decl(name string, t ir.Type, init ir.Expr) ir.Decl { return ir.Decl{Name: name, T: t, Init: init} }
func loop(varName string, from, to ir.Expr, body ...ir.Stmt) ir.CountLoop {
	return ir.CountLoop{Var: varName, From: from, To: to, Body: body}
}
func while(cond ir.Expr, body ...ir.Stmt) ir.WhileLoop {
	return ir.WhileLoop{Cond: cond, Body: body}
}
func ifThen(cond ir.Expr, then ...ir.Stmt) ir.If { return ir.If{Cond: cond, Then: then} }

func year2017() []Challenge {
	horse := &ir.Program{
		Body: []ir.Stmt{
			ir.ReadDecl{T: ir.TInt, Vars: []ir.ReadVar{{Name: "dist", Lo: 10, Hi: 1000}, {Name: "count", Lo: 1, Hi: 12}}},
			decl("best", ir.TFloat, fl(0)),
			loop("i", il(0), v("count"),
				ir.ReadDecl{T: ir.TInt, Vars: []ir.ReadVar{{Name: "pos", Lo: 0, Hi: 9}, {Name: "speed", Lo: 1, Hi: 100}}},
				set("pos", sub(v("dist"), v("pos"))),
				set("best", maxE(v("best"), div(toF(v("pos")), toF(v("speed"))))),
			),
		},
		Out: ir.Output{X: div(toF(v("dist")), v("best")), T: ir.TFloat, Precision: 6},
	}
	sumSeries := &ir.Program{
		Body: []ir.Stmt{
			ir.Read(1, 60, "count"),
			decl("sum", ir.TInt, nil),
			loop("i", il(0), v("count"),
				ir.Read(-100, 100, "val"),
				inc("sum", v("val")),
			),
		},
		Out: ir.Output{X: v("sum"), T: ir.TInt},
	}
	maxGap := &ir.Program{
		Body: []ir.Stmt{
			ir.Read(2, 40, "count"),
			decl("mx", ir.TInt, il(-1000000000)),
			decl("mn", ir.TInt, il(1000000000)),
			loop("i", il(0), v("count"),
				ir.Read(-10000, 10000, "val"),
				set("mx", maxE(v("mx"), v("val"))),
				set("mn", minE(v("mn"), v("val"))),
			),
		},
		Out: ir.Output{X: sub(v("mx"), v("mn")), T: ir.TInt},
	}
	countEvens := &ir.Program{
		Body: []ir.Stmt{
			ir.Read(1, 50, "count"),
			decl("res", ir.TInt, nil),
			loop("i", il(0), v("count"),
				ir.Read(0, 1000000, "val"),
				ifThen(bin("==", mod(v("val"), il(2)), il(0)),
					inc("res", il(1)),
				),
			),
		},
		Out: ir.Output{X: v("res"), T: ir.TInt},
	}
	average := &ir.Program{
		Body: []ir.Stmt{
			ir.Read(1, 30, "count"),
			decl("sum", ir.TFloat, fl(0)),
			loop("i", il(0), v("count"),
				ir.ReadF(0, 100, "val"),
				inc("sum", v("val")),
			),
		},
		Out: ir.Output{X: div(v("sum"), toF(v("count"))), T: ir.TFloat, Precision: 6},
	}
	threshold := &ir.Program{
		Body: []ir.Stmt{
			ir.ReadDecl{T: ir.TInt, Vars: []ir.ReadVar{{Name: "count", Lo: 1, Hi: 50}, {Name: "limit", Lo: 0, Hi: 500}}},
			decl("res", ir.TInt, nil),
			loop("i", il(0), v("count"),
				ir.Read(0, 1000, "val"),
				ifThen(bin(">", v("val"), v("limit")),
					inc("res", il(1)),
				),
			),
		},
		Out: ir.Output{X: v("res"), T: ir.TInt},
	}
	triangle := &ir.Program{
		Body: []ir.Stmt{
			ir.Read(1, 1000000, "count"),
		},
		Out: ir.Output{X: div(mul(v("count"), add(v("count"), il(1))), il(2)), T: ir.TInt},
	}
	coins := &ir.Program{
		Body: []ir.Stmt{
			ir.Read(0, 10000, "amount"),
			ir.DeclArray{Name: "denoms", T: ir.TInt, Size: il(4)},
			ir.AssignIndex{Arr: "denoms", Idx: il(0), Op: "=", X: il(25)},
			ir.AssignIndex{Arr: "denoms", Idx: il(1), Op: "=", X: il(10)},
			ir.AssignIndex{Arr: "denoms", Idx: il(2), Op: "=", X: il(5)},
			ir.AssignIndex{Arr: "denoms", Idx: il(3), Op: "=", X: il(1)},
			decl("coins", ir.TInt, nil),
			loop("i", il(0), il(4),
				while(bin(">=", v("amount"), ir.Index{Arr: "denoms", Idx: v("i")}),
					ir.Assign{Name: "amount", Op: "-=", X: ir.Index{Arr: "denoms", Idx: v("i")}},
					inc("coins", il(1)),
				),
			),
		},
		Out: ir.Output{X: v("coins"), T: ir.TInt},
	}
	return []Challenge{
		{ID: "C1", Year: 2017, Title: "Steed Speed", Prog: horse},
		{ID: "C2", Year: 2017, Title: "Signed Sum", Prog: sumSeries},
		{ID: "C3", Year: 2017, Title: "Widest Gap", Prog: maxGap},
		{ID: "C4", Year: 2017, Title: "Even Census", Prog: countEvens},
		{ID: "C5", Year: 2017, Title: "Plain Average", Prog: average},
		{ID: "C6", Year: 2017, Title: "Over The Line", Prog: threshold},
		{ID: "C7", Year: 2017, Title: "Staircase Blocks", Prog: triangle},
		{ID: "C8", Year: 2017, Title: "Greedy Change", Prog: coins},
	}
}

func year2018() []Challenge {
	gcd := &ir.Program{
		Body: []ir.Stmt{
			ir.Read(1, 1000000, "a", "b"),
			while(bin(">", v("b"), il(0)),
				decl("tmp", ir.TInt, v("b")),
				set("b", mod(v("a"), v("b"))),
				set("a", v("tmp")),
			),
		},
		Out: ir.Output{X: v("a"), T: ir.TInt},
	}
	digitSum := &ir.Program{
		Body: []ir.Stmt{
			ir.Read(0, 1000000000, "val"),
			decl("sum", ir.TInt, nil),
			while(bin(">", v("val"), il(0)),
				inc("sum", mod(v("val"), il(10))),
				ir.Assign{Name: "val", Op: "/=", X: il(10)},
			),
		},
		Out: ir.Output{X: v("sum"), T: ir.TInt},
	}
	fib := &ir.Program{
		Body: []ir.Stmt{
			ir.Read(1, 80, "count"),
			decl("fa", ir.TInt, il(0)),
			decl("fb", ir.TInt, il(1)),
			loop("i", il(0), v("count"),
				decl("tmp", ir.TInt, add(v("fa"), v("fb"))),
				set("fa", v("fb")),
				set("fb", v("tmp")),
			),
		},
		Out: ir.Output{X: v("fa"), T: ir.TInt},
	}
	powMod := &ir.Program{
		Body: []ir.Stmt{
			ir.ReadDecl{T: ir.TInt, Vars: []ir.ReadVar{
				{Name: "basev", Lo: 1, Hi: 1000000},
				{Name: "e", Lo: 0, Hi: 1000000000},
				{Name: "m", Lo: 2, Hi: 1000000},
			}},
			decl("res", ir.TInt, il(1)),
			set("basev", mod(v("basev"), v("m"))),
			while(bin(">", v("e"), il(0)),
				ifThen(bin("==", mod(v("e"), il(2)), il(1)),
					set("res", mod(mul(v("res"), v("basev")), v("m"))),
				),
				set("basev", mod(mul(v("basev"), v("basev")), v("m"))),
				ir.Assign{Name: "e", Op: "/=", X: il(2)},
			),
		},
		Out: ir.Output{X: v("res"), T: ir.TInt},
	}
	kadane := &ir.Program{
		Body: []ir.Stmt{
			ir.Read(1, 50, "count"),
			decl("best", ir.TInt, il(-1000000000)),
			decl("cur", ir.TInt, nil),
			loop("i", il(0), v("count"),
				ir.Read(-100, 100, "val"),
				set("cur", maxE(add(v("cur"), v("val")), v("val"))),
				set("best", maxE(v("best"), v("cur"))),
			),
		},
		Out: ir.Output{X: v("best"), T: ir.TInt},
	}
	median := &ir.Program{
		Body: []ir.Stmt{
			ir.Read(1, 15, "count"),
			decl("m", ir.TInt, add(mul(il(2), v("count")), il(1))),
			ir.DeclVec{Name: "vals", T: ir.TInt},
			loop("i", il(0), v("m"),
				ir.Read(0, 10000, "val"),
				ir.PushBack{Vec: "vals", X: v("val")},
			),
			ir.SortVec{Vec: "vals"},
		},
		Out: ir.Output{X: ir.Index{Arr: "vals", Idx: v("count")}, T: ir.TInt},
	}
	distance := &ir.Program{
		Body: []ir.Stmt{
			ir.ReadF(0, 100, "x1", "y1", "x2", "y2"),
			decl("a", ir.TFloat, sub(v("x2"), v("x1"))),
			decl("b", ir.TFloat, sub(v("y2"), v("y1"))),
		},
		Out: ir.Output{X: call("sqrt", add(mul(v("a"), v("a")), mul(v("b"), v("b")))), T: ir.TFloat, Precision: 6},
	}
	remPairs := &ir.Program{
		Body: []ir.Stmt{
			ir.ReadDecl{T: ir.TInt, Vars: []ir.ReadVar{{Name: "count", Lo: 1, Hi: 100}, {Name: "k", Lo: 1, Hi: 50}}},
			ir.DeclArray{Name: "cnt", T: ir.TInt, Size: v("k")},
			loop("i", il(0), v("count"),
				ir.Read(0, 1000000, "val"),
				ir.AssignIndex{Arr: "cnt", Idx: mod(v("val"), v("k")), Op: "+=", X: il(1)},
			),
			decl("pairs", ir.TInt, div(mul(ir.Index{Arr: "cnt", Idx: il(0)}, sub(ir.Index{Arr: "cnt", Idx: il(0)}, il(1))), il(2))),
			loop("r", il(1), v("k"),
				ifThen(bin("<", v("r"), sub(v("k"), v("r"))),
					ir.Assign{Name: "pairs", Op: "+=", X: mul(ir.Index{Arr: "cnt", Idx: v("r")}, ir.Index{Arr: "cnt", Idx: sub(v("k"), v("r"))})},
				),
				ifThen(bin("==", mul(il(2), v("r")), v("k")),
					ir.Assign{Name: "pairs", Op: "+=", X: div(mul(ir.Index{Arr: "cnt", Idx: v("r")}, sub(ir.Index{Arr: "cnt", Idx: v("r")}, il(1))), il(2))},
				),
			),
		},
		Out: ir.Output{X: v("pairs"), T: ir.TInt},
	}
	return []Challenge{
		{ID: "C1", Year: 2018, Title: "Common Measure", Prog: gcd},
		{ID: "C2", Year: 2018, Title: "Digit Drain", Prog: digitSum},
		{ID: "C3", Year: 2018, Title: "Rabbit Pairs", Prog: fib},
		{ID: "C4", Year: 2018, Title: "Modular Tower", Prog: powMod},
		{ID: "C5", Year: 2018, Title: "Best Stretch", Prog: kadane},
		{ID: "C6", Year: 2018, Title: "Middle Ground", Prog: median},
		{ID: "C7", Year: 2018, Title: "Crow Flies", Prog: distance},
		{ID: "C8", Year: 2018, Title: "Divisible Duos", Prog: remPairs},
	}
}

func year2019() []Challenge {
	harmonic := &ir.Program{
		Body: []ir.Stmt{
			ir.Read(1, 1000, "count"),
			decl("h", ir.TFloat, fl(0)),
			loop("i", il(0), v("count"),
				inc("h", div(fl(1), toF(add(v("i"), il(1))))),
			),
		},
		Out: ir.Output{X: v("h"), T: ir.TFloat, Precision: 6},
	}
	compound := &ir.Program{
		Body: []ir.Stmt{
			ir.ReadF(100, 10000, "p"),
			ir.Read(1, 20, "rate"),
			ir.Read(1, 30, "years"),
		},
		Out: ir.Output{
			X:         mul(v("p"), call("pow", add(fl(1), div(toF(v("rate")), fl(100))), toF(v("years")))),
			T:         ir.TFloat,
			Precision: 2,
		},
	}
	countMax := &ir.Program{
		Body: []ir.Stmt{
			ir.Read(1, 60, "count"),
			decl("mx", ir.TInt, il(-1000000000)),
			decl("res", ir.TInt, nil),
			loop("i", il(0), v("count"),
				ir.Read(-1000, 1000, "val"),
				ir.If{
					Cond: bin(">", v("val"), v("mx")),
					Then: []ir.Stmt{set("mx", v("val")), set("res", il(1))},
					Else: []ir.Stmt{ifThen(bin("==", v("val"), v("mx")), inc("res", il(1)))},
				},
			),
		},
		Out: ir.Output{X: v("res"), T: ir.TInt},
	}
	runningMin := &ir.Program{
		Body: []ir.Stmt{
			ir.Read(1, 50, "count"),
			decl("mn", ir.TInt, il(1000000000)),
			decl("sum", ir.TInt, nil),
			loop("i", il(0), v("count"),
				ir.Read(0, 100000, "val"),
				set("mn", minE(v("mn"), v("val"))),
				inc("sum", v("mn")),
			),
		},
		Out: ir.Output{X: v("sum"), T: ir.TInt},
	}
	rectOverlap := &ir.Program{
		Body: []ir.Stmt{
			ir.ReadDecl{T: ir.TInt, Vars: []ir.ReadVar{
				{Name: "x1", Lo: 0, Hi: 50}, {Name: "y1", Lo: 0, Hi: 50},
				{Name: "w1", Lo: 1, Hi: 60}, {Name: "h1", Lo: 1, Hi: 60},
			}},
			ir.ReadDecl{T: ir.TInt, Vars: []ir.ReadVar{
				{Name: "x2", Lo: 0, Hi: 50}, {Name: "y2", Lo: 0, Hi: 50},
				{Name: "w2", Lo: 1, Hi: 60}, {Name: "h2", Lo: 1, Hi: 60},
			}},
			decl("a", ir.TInt, maxE(il(0), sub(minE(add(v("x1"), v("w1")), add(v("x2"), v("w2"))), maxE(v("x1"), v("x2"))))),
			decl("b", ir.TInt, maxE(il(0), sub(minE(add(v("y1"), v("h1")), add(v("y2"), v("h2"))), maxE(v("y1"), v("y2"))))),
		},
		Out: ir.Output{X: mul(v("a"), v("b")), T: ir.TInt},
	}
	circle := &ir.Program{
		Body: []ir.Stmt{
			ir.ReadF(1, 100, "radius"),
			decl("p", ir.TFloat, fl(3.141592653589793)),
		},
		Out: ir.Output{
			X:         add(mul(mul(v("p"), v("radius")), v("radius")), mul(mul(fl(2), v("p")), v("radius"))),
			T:         ir.TFloat,
			Precision: 4,
		},
	}
	sortedGap := &ir.Program{
		Body: []ir.Stmt{
			ir.Read(2, 40, "count"),
			ir.DeclVec{Name: "vals", T: ir.TInt},
			loop("i", il(0), v("count"),
				ir.Read(0, 100000, "val"),
				ir.PushBack{Vec: "vals", X: v("val")},
			),
			ir.SortVec{Vec: "vals"},
			decl("gap", ir.TInt, nil),
			loop("j", il(1), v("count"),
				set("gap", maxE(v("gap"), sub(ir.Index{Arr: "vals", Idx: v("j")}, ir.Index{Arr: "vals", Idx: sub(v("j"), il(1))}))),
			),
		},
		Out: ir.Output{X: v("gap"), T: ir.TInt},
	}
	collatz := &ir.Program{
		Body: []ir.Stmt{
			ir.Read(1, 1000000, "val"),
			decl("steps", ir.TInt, nil),
			while(bin(">", v("val"), il(1)),
				ir.If{
					Cond: bin("==", mod(v("val"), il(2)), il(0)),
					Then: []ir.Stmt{ir.Assign{Name: "val", Op: "/=", X: il(2)}},
					Else: []ir.Stmt{set("val", add(mul(il(3), v("val")), il(1)))},
				},
				inc("steps", il(1)),
			),
		},
		Out: ir.Output{X: v("steps"), T: ir.TInt},
	}
	return []Challenge{
		{ID: "C1", Year: 2019, Title: "Harmonic Hike", Prog: harmonic},
		{ID: "C2", Year: 2019, Title: "Compound Fortune", Prog: compound},
		{ID: "C3", Year: 2019, Title: "Counting Champions", Prog: countMax},
		{ID: "C4", Year: 2019, Title: "Sinking Floor", Prog: runningMin},
		{ID: "C5", Year: 2019, Title: "Shared Ground", Prog: rectOverlap},
		{ID: "C6", Year: 2019, Title: "Round Measures", Prog: circle},
		{ID: "C7", Year: 2019, Title: "Sorted Spread", Prog: sortedGap},
		{ID: "C8", Year: 2019, Title: "Hailstone Hops", Prog: collatz},
	}
}
