package cppcheck

import (
	"strings"

	"gptattr/internal/cppast"
)

// VarInfo describes one function-local variable (or parameter) as the
// dataflow analyses see it.
type VarInfo struct {
	Name     string
	Param    bool
	DeclLine int
	// Scalar reports an int/float/char-like value; aggregates (arrays,
	// vectors, strings — all well-defined when default-constructed in
	// C++) are excluded from the uninitialized-read analysis.
	Scalar bool
	// Escaped reports the address was taken (scanf targets, & args,
	// reference-parameter bindings): writes can happen through the
	// alias, so the dead-store and unused-decl rules skip the variable.
	Escaped bool
	// MultiDecl reports more than one declaration site for the name
	// (shadowing). The flat per-function symbol model cannot track
	// scopes precisely, so such names are skipped by the value rules.
	MultiDecl bool
	// Uninit reports a declaration without an initializer.
	Uninit bool
}

// evKind discriminates dataflow events.
type evKind int

const (
	evUse evKind = iota
	evDef
)

// event is one ordered def or use of a local variable within a block.
type event struct {
	kind evKind
	name string
	line int
	// def metadata
	decl  bool // definition comes from a declarator
	plain bool // simple `=` store: a dead-store candidate
}

// funcAnalysis holds the per-function dataflow state shared by the
// diagnostic rules and def-use chain construction.
type funcAnalysis struct {
	g      *CFG
	vars   map[string]*VarInfo
	order  []string // deterministic iteration order of vars
	events map[*Block][]event
	funcs  map[string]*cppast.FuncDecl // unit-level, for ref params
}

// assignOps maps C++ assignment operators to whether they read the
// target before writing it (compound assignments do, plain `=` not).
var assignOps = map[string]bool{
	"=": false, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

func aggregateType(typ string) bool {
	t := strings.ToLower(typ)
	return strings.Contains(t, "vector") || strings.Contains(t, "string") ||
		strings.Contains(t, "map") || strings.Contains(t, "set") ||
		strings.Contains(t, "pair") || strings.Contains(t, "queue") ||
		strings.Contains(t, "stack")
}

// newFuncAnalysis collects declarations and the per-block event stream
// for fn's CFG.
func newFuncAnalysis(g *CFG, funcs map[string]*cppast.FuncDecl) *funcAnalysis {
	fa := &funcAnalysis{
		g:      g,
		vars:   make(map[string]*VarInfo),
		events: make(map[*Block][]event),
		funcs:  funcs,
	}
	for _, p := range g.Fn.Params {
		if p.Name == "" {
			continue
		}
		fa.declare(p.Name, p.Line(), true, !aggregateType(p.Type), false)
		if p.Ref {
			fa.vars[p.Name].Escaped = true
		}
	}
	// Declarations anywhere in the body (flat scope model).
	cppast.Walk(g.Fn.Body, func(n cppast.Node, _ int) bool {
		if vd, ok := n.(*cppast.VarDecl); ok {
			scalar := !aggregateType(vd.Type)
			for _, d := range vd.Names {
				fa.declare(d.Name, vd.Line(), false, scalar && len(d.ArrayLen) == 0, d.Init == nil)
			}
		}
		return true
	})
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			fa.stmtEvents(b, s)
		}
		if b.Cond != nil {
			fa.exprEvents(b, b.Cond)
		}
	}
	return fa
}

func (fa *funcAnalysis) declare(name string, line int, param, scalar, uninit bool) {
	if v, ok := fa.vars[name]; ok {
		v.MultiDecl = true
		v.Uninit = v.Uninit || uninit
		return
	}
	fa.vars[name] = &VarInfo{Name: name, Param: param, DeclLine: line, Scalar: scalar, Uninit: uninit}
	fa.order = append(fa.order, name)
}

func (fa *funcAnalysis) use(b *Block, name string, line int) {
	if _, ok := fa.vars[name]; !ok {
		return // globals, library names: out of scope for local analyses
	}
	fa.events[b] = append(fa.events[b], event{kind: evUse, name: name, line: line})
}

func (fa *funcAnalysis) def(b *Block, name string, line int, decl, plain bool) {
	if _, ok := fa.vars[name]; !ok {
		return
	}
	fa.events[b] = append(fa.events[b], event{kind: evDef, name: name, line: line, decl: decl, plain: plain})
}

func (fa *funcAnalysis) escape(name string) {
	if v, ok := fa.vars[name]; ok {
		v.Escaped = true
	}
}

func (fa *funcAnalysis) stmtEvents(b *Block, s cppast.Node) {
	switch n := s.(type) {
	case *cppast.VarDecl:
		for _, d := range n.Names {
			for _, dim := range d.ArrayLen {
				fa.exprEvents(b, dim)
			}
			if d.Init != nil {
				fa.exprEvents(b, d.Init)
				fa.def(b, d.Name, n.Line(), true, false)
			} else if len(d.ArrayLen) > 0 || aggregateType(n.Type) {
				// Default-constructed aggregates are defined.
				fa.def(b, d.Name, n.Line(), true, false)
			}
		}
	case *cppast.ExprStmt:
		fa.exprEvents(b, n.X)
	case *cppast.Return:
		if n.Value != nil {
			fa.exprEvents(b, n.Value)
		}
	}
}

// chainRoot returns the name of the leftmost identifier of a binary
// operator spine (cin >> a >> b has root "cin"), or "".
func chainRoot(e cppast.Node, op string) string {
	for {
		be, ok := e.(*cppast.BinaryExpr)
		if !ok || be.Op != op {
			break
		}
		e = be.L
	}
	if id, ok := e.(*cppast.Ident); ok {
		return strings.TrimPrefix(id.Name, "std::")
	}
	return ""
}

// exprEvents walks an expression emitting use/def events in evaluation
// order (uses of an assignment's RHS before the LHS def).
func (fa *funcAnalysis) exprEvents(b *Block, e cppast.Node) {
	switch n := e.(type) {
	case nil:
	case *cppast.Ident:
		fa.use(b, strings.TrimPrefix(n.Name, "std::"), n.Line())
	case *cppast.Lit:
	case *cppast.ParenExpr:
		fa.exprEvents(b, n.X)
	case *cppast.BinaryExpr:
		if readsTarget, isAssign := assignOps[n.Op]; isAssign {
			fa.exprEvents(b, n.R)
			fa.assignTarget(b, n.L, readsTarget, n.Op == "=")
			return
		}
		if n.Op == ">>" && chainRoot(n, ">>") == "cin" {
			// cin >> a >> b: every extraction target is written.
			fa.exprEvents(b, n.L)
			fa.assignTarget(b, n.R, false, false)
			return
		}
		fa.exprEvents(b, n.L)
		fa.exprEvents(b, n.R)
	case *cppast.UnaryExpr:
		switch n.Op {
		case "++", "--":
			fa.assignTarget(b, n.X, true, false)
		case "&":
			// Address taken: assume read-write through the alias.
			if id, ok := n.X.(*cppast.Ident); ok {
				name := strings.TrimPrefix(id.Name, "std::")
				fa.use(b, name, id.Line())
				fa.def(b, name, id.Line(), false, false)
				fa.escape(name)
				return
			}
			fa.exprEvents(b, n.X)
		default:
			fa.exprEvents(b, n.X)
		}
	case *cppast.TernaryExpr:
		fa.exprEvents(b, n.Cond)
		fa.exprEvents(b, n.Then)
		fa.exprEvents(b, n.Else)
	case *cppast.CallExpr:
		fa.callEvents(b, n)
	case *cppast.IndexExpr:
		fa.exprEvents(b, n.X)
		fa.exprEvents(b, n.Index)
	case *cppast.MemberExpr:
		fa.exprEvents(b, n.X)
	case *cppast.CastExpr:
		fa.exprEvents(b, n.X)
	default:
		// Unknown expression shapes: no events (analysis already
		// degraded via CFG.Unsupported when they appear as statements).
	}
}

// assignTarget emits events for the written operand of an assignment,
// increment, or extraction. readsTarget adds a use before the def
// (compound assignments, ++/--).
func (fa *funcAnalysis) assignTarget(b *Block, target cppast.Node, readsTarget, plain bool) {
	switch t := target.(type) {
	case *cppast.Ident:
		name := strings.TrimPrefix(t.Name, "std::")
		if readsTarget {
			fa.use(b, name, t.Line())
		}
		fa.def(b, name, t.Line(), false, plain)
	case *cppast.IndexExpr:
		// a[i] = x: the index is read, the aggregate is read+written
		// (element stores never kill the whole aggregate).
		fa.exprEvents(b, t.Index)
		if id, ok := t.X.(*cppast.Ident); ok {
			name := strings.TrimPrefix(id.Name, "std::")
			fa.use(b, name, id.Line())
			fa.def(b, name, id.Line(), false, false)
		} else {
			fa.exprEvents(b, t.X)
		}
	case *cppast.ParenExpr:
		fa.assignTarget(b, t.X, readsTarget, plain)
	default:
		fa.exprEvents(b, target)
	}
}

func (fa *funcAnalysis) callEvents(b *Block, call *cppast.CallExpr) {
	// Method calls mutate their receiver (push_back, clear, ...); size
	// and friends only read, but read+write is the safe assumption.
	if m, ok := call.Fun.(*cppast.MemberExpr); ok {
		if id, ok := m.X.(*cppast.Ident); ok {
			name := strings.TrimPrefix(id.Name, "std::")
			fa.use(b, name, id.Line())
			fa.def(b, name, id.Line(), false, false)
		} else {
			fa.exprEvents(b, m.X)
		}
		for _, a := range call.Args {
			fa.exprEvents(b, a)
		}
		return
	}
	var callee *cppast.FuncDecl
	if id, ok := call.Fun.(*cppast.Ident); ok {
		callee = fa.funcs[strings.TrimPrefix(id.Name, "std::")]
	} else {
		fa.exprEvents(b, call.Fun)
	}
	for i, a := range call.Args {
		if callee != nil && i < len(callee.Params) && callee.Params[i].Ref {
			// Binding to a reference parameter: read+write, escaped.
			if id, ok := a.(*cppast.Ident); ok {
				name := strings.TrimPrefix(id.Name, "std::")
				fa.use(b, name, id.Line())
				fa.def(b, name, id.Line(), false, false)
				fa.escape(name)
				continue
			}
		}
		fa.exprEvents(b, a)
	}
}

// --- reaching definitions ---

// defSite identifies one def event for the bit-vector analyses; id -1
// is reserved per variable for the synthetic "uninitialized"
// definition at an initializer-less declaration.
type defSite struct {
	block *Block
	idx   int // index into events[block]
}

// reaching runs forward reaching-definitions and returns, for each
// block, the set of def IDs live on entry. Def IDs index sites; each
// uninit-declared scalar also gets a pseudo-def numbered after the
// real ones, reaching from Entry until killed.
type reaching struct {
	fa       *funcAnalysis
	sites    []defSite
	uninitID map[string]int   // var name -> pseudo-def id
	defsOf   map[string][]int // var name -> all def ids (incl. pseudo)
	in       map[*Block][]bool
}

func (fa *funcAnalysis) reachingDefs() *reaching {
	r := &reaching{fa: fa, uninitID: make(map[string]int), defsOf: make(map[string][]int)}
	for _, b := range fa.g.Blocks {
		for i, ev := range fa.events[b] {
			if ev.kind == evDef {
				id := len(r.sites)
				r.sites = append(r.sites, defSite{block: b, idx: i})
				r.defsOf[ev.name] = append(r.defsOf[ev.name], id)
			}
		}
	}
	n := len(r.sites)
	for _, name := range fa.order {
		v := fa.vars[name]
		if v.Uninit && !v.Param {
			r.uninitID[name] = n
			r.defsOf[name] = append(r.defsOf[name], n)
			n++
		}
	}
	// gen/kill per block.
	gen := make(map[*Block][]bool)
	kill := make(map[*Block][]bool)
	for _, b := range fa.g.Blocks {
		g := make([]bool, n)
		k := make([]bool, n)
		for i, ev := range fa.events[b] {
			if ev.kind != evDef {
				continue
			}
			for _, id := range r.defsOf[ev.name] {
				g[id] = false
				k[id] = true
			}
			id := r.idOf(b, i)
			g[id] = true
			k[id] = false
		}
		gen[b] = g
		kill[b] = k
	}
	r.in = make(map[*Block][]bool)
	out := make(map[*Block][]bool)
	for _, b := range fa.g.Blocks {
		r.in[b] = make([]bool, n)
		out[b] = make([]bool, n)
	}
	// Entry generates every uninit pseudo-def.
	entryOut := make([]bool, n)
	for _, id := range r.uninitID {
		entryOut[id] = true
	}
	out[fa.g.Entry] = entryOut
	rpo := fa.g.RPO()
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == fa.g.Entry {
				continue
			}
			in := make([]bool, n)
			for _, p := range b.Preds {
				for i, v := range out[p] {
					if v {
						in[i] = true
					}
				}
			}
			newOut := make([]bool, n)
			copy(newOut, in)
			for i := range newOut {
				if kill[b][i] {
					newOut[i] = false
				}
				if gen[b][i] {
					newOut[i] = true
				}
			}
			r.in[b] = in
			if !boolsEqual(newOut, out[b]) {
				out[b] = newOut
				changed = true
			}
		}
	}
	return r
}

func (r *reaching) idOf(b *Block, idx int) int {
	for id, s := range r.sites {
		if s.block == b && s.idx == idx {
			return id
		}
	}
	return -1
}

func boolsEqual(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// DefUseEntry is one def-use chain link: a definition site and the
// lines of the uses it reaches.
type DefUseEntry struct {
	Var      string
	DefLine  int
	UseLines []int
}

// DefUseChains computes, for every real definition of a local
// variable, the source lines of the uses that definition reaches.
// Entries follow block/event order; use lines are in discovery order.
func DefUseChains(g *CFG, funcs map[string]*cppast.FuncDecl) []DefUseEntry {
	fa := newFuncAnalysis(g, funcs)
	r := fa.reachingDefs()
	uses := make(map[int][]int) // def id -> use lines
	for _, b := range g.Blocks {
		cur := make([]bool, len(r.in[b]))
		copy(cur, r.in[b])
		for i, ev := range fa.events[b] {
			switch ev.kind {
			case evUse:
				for _, id := range r.defsOf[ev.name] {
					if id < len(cur) && cur[id] && id < len(r.sites) {
						uses[id] = append(uses[id], ev.line)
					}
				}
			case evDef:
				for _, id := range r.defsOf[ev.name] {
					if id < len(cur) {
						cur[id] = false
					}
				}
				if id := r.idOf(b, i); id >= 0 {
					cur[id] = true
				}
			}
		}
	}
	var out []DefUseEntry
	for id, s := range r.sites {
		ev := fa.events[s.block][s.idx]
		out = append(out, DefUseEntry{Var: ev.name, DefLine: ev.line, UseLines: uses[id]})
	}
	return out
}

// VarLiveWidth reports the liveness footprint of one local variable:
// the number of CFG blocks at whose exit the variable is still live.
// Widths are block counts, never line spans, so they are invariant to
// layout and comment rewrites.
type VarLiveWidth struct {
	Var   string
	Width int
}

// LiveWidths runs the backward liveness analysis and returns one entry
// per analyzed local (parameters included) in declaration order.
func LiveWidths(g *CFG, funcs map[string]*cppast.FuncDecl) []VarLiveWidth {
	fa := newFuncAnalysis(g, funcs)
	counts := make(map[string]int, len(fa.vars))
	for _, set := range fa.liveness() {
		for v := range set {
			counts[v]++
		}
	}
	out := make([]VarLiveWidth, 0, len(fa.order))
	for _, name := range fa.order {
		out = append(out, VarLiveWidth{Var: name, Width: counts[name]})
	}
	return out
}

// --- liveness ---

// liveness runs backward live-variable analysis and returns live-out
// sets per block, keyed by variable name.
func (fa *funcAnalysis) liveness() map[*Block]map[string]bool {
	use := make(map[*Block]map[string]bool)
	def := make(map[*Block]map[string]bool)
	for _, b := range fa.g.Blocks {
		u := make(map[string]bool)
		d := make(map[string]bool)
		for _, ev := range fa.events[b] {
			switch ev.kind {
			case evUse:
				if !d[ev.name] {
					u[ev.name] = true
				}
			case evDef:
				d[ev.name] = true
			}
		}
		use[b] = u
		def[b] = d
	}
	liveIn := make(map[*Block]map[string]bool)
	liveOut := make(map[*Block]map[string]bool)
	for _, b := range fa.g.Blocks {
		liveIn[b] = make(map[string]bool)
		liveOut[b] = make(map[string]bool)
	}
	for changed := true; changed; {
		changed = false
		for i := len(fa.g.Blocks) - 1; i >= 0; i-- {
			b := fa.g.Blocks[i]
			out := make(map[string]bool)
			for _, s := range b.Succs {
				for v := range liveIn[s] {
					out[v] = true
				}
			}
			in := make(map[string]bool)
			for v := range out {
				if !def[b][v] {
					in[v] = true
				}
			}
			for v := range use[b] {
				in[v] = true
			}
			liveOut[b] = out
			if len(in) != len(liveIn[b]) {
				liveIn[b] = in
				changed = true
				continue
			}
			for v := range in {
				if !liveIn[b][v] {
					liveIn[b] = in
					changed = true
					break
				}
			}
		}
	}
	return liveOut
}
