// Package featcache is a content-addressed cache of stylometric
// feature vectors. Keys are SHA-256 digests over a feature-extractor
// fingerprint and the source bytes (length-prefixed, so no two
// distinct (fingerprint, source) pairs collide by concatenation). The
// cache layers an in-memory LRU over an optional on-disk store, so
// chained experiment runs never re-extract unchanged files.
//
// Cache implements stylometry.FeatureCache and is safe for concurrent
// use.
package featcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"gptattr/internal/fault"
	"gptattr/internal/stylometry"
)

// Fault-injection points on the disk layer (see internal/fault).
// Reads and writes retry injected transient errors a bounded number
// of times; a torn payload survives to disk (the rename is atomic but
// the content is short) and is caught by the corrupt-entry backstop.
const (
	PointDiskRead   = "featcache.disk.read"
	PointDiskWrite  = "featcache.disk.write"
	PointDiskTorn   = "featcache.disk.write.torn"
	PointDiskRename = "featcache.disk.rename"
)

// diskRetries and diskBackoff bound the retry-with-backoff supervisor
// around disk faults.
const (
	diskRetries = 3
	diskBackoff = time.Millisecond
)

// ExtractorFingerprint identifies the current feature-extraction
// algorithm. Bump it whenever stylometry.Extract changes the feature
// set, so stale on-disk entries are never reused. v2 added the
// semantic feature group (stylometry.SemanticVersion 1).
const ExtractorFingerprint = "caliskan-islam+semstats/v2"

// Key returns the content address of one (fingerprint, source) pair.
// Both parts are length-prefixed before hashing, so shifting bytes
// between fingerprint and source always changes the key.
func Key(fingerprint, source string) string {
	h := sha256.New()
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(fingerprint)))
	h.Write(n[:])
	h.Write([]byte(fingerprint))
	binary.LittleEndian.PutUint64(n[:], uint64(len(source)))
	h.Write(n[:])
	h.Write([]byte(source))
	return hex.EncodeToString(h.Sum(nil))
}

// Options configures a Cache.
type Options struct {
	// MaxEntries bounds the in-memory LRU (default 4096).
	MaxEntries int
	// Dir, when set, enables the on-disk layer under this directory.
	Dir string
	// Fingerprint is mixed into every key (default
	// ExtractorFingerprint).
	Fingerprint string
}

// Stats reports cache effectiveness counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	DiskHits  uint64
	Evictions uint64
}

// Cache is an LRU feature cache with an optional disk layer.
type Cache struct {
	opts Options

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	stats Stats
}

type entry struct {
	key string
	f   stylometry.Features
}

// New builds a cache, creating the disk directory if configured.
func New(opts Options) (*Cache, error) {
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = 4096
	}
	if opts.Fingerprint == "" {
		opts.Fingerprint = ExtractorFingerprint
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("featcache: %w", err)
		}
	}
	return &Cache{opts: opts, ll: list.New(), items: make(map[string]*list.Element)}, nil
}

// Get returns the cached features for a source, consulting memory then
// disk. The returned map is a private copy the caller may mutate.
func (c *Cache) Get(src string) (stylometry.Features, bool) {
	key := Key(c.opts.Fingerprint, src)
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		f := el.Value.(*entry).f
		c.stats.Hits++
		c.mu.Unlock()
		return cloneFeatures(f), true
	}
	c.mu.Unlock()
	if c.opts.Dir != "" {
		if f, ok := c.loadDisk(key); ok {
			c.mu.Lock()
			c.stats.Hits++
			c.stats.DiskHits++
			c.insertLocked(key, f)
			c.mu.Unlock()
			return cloneFeatures(f), true
		}
	}
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	return nil, false
}

// Put stores the features for a source in memory and, when configured,
// on disk. The map is copied; later caller mutations do not leak in.
func (c *Cache) Put(src string, f stylometry.Features) {
	key := Key(c.opts.Fingerprint, src)
	f = cloneFeatures(f)
	c.mu.Lock()
	c.insertLocked(key, f)
	c.mu.Unlock()
	if c.opts.Dir != "" {
		c.storeDisk(key, f)
	}
}

// Len reports the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// insertLocked adds or refreshes an entry; c.mu must be held. Cached
// maps are never mutated after insertion, so concurrent readers may
// share them.
func (c *Cache) insertLocked(key string, f stylometry.Features) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*entry).f = f
		return
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, f: f})
	for c.ll.Len() > c.opts.MaxEntries {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*entry).key)
		c.stats.Evictions++
	}
}

func cloneFeatures(f stylometry.Features) stylometry.Features {
	out := make(stylometry.Features, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// diskPath shards entries by key prefix to keep directories small.
func (c *Cache) diskPath(key string) string {
	return filepath.Join(c.opts.Dir, key[:2], key+".json")
}

// loadDisk reads one on-disk entry. A file that exists but does not
// decode — truncated by a crash, corrupted, or written by something
// else — is treated exactly like a miss: the bad file is deleted so
// the recomputed entry can be stored cleanly, and the caller
// re-extracts. Nothing downstream ever sees a partial entry.
func (c *Cache) loadDisk(key string) (stylometry.Features, bool) {
	path := c.diskPath(key)
	var data []byte
	err := fault.Retry(diskRetries, diskBackoff, func() error {
		if err := fault.Hit(PointDiskRead); err != nil {
			return err
		}
		var rerr error
		data, rerr = os.ReadFile(path)
		return rerr
	})
	if err != nil {
		return nil, false
	}
	var f stylometry.Features
	if err := json.Unmarshal(data, &f); err != nil {
		os.Remove(path)
		return nil, false
	}
	return f, true
}

// storeDisk writes atomically: the payload goes to a temp file that
// is fsynced before the rename, so a crash at any instant leaves
// either no entry or a complete one — never a truncated file at the
// final path. Injected transient faults are retried with backoff;
// terminal errors are swallowed, because the disk layer is an
// optimization, not a store of record (and a surviving torn payload
// is caught by the corrupt-entry delete+recompute backstop in
// loadDisk).
func (c *Cache) storeDisk(key string, f stylometry.Features) {
	data, err := json.Marshal(f)
	if err != nil {
		return
	}
	path := c.diskPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	_ = fault.Retry(diskRetries, diskBackoff, func() error {
		return writeEntry(path, data)
	})
}

// writeEntry performs one temp-file + fsync + rename attempt.
func writeEntry(path string, data []byte) error {
	if err := fault.Hit(PointDiskWrite); err != nil {
		return err
	}
	// A fired torn-write fault truncates the payload, modelling a
	// partially flushed buffer that the rename then publishes.
	data, err := fault.Data(PointDiskTorn, data)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := fault.Hit(PointDiskRename); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
