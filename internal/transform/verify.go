package transform

import (
	"fmt"
	"sync/atomic"

	"gptattr/internal/cppast"
	"gptattr/internal/cppcheck"
	"gptattr/internal/cppinterp"
)

// VerifyMaxSteps is the interpreter step budget per verification run.
// A transformation that introduces non-termination fails verification
// with a step-budget error instead of stalling the pipeline.
const VerifyMaxSteps = cppinterp.DefaultMaxSteps

// StaticResult is the verdict of the static equivalence pre-screen.
type StaticResult int

const (
	// StaticUnknown: the screen cannot decide; run the interpreter.
	StaticUnknown StaticResult = iota
	// StaticEquivalent: canonical fingerprints match; the programs are
	// behaviourally identical and interpreter runs can be skipped.
	StaticEquivalent
	// StaticRejected: the transformed program introduces new static
	// defects (a rewrite that orphans a variable); fail without
	// sampling inputs — sampled runs can miss path-dependent breakage.
	StaticRejected
)

// VerifyStats counts verification work across goroutines (NCTParallel
// runs Verify concurrently, so all fields are atomics).
type VerifyStats struct {
	StaticChecks  atomic.Int64 // StaticVerify invocations
	StaticHits    atomic.Int64 // fingerprint matches (interpreter skipped)
	StaticRejects atomic.Int64 // hard fails before the interpreter
	InterpRuns    atomic.Int64 // individual cppinterp.Run invocations
}

// Snapshot returns a plain-value copy for reporting.
func (s *VerifyStats) Snapshot() (checks, hits, rejects, interpRuns int64) {
	return s.StaticChecks.Load(), s.StaticHits.Load(), s.StaticRejects.Load(), s.InterpRuns.Load()
}

// Stats is the process-wide verification counter set, reported by
// gpttransform -stats and the experiment pipeline.
var Stats VerifyStats

// StaticVerify is the conservative equivalence pre-screen run before
// the interpreter. Equivalence claims rest on the cppcheck canonical
// fingerprint (normalized CFG shape + def-use summary), which erases
// exactly the axes the transformation passes rewrite — names, layout,
// comments, std:: qualification, increment style, for/while form —
// and preserves operators, literals, and I/O. Rejection rests on the
// diagnostics engine: a transformed program whose body gained
// uninitialized-read findings relative to the original was broken by
// the rewrite, however the sampled inputs happen to behave. Anything
// the static layer cannot model (unsupported constructs, parse
// failures, diagnostic noise present in the original) yields
// StaticUnknown and defers to the interpreter.
func StaticVerify(origSrc, newSrc string) StaticResult {
	Stats.StaticChecks.Add(1)
	origTU, err := cppast.Parse(origSrc)
	if err != nil {
		return StaticUnknown
	}
	newTU, err := cppast.Parse(newSrc)
	if err != nil {
		return StaticUnknown
	}
	if countRule(cppcheck.Analyze(newTU), cppcheck.RuleUninitRead) >
		countRule(cppcheck.Analyze(origTU), cppcheck.RuleUninitRead) {
		Stats.StaticRejects.Add(1)
		return StaticRejected
	}
	origFP, ok := cppcheck.Fingerprint(origTU)
	if !ok {
		return StaticUnknown
	}
	newFP, ok := cppcheck.Fingerprint(newTU)
	if !ok {
		return StaticUnknown
	}
	if origFP == newFP {
		Stats.StaticHits.Add(1)
		return StaticEquivalent
	}
	return StaticUnknown
}

func countRule(ds []cppcheck.Diagnostic, rule string) int {
	n := 0
	for _, d := range ds {
		if d.Rule == rule {
			n++
		}
	}
	return n
}

// Verify checks that two programs are behaviourally equivalent on the
// given inputs: both must run without error and produce byte-identical
// stdout. This is the executable form of the paper's requirement that
// code transformations maintain the original functionality. A static
// pre-screen (StaticVerify) short-circuits the interpreter when the
// canonical fingerprints match and hard-fails rewrites that introduce
// new uninitialized-read defects; every interpreter run is bounded by
// VerifyMaxSteps so non-terminating rewrites fail instead of hanging.
func Verify(origSrc, newSrc string, inputs []string) error {
	if len(inputs) == 0 {
		return fmt.Errorf("transform: no verification inputs")
	}
	switch StaticVerify(origSrc, newSrc) {
	case StaticEquivalent:
		return nil
	case StaticRejected:
		return fmt.Errorf("transform: static verification: transformation introduces uninitialized-variable reads")
	}
	for i, in := range inputs {
		Stats.InterpRuns.Add(2)
		want, err := cppinterp.Run(origSrc, in, cppinterp.WithMaxSteps(VerifyMaxSteps))
		if err != nil {
			return fmt.Errorf("transform: input %d: original failed: %w", i, err)
		}
		got, err := cppinterp.Run(newSrc, in, cppinterp.WithMaxSteps(VerifyMaxSteps))
		if err != nil {
			return fmt.Errorf("transform: input %d: transformed failed: %w", i, err)
		}
		if got != want {
			return fmt.Errorf("transform: input %d: output mismatch: got %q want %q", i, got, want)
		}
	}
	return nil
}
