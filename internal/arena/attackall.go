package arena

import (
	"context"
	"runtime"
	"sync"
)

// Target is one attack query in a campaign.
type Target struct {
	// ID labels the target in reports (optional).
	ID string
	// Source is the victim file.
	Source string
	// TrueAuthor is the label the attack must move away from.
	TrueAuthor string
	// TargetAuthor, when non-empty, makes this an impersonation query.
	TargetAuthor string
	// Seed overrides the campaign seed for this target; 0 derives a
	// per-target seed from the campaign seed and the target's index,
	// so results do not depend on worker scheduling.
	Seed int64
	// VerifyInputs overrides cfg.VerifyInputs for this target.
	VerifyInputs []string
}

// AttackAll runs one attack per target through a bounded worker pool
// and returns results in target order. Each target's search is seeded
// independently (explicit Target.Seed or a stable derivation from
// cfg.Seed and the target index), so the output is bit-identical at
// any worker count. The first attack error cancels the remaining
// queue and is returned; completed entries keep their results.
func AttackAll(ctx context.Context, oracle Oracle, targets []Target, cfg Config, workers int) ([]*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(targets) {
		workers = len(targets)
	}
	results := make([]*Result, len(targets))
	if len(targets) == 0 {
		return results, nil
	}
	errs := make([]error, len(targets))
	idx := make(chan int)
	var wg sync.WaitGroup
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				tcfg := cfg
				tcfg.Seed = targets[i].Seed
				if tcfg.Seed == 0 {
					// splitmix-style spread keeps neighbouring targets'
					// streams uncorrelated.
					tcfg.Seed = cfg.Seed + int64(i+1)*int64(0x9e3779b97f4a7c15&0x7fffffffffffffff)
				}
				if targets[i].VerifyInputs != nil {
					tcfg.VerifyInputs = targets[i].VerifyInputs
				}
				goal := Goal{TrueAuthor: targets[i].TrueAuthor, Target: targets[i].TargetAuthor}
				res, err := Attack(actx, oracle, targets[i].Source, goal, tcfg)
				results[i], errs[i] = res, err
				if err != nil {
					cancel()
				}
			}
		}()
	}
feed:
	for i := range targets {
		select {
		case idx <- i:
		case <-actx.Done():
			// A worker failed (or the caller gave up); stop feeding.
			break feed
		}
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, nil
}
