// Package ml implements the machine-learning substrate the paper's
// attribution pipeline runs on: CART decision trees, a random forest
// with bootstrap aggregation and per-split feature subsampling (the
// classifier family of Caliskan-Islam et al.), information-gain feature
// selection, cross-validation helpers, evaluation metrics, and a kNN
// baseline. Everything is deterministic given a seed, and forest
// training parallelizes across trees with a bounded worker pool.
package ml

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// Dataset is a dense labelled design matrix.
type Dataset struct {
	// X is the feature matrix, one row per sample.
	X [][]float64
	// Y holds class indices parallel to X.
	Y []int
	// Groups optionally assigns each sample to a fold group (e.g. the
	// challenge it solves) for grouped cross-validation. Nil when
	// unused.
	Groups []int
	// NumClasses is one greater than the largest class index.
	NumClasses int
	// FeatureNames optionally names columns for diagnostics.
	FeatureNames []string

	// colOnce guards the lazily built column-major mirror (colmat).
	// Training builds it once per dataset; X must not be mutated after
	// the first FitTree/FitForest call on this dataset.
	colOnce sync.Once
	colmat  *colMatrix
}

// columns returns the flat column-major mirror of X, building (and
// per-feature sorting) it on first use. Safe for concurrent callers.
func (d *Dataset) columns() *colMatrix {
	d.colOnce.Do(func() { d.colmat = newColMatrix(d) })
	return d.colmat
}

// ColumnMajor returns the single flat backing array of the column-major
// mirror: feature f occupies the n consecutive entries starting at
// f*n, where n is the row count. The mirror is built lazily from the
// row API and cached; callers must treat it — and X, once any training
// or column access has happened — as read-only.
func (d *Dataset) ColumnMajor() []float64 { return d.columns().data }

// Col returns the contiguous column view of feature f from the
// column-major mirror (read-only).
func (d *Dataset) Col(f int) []float64 { return d.columns().col(f) }

// ErrEmptyDataset is returned when fitting on no samples.
var ErrEmptyDataset = errors.New("ml: empty dataset")

// Validate checks internal consistency.
func (d *Dataset) Validate() error {
	if len(d.X) == 0 {
		return ErrEmptyDataset
	}
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("ml: %d rows but %d labels", len(d.X), len(d.Y))
	}
	if d.Groups != nil && len(d.Groups) != len(d.X) {
		return fmt.Errorf("ml: %d rows but %d groups", len(d.X), len(d.Groups))
	}
	w := len(d.X[0])
	for i, row := range d.X {
		if len(row) != w {
			return fmt.Errorf("ml: row %d has %d features, want %d", i, len(row), w)
		}
	}
	for i, y := range d.Y {
		if y < 0 || y >= d.NumClasses {
			return fmt.Errorf("ml: label %d of sample %d outside [0,%d)", y, i, d.NumClasses)
		}
	}
	return nil
}

// NumFeatures returns the column count.
func (d *Dataset) NumFeatures() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Subset returns a new dataset containing the given row indices. The
// rows are shared, not copied.
func (d *Dataset) Subset(idx []int) *Dataset {
	sub := &Dataset{
		X:            make([][]float64, len(idx)),
		Y:            make([]int, len(idx)),
		NumClasses:   d.NumClasses,
		FeatureNames: d.FeatureNames,
	}
	if d.Groups != nil {
		sub.Groups = make([]int, len(idx))
	}
	for i, j := range idx {
		sub.X[i] = d.X[j]
		sub.Y[i] = d.Y[j]
		if d.Groups != nil {
			sub.Groups[i] = d.Groups[j]
		}
	}
	return sub
}

// SelectColumns returns a dataset restricted to the given feature
// columns (rows are copied).
func (d *Dataset) SelectColumns(cols []int) *Dataset {
	sub := &Dataset{
		X:          make([][]float64, len(d.X)),
		Y:          d.Y,
		Groups:     d.Groups,
		NumClasses: d.NumClasses,
	}
	if d.FeatureNames != nil {
		sub.FeatureNames = make([]string, len(cols))
		for i, c := range cols {
			sub.FeatureNames[i] = d.FeatureNames[c]
		}
	}
	for i, row := range d.X {
		nr := make([]float64, len(cols))
		for j, c := range cols {
			nr[j] = row[c]
		}
		sub.X[i] = nr
	}
	return sub
}

// TrainTestSplit shuffles sample indices with the given rng and splits
// them so that testFrac of the data lands in the test set.
func TrainTestSplit(n int, testFrac float64, rng *rand.Rand) (train, test []int) {
	idx := rng.Perm(n)
	cut := int(float64(n) * testFrac)
	if cut < 1 {
		cut = 1
	}
	if cut >= n {
		cut = n - 1
	}
	test = append(test, idx[:cut]...)
	train = append(train, idx[cut:]...)
	return train, test
}
