package ml

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// FuzzDecodeForest feeds arbitrary and truncated bytes through
// DecodeForest. The decoder must return an error or a forest that
// predicts without panicking — never an index-out-of-range, an
// infinite Predict walk, or an allocation driven by hostile declared
// counts. Serving loads models from disk state it does not control, so
// this is the trust boundary.
func FuzzDecodeForest(f *testing.F) {
	// A genuine encoding plus truncations of it.
	d := blobs(3, 20, 4, 1.0, 17)
	forest, err := FitForest(d, ForestConfig{NumTrees: 5, Seed: 9})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := forest.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	for _, cut := range []int{1, len(valid) / 2, len(valid) - 2} {
		f.Add(valid[:cut])
	}
	f.Add([]byte(""))
	f.Add([]byte("{}"))
	f.Add([]byte(`{"num_classes":1000000000,"trees":[]}`))
	f.Add([]byte(`{"num_classes":2,"trees":[{"feature":[0],"threshold":[0.5],"left":[0],"right":[0],"class":[0]}]}`))
	f.Add([]byte(`{"num_classes":2,"trees":[{"feature":[-1],"threshold":[0],"left":[0],"right":[0],"class":[9]}]}`))
	f.Add([]byte(`{"num_classes":2,"trees":[{"feature":[],"threshold":[],"left":[],"right":[],"class":[]}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := DecodeForest(bytes.NewReader(data))
		if err != nil {
			if g != nil {
				t.Fatal("DecodeForest returned both a forest and an error")
			}
			return
		}
		// A decoded forest must be safe to use: every declared invariant
		// was validated, so prediction over a wide-enough vector cannot
		// panic and must finish.
		x := make([]float64, g.MaxFeature()+1)
		class := g.Predict(x)
		if class < 0 || class >= g.NumClasses() {
			t.Fatalf("predicted class %d outside %d classes", class, g.NumClasses())
		}
		proba := g.PredictProba(x)
		if len(proba) != g.NumClasses() {
			t.Fatalf("proba has %d entries, want %d", len(proba), g.NumClasses())
		}
	})
}

// TestDecodeForestHardening pins the specific rejections the fuzzer
// relies on, so a refactor cannot silently drop one.
func TestDecodeForestHardening(t *testing.T) {
	tests := []struct {
		name string
		data string
	}{
		{"class count over cap", `{"num_classes":1000000000,"trees":[{"feature":[-1],"threshold":[0],"left":[0],"right":[0],"class":[0]}]}`},
		{"empty tree", `{"num_classes":2,"trees":[{"feature":[],"threshold":[],"left":[],"right":[],"class":[]}]}`},
		{"class outside range", `{"num_classes":2,"trees":[{"feature":[-1],"threshold":[0],"left":[0],"right":[0],"class":[2]}]}`},
		{"negative class", `{"num_classes":2,"trees":[{"feature":[-1],"threshold":[0],"left":[0],"right":[0],"class":[-1]}]}`},
		{"self-loop child", `{"num_classes":2,"trees":[{"feature":[0],"threshold":[0.5],"left":[0],"right":[0],"class":[0]}]}`},
		{"backward child", `{"num_classes":2,"trees":[{"feature":[-1,0],"threshold":[0,0.5],"left":[0,0],"right":[0,0],"class":[0,0]}]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := DecodeForest(strings.NewReader(tt.data)); err == nil {
				t.Fatalf("accepted %s", tt.name)
			}
		})
	}
}

// FuzzFitTree drives tree induction over adversarially-shaped
// datasets: constant columns, duplicated rows, single-class labels,
// NaN-free but tie-heavy value grids, minLeaf larger than the node.
// The invariants: FitTree never panics, a fitted tree predicts a class
// in range for every training row, and exact mode is insensitive to
// how many duplicate low-cardinality columns surround the signal.
func FuzzFitTree(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(3), uint8(2), uint8(1), uint8(0))
	f.Add(int64(2), uint8(1), uint8(1), uint8(1), uint8(1), uint8(0))   // single row
	f.Add(int64(3), uint8(40), uint8(4), uint8(1), uint8(9), uint8(0))  // single class, minLeaf 9
	f.Add(int64(4), uint8(30), uint8(2), uint8(3), uint8(50), uint8(4)) // minLeaf > n, binned
	f.Add(int64(5), uint8(64), uint8(6), uint8(4), uint8(2), uint8(16)) // histogram mode
	f.Fuzz(func(t *testing.T, seed int64, n8, feats8, classes8, minLeaf8, bins8 uint8) {
		n := int(n8%64) + 1
		feats := int(feats8%8) + 1
		classes := int(classes8%5) + 1
		bins := int(bins8)
		if bins == 1 {
			bins = 2 // 1 is rejected by config validation; not the target here
		}
		rng := rand.New(rand.NewSource(seed))
		d := &Dataset{X: make([][]float64, n), Y: make([]int, n), NumClasses: classes}
		for i := range d.X {
			row := make([]float64, feats)
			for j := range row {
				switch j % 3 {
				case 0: // low-cardinality / constant-ish column
					row[j] = float64(rng.Intn(2))
				case 1: // tie-heavy quantized grid
					row[j] = float64(rng.Intn(5)) * 0.25
				default: // continuous
					row[j] = rng.NormFloat64()
				}
			}
			d.X[i] = row
			d.Y[i] = rng.Intn(classes)
		}
		// Duplicate some rows exactly (bootstrap-style ties).
		for i := 1; i < n; i += 3 {
			d.X[i] = d.X[i-1]
		}
		cfg := TreeConfig{
			MaxDepth:       int(seed % 7), // 0 = unbounded
			MinSamplesLeaf: int(minLeaf8),
			MTry:           feats / 2,
			Bins:           bins,
		}
		tree, err := FitTree(d, nil, cfg, rand.New(rand.NewSource(seed+1)))
		if err != nil {
			t.Fatalf("FitTree: %v", err) // any valid dataset must fit
		}
		for i, row := range d.X {
			if c := tree.Predict(row); c < 0 || c >= classes {
				t.Fatalf("Predict(row %d) = %d, want in [0,%d)", i, c, classes)
			}
		}
		if tree.Depth() < 0 || tree.NumNodes() < 1 {
			t.Fatalf("degenerate tree shape: depth %d, nodes %d", tree.Depth(), tree.NumNodes())
		}
	})
}
