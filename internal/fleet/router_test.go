package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"gptattr/internal/fault"
	"gptattr/internal/serve"
	"gptattr/internal/serve/metrics"
)

// fakeReplica speaks the replica wire protocol (inference, healthz,
// stage/commit) with a controllable latency, its own generation
// counter, and a SIGKILL-equivalent kill/restart that keeps the same
// address — everything the router can observe, none of the model
// cost.
type fakeReplica struct {
	t    testing.TB
	name string
	addr string

	mu      sync.Mutex
	counter uint64 // registry-style generation counter (bumps per stage)
	gen     uint64
	staged  uint64
	delay   time.Duration
	seen    map[string]int // request ID -> inference responses served
	perGen  map[uint64]int // inference responses served per generation

	srvMu sync.Mutex
	srv   *http.Server
}

func newFakeReplica(t testing.TB, name string) *fakeReplica {
	t.Helper()
	f := &fakeReplica{
		t: t, name: name,
		counter: 1, gen: 1,
		seen:   make(map[string]int),
		perGen: make(map[uint64]int),
	}
	f.start("127.0.0.1:0")
	t.Cleanup(f.kill)
	return f
}

func (f *fakeReplica) url() string { return "http://" + f.addr }

func (f *fakeReplica) start(addr string) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		f.t.Fatalf("fake replica %s: %v", f.name, err)
	}
	f.addr = ln.Addr().String()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/attribute", f.handleInfer)
	mux.HandleFunc("/v1/detect", f.handleInfer)
	mux.HandleFunc("/healthz", f.handleHealthz)
	mux.HandleFunc("/v1/reload/stage", f.handleStage)
	mux.HandleFunc("/v1/reload/commit", f.handleCommit)
	srv := &http.Server{Handler: mux}
	f.srvMu.Lock()
	f.srv = srv
	f.srvMu.Unlock()
	go func() { _ = srv.Serve(ln) }()
}

// kill is the SIGKILL equivalent: the listener and every open
// connection die immediately, aborting in-flight responses mid-wire.
func (f *fakeReplica) kill() {
	f.srvMu.Lock()
	defer f.srvMu.Unlock()
	if f.srv != nil {
		_ = f.srv.Close()
		f.srv = nil
	}
}

// restart rebinds the same address; fresh=true models a process
// restart (the in-memory generation counter resets to 1).
func (f *fakeReplica) restart(fresh bool) {
	f.kill()
	f.mu.Lock()
	if fresh {
		f.counter, f.gen, f.staged = 1, 1, 0
	}
	f.mu.Unlock()
	f.start(f.addr)
}

func (f *fakeReplica) setDelay(d time.Duration) {
	f.mu.Lock()
	f.delay = d
	f.mu.Unlock()
}

func (f *fakeReplica) served(reqID string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seen[reqID]
}

func (f *fakeReplica) generation() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.gen
}

func (f *fakeReplica) handleInfer(w http.ResponseWriter, r *http.Request) {
	var req serve.AttributeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Source == "" {
		w.WriteHeader(http.StatusUnprocessableEntity)
		_ = json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "bad request body"})
		return
	}
	f.mu.Lock()
	delay := f.delay
	f.mu.Unlock()
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-r.Context().Done():
			return // hedged loser canceled mid-flight
		}
	}
	f.mu.Lock()
	gen := f.gen
	f.seen[r.Header.Get(serve.RequestIDHeader)]++
	f.perGen[gen]++
	f.mu.Unlock()
	_ = json.NewEncoder(w).Encode(serve.AttributeResponse{
		Author: f.name, Proba: map[string]float64{f.name: 1}, ModelGeneration: gen,
	})
}

func (f *fakeReplica) handleHealthz(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	h := serve.HealthResponse{
		Status: "ok", ModelGeneration: f.gen, StagedGeneration: f.staged,
		Oracle: true, Detector: true,
	}
	f.mu.Unlock()
	_ = json.NewEncoder(w).Encode(h)
}

func (f *fakeReplica) handleStage(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	f.counter++
	f.staged = f.counter
	staged := f.staged
	f.mu.Unlock()
	_ = json.NewEncoder(w).Encode(serve.StageResponse{StagedGeneration: staged})
}

func (f *fakeReplica) handleCommit(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.staged == 0 {
		w.WriteHeader(http.StatusConflict)
		_ = json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "no staged generation"})
		return
	}
	f.gen, f.staged = f.staged, 0
	_ = json.NewEncoder(w).Encode(serve.ReloadResponse{ModelGeneration: f.gen})
}

// newTestFleet builds n fake replicas and a synced router over them.
func newTestFleet(t *testing.T, n int, mutate func(*Config)) ([]*fakeReplica, *Router, *metrics.Registry) {
	t.Helper()
	fakes := make([]*fakeReplica, n)
	reps := make([]*Replica, n)
	client := &http.Client{}
	for i := range fakes {
		name := fmt.Sprintf("r%d", i+1)
		fakes[i] = newFakeReplica(t, name)
		reps[i] = NewReplica(name, fakes[i].url(), client)
	}
	met := metrics.NewRegistry()
	cfg := Config{
		Replicas:   reps,
		HedgeDelay: 20 * time.Millisecond,
		Metrics:    met,
		Logf:       t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := rt.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	return fakes, rt, met
}

// attribute runs one request through the router with a known ID.
func attribute(t *testing.T, rt *Router, src, reqID string) (serve.AttributeResponse, error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if reqID != "" {
		ctx = serve.WithRequestID(ctx, reqID)
	}
	return rt.Attribute(ctx, src)
}

// TestRouterAffinity pins cache affinity: the same source always
// lands on the same replica, and that replica is the ring owner.
func TestRouterAffinity(t *testing.T) {
	_, rt, _ := newTestFleet(t, 3, func(c *Config) { c.NoHedge = true })
	for i := 0; i < 10; i++ {
		src := fmt.Sprintf("int f%d() { return %d; }", i, i)
		want, ok := rt.ring.Owner([]byte(src))
		if !ok {
			t.Fatal("no ring owner")
		}
		for rep := 0; rep < 3; rep++ {
			resp, err := attribute(t, rt, src, "")
			if err != nil {
				t.Fatal(err)
			}
			if resp.Author != want {
				t.Fatalf("source %d served by %s, ring owner is %s", i, resp.Author, want)
			}
		}
	}
}

// TestRouterHedgeWinsOverSlowReplica makes the owner slow: the hedge
// to the next replica on the ring must answer well before the owner
// would have, and exactly one response reaches the caller.
func TestRouterHedgeWinsOverSlowReplica(t *testing.T) {
	fakes, rt, met := newTestFleet(t, 3, func(c *Config) { c.HedgeDelay = 10 * time.Millisecond })
	src := "int main() { return 42; }"
	owner, _ := rt.ring.Owner([]byte(src))
	var slow *fakeReplica
	for _, f := range fakes {
		if f.name == owner {
			slow = f
		}
	}
	slow.setDelay(2 * time.Second)

	start := time.Now()
	resp, err := attribute(t, rt, src, "hedge-test-1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Author == owner {
		t.Fatalf("slow owner %s still answered", owner)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedged request took %v, owner delay leaked through", elapsed)
	}
	if met.Counter("fleet_hedges_total").Value() == 0 {
		t.Error("no hedge recorded")
	}
	if met.Counter("fleet_hedge_wins_total").Value() == 0 {
		t.Error("no hedge win recorded")
	}
}

// TestRouterFailoverOnKill kills the owner: the request must still
// succeed via the next replica, with the owner marked dead; after
// restart one probe cycle restores it.
func TestRouterFailoverOnKill(t *testing.T) {
	fakes, rt, _ := newTestFleet(t, 3, func(c *Config) { c.NoHedge = true })
	src := "int g() { return 7; }"
	owner, _ := rt.ring.Owner([]byte(src))
	var victim *fakeReplica
	for _, f := range fakes {
		if f.name == owner {
			victim = f
		}
	}
	victim.kill()

	resp, err := attribute(t, rt, src, "failover-1")
	if err != nil {
		t.Fatalf("request failed with one replica down: %v", err)
	}
	if resp.Author == owner {
		t.Fatalf("dead replica %s answered", owner)
	}
	if rt.ring.IsAlive(owner) {
		t.Error("owner still in rotation after connection failure")
	}

	victim.restart(false)
	rt.ProbeAll(context.Background())
	if !rt.ring.IsAlive(owner) {
		t.Error("restarted replica not restored by probe")
	}
	resp, err = attribute(t, rt, src, "failover-2")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Author != owner {
		t.Errorf("restored owner %s not serving its keys (got %s)", owner, resp.Author)
	}
}

// TestRouterAllDead answers 503 without hanging when nothing is
// alive.
func TestRouterAllDead(t *testing.T) {
	fakes, rt, _ := newTestFleet(t, 2, func(c *Config) { c.NoHedge = true })
	for _, f := range fakes {
		f.kill()
	}
	// Two requests: the first discovers the deaths, the second sees an
	// empty ring.
	for i := 0; i < 2; i++ {
		_, err := attribute(t, rt, "int x;", fmt.Sprintf("dead-%d", i))
		var se *serve.StatusError
		if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
			t.Fatalf("request %d: err = %v, want StatusError 503", i, err)
		}
	}
	if h := rt.Health(); h.Status != "degraded" {
		t.Errorf("all-dead fleet health = %q, want degraded", h.Status)
	}
}

// TestRouterPassThroughStatus pins that a replica's HTTP verdict
// (here 422) passes through instead of being retried elsewhere.
func TestRouterPassThroughStatus(t *testing.T) {
	fakes, rt, met := newTestFleet(t, 3, func(c *Config) { c.NoHedge = true })
	_, err := attribute(t, rt, "", "passthrough-1") // empty source → 422 from the fake
	var se *serve.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusUnprocessableEntity {
		t.Fatalf("err = %v, want StatusError 422", err)
	}
	if met.Counter("fleet_failovers_total").Value() != 0 {
		t.Error("a 422 verdict triggered a failover")
	}
	for _, f := range fakes {
		if !rt.ring.IsAlive(f.name) {
			t.Errorf("replica %s marked dead by a 422", f.name)
		}
	}
}

// TestCoordinatedReloadFlipsEveryReplica drives the two-phase reload
// and checks the whole fleet lands on one new generation.
func TestCoordinatedReloadFlipsEveryReplica(t *testing.T) {
	fakes, rt, _ := newTestFleet(t, 3, nil)
	gen, err := rt.CoordinatedReload(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 {
		t.Fatalf("reload generation %d, want 2", gen)
	}
	for _, f := range fakes {
		if g := f.generation(); g != 2 {
			t.Errorf("replica %s at generation %d after reload", f.name, g)
		}
	}
	if h := rt.Health(); h.ModelGeneration != 2 {
		t.Errorf("fleet health generation %d, want 2", h.ModelGeneration)
	}
}

// TestCoordinatedReloadAbortsOnStageFault arms the stage fault point:
// the reload must abort before any replica flips, and the serving
// generation must be untouched fleet-wide.
func TestCoordinatedReloadAbortsOnStageFault(t *testing.T) {
	defer fault.Disable()
	fakes, rt, _ := newTestFleet(t, 3, nil)
	fault.Enable(7)
	fault.Set(PointReloadStage, fault.Policy{Kind: fault.KindError, Limit: 1})
	if _, err := rt.CoordinatedReload(context.Background()); err == nil {
		t.Fatal("faulted reload succeeded")
	}
	for _, f := range fakes {
		if g := f.generation(); g != 1 {
			t.Errorf("replica %s flipped to %d on an aborted reload", f.name, g)
		}
	}
	// The fault limit is spent: the retry goes through.
	gen, err := rt.CoordinatedReload(context.Background())
	if err != nil || gen != 2 {
		t.Fatalf("retry after aborted reload: gen %d, err %v", gen, err)
	}
}

// TestCoordinatedReloadTornBetweenPhases arms the commit fault point
// (the torn-reload window): everything is staged, nothing flips, and
// the retry completes the flip from the staged state.
func TestCoordinatedReloadTornBetweenPhases(t *testing.T) {
	defer fault.Disable()
	fakes, rt, _ := newTestFleet(t, 3, nil)
	fault.Enable(11)
	fault.Set(PointReloadCommit, fault.Policy{Kind: fault.KindError, Limit: 1})
	if _, err := rt.CoordinatedReload(context.Background()); err == nil {
		t.Fatal("torn reload reported success")
	}
	for _, f := range fakes {
		if g := f.generation(); g != 1 {
			t.Errorf("replica %s serving %d inside the torn window", f.name, g)
		}
	}
	gen, err := rt.CoordinatedReload(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fakes {
		if g := f.generation(); g != gen {
			t.Errorf("replica %s at %d after recovery reload to %d", f.name, g, gen)
		}
	}
}

// TestRestartedReplicaHealsToFleetGeneration is the restart-amnesia
// case: a replica comes back at generation 1 while the fleet is at 3;
// it must be driven back to 3 before rejoining the ring.
func TestRestartedReplicaHealsToFleetGeneration(t *testing.T) {
	fakes, rt, _ := newTestFleet(t, 3, func(c *Config) { c.NoHedge = true })
	for i := 0; i < 2; i++ {
		if _, err := rt.CoordinatedReload(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	src := "int h() { return 1; }"
	owner, _ := rt.ring.Owner([]byte(src))
	var victim *fakeReplica
	for _, f := range fakes {
		if f.name == owner {
			victim = f
		}
	}
	victim.kill()
	// A forward to the victim's key discovers the death.
	if _, err := attribute(t, rt, src, "heal-1"); err != nil {
		t.Fatal(err)
	}
	if rt.ring.IsAlive(victim.name) {
		t.Fatal("victim still alive after kill + forward")
	}

	victim.restart(true) // fresh process: generation counter reset to 1
	rt.ProbeAll(context.Background())
	if !rt.ring.IsAlive(victim.name) {
		t.Fatal("restarted replica not restored")
	}
	if g := victim.generation(); g != 3 {
		t.Fatalf("restored replica at generation %d, fleet at 3", g)
	}
}

// TestRouterP2CDemotion piles concurrent requests for one key on its
// slow owner until the power-of-two-choices delta trips and the
// runner-up takes the overflow.
func TestRouterP2CDemotion(t *testing.T) {
	fakes, rt, met := newTestFleet(t, 3, func(c *Config) {
		c.NoHedge = true
		c.P2CSlack = 3
	})
	src := "int hot() { return 0; }"
	owner, _ := rt.ring.Owner([]byte(src))
	for _, f := range fakes {
		if f.name == owner {
			f.setDelay(400 * time.Millisecond)
		}
	}
	var wg sync.WaitGroup
	authors := make([]string, 10)
	for i := 0; i < len(authors); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := attribute(t, rt, src, fmt.Sprintf("p2c-%d", i))
			if err == nil {
				authors[i] = resp.Author
			}
		}(i)
		time.Sleep(10 * time.Millisecond) // let inflight build up in order
	}
	wg.Wait()
	if met.Counter("fleet_p2c_demotions_total").Value() == 0 {
		t.Fatal("no p2c demotion under a hot key")
	}
	spilled := 0
	for _, a := range authors {
		if a != "" && a != owner {
			spilled++
		}
	}
	if spilled == 0 {
		t.Error("no request spilled off the hot owner")
	}
}

// TestRouterStatus spot-checks the /fleet/status payload fields.
func TestRouterStatus(t *testing.T) {
	fakes, rt, _ := newTestFleet(t, 2, func(c *Config) { c.NoHedge = true })
	if _, err := attribute(t, rt, "int s() { return 3; }", "status-1"); err != nil {
		t.Fatal(err)
	}
	st := rt.Status()
	if st.Generation != 1 || st.AliveReplicas != 2 || len(st.Replicas) != 2 {
		t.Fatalf("status = %+v", st)
	}
	if st.Forwards == 0 {
		t.Error("forwards counter not surfaced")
	}
	for i, rs := range st.Replicas {
		if rs.URL != fakes[i].url() {
			t.Errorf("replica %s URL %q, want %q", rs.Name, rs.URL, fakes[i].url())
		}
		if !rs.Alive || !rs.Oracle || !rs.Detector {
			t.Errorf("replica status %+v", rs)
		}
	}
}

// TestRouterRequestIDReachesReplica pins trace continuity at the
// router→replica hop: the caller's ID arrives verbatim.
func TestRouterRequestIDReachesReplica(t *testing.T) {
	fakes, rt, _ := newTestFleet(t, 3, func(c *Config) { c.NoHedge = true })
	src := "int id() { return 9; }"
	const reqID = "trace-xyz-000007"
	if _, err := attribute(t, rt, src, reqID); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, f := range fakes {
		total += f.served(reqID)
	}
	if total != 1 {
		t.Fatalf("request ID %q served %d times across the fleet, want exactly 1", reqID, total)
	}
}
