package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"gptattr/internal/serve"
)

// maxReplicaBody bounds how much of a replica response the router
// will buffer; inference responses are a few KB of JSON.
const maxReplicaBody = 1 << 20

// Replica is the router's client for one shared-nothing attrserve
// process. All calls propagate the request ID and are bounded by the
// caller's context; a transport-level failure (connection refused,
// reset mid-body) is returned as an error so the router can fail the
// replica over, while an HTTP-answered request — any status — is a
// verdict to pass through.
type Replica struct {
	// Name identifies the replica on the ring and in logs/metrics.
	Name string
	// BaseURL is the replica's serving address (no trailing slash).
	BaseURL string
	// Client issues the HTTP calls (shared across replicas).
	Client *http.Client
}

// NewReplica builds a replica handle. An empty client gets a default
// with pooled connections; per-call deadlines come from contexts.
func NewReplica(name, baseURL string, client *http.Client) *Replica {
	if client == nil {
		client = &http.Client{}
	}
	return &Replica{Name: name, BaseURL: strings.TrimRight(baseURL, "/"), Client: client}
}

// Forward posts one inference request body to /v1/<endpoint>. The
// returned status and body are the replica's verdict verbatim; err is
// non-nil only for transport failures, which make the request safe
// and necessary to retry elsewhere.
func (r *Replica) Forward(ctx context.Context, endpoint, reqID string, body []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.BaseURL+"/v1/"+endpoint, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if reqID != "" {
		req.Header.Set(serve.RequestIDHeader, reqID)
	}
	if dl, ok := ctx.Deadline(); ok {
		// Forward the remaining budget, not the original one: the time
		// already burned at this hop (queueing, a lost first attempt)
		// must shrink what the replica may spend.
		if ms := int64(time.Until(dl) / time.Millisecond); ms > 0 {
			req.Header.Set(serve.BudgetHeader, strconv.FormatInt(ms, 10))
		}
	}
	resp, err := r.Client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer func() { _ = resp.Body.Close() }() // body read to the limit below either way
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxReplicaBody))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}

// EvadeStatus polls one evasion job on this replica (the unprefixed
// job ID). Like Forward, the returned status and body are the
// replica's verdict verbatim; err is transport-only — but an evade
// poll is never retried elsewhere, because no other replica holds the
// job.
func (r *Replica) EvadeStatus(ctx context.Context, jobID string, wait bool, reqID string) (int, []byte, error) {
	u := r.BaseURL + "/v1/evade/status?id=" + url.QueryEscape(jobID)
	if wait {
		u += "&wait=true"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, nil, err
	}
	if reqID != "" {
		req.Header.Set(serve.RequestIDHeader, reqID)
	}
	resp, err := r.Client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer func() { _ = resp.Body.Close() }() // body read to the limit below either way
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxReplicaBody))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}

// Healthz fetches the replica's health report.
func (r *Replica) Healthz(ctx context.Context) (serve.HealthResponse, error) {
	var h serve.HealthResponse
	err := r.call(ctx, http.MethodGet, "/healthz", &h)
	return h, err
}

// Stage asks the replica to load the next model generation without
// serving it (phase one of a coordinated reload).
func (r *Replica) Stage(ctx context.Context) (uint64, error) {
	var sr serve.StageResponse
	if err := r.call(ctx, http.MethodPost, "/v1/reload/stage", &sr); err != nil {
		return 0, err
	}
	return sr.StagedGeneration, nil
}

// Commit asks the replica to atomically publish its staged generation
// (phase two of a coordinated reload).
func (r *Replica) Commit(ctx context.Context) (uint64, error) {
	var rr serve.ReloadResponse
	if err := r.call(ctx, http.MethodPost, "/v1/reload/commit", &rr); err != nil {
		return 0, err
	}
	return rr.ModelGeneration, nil
}

// MetricsText fetches the replica's plain-text /metrics page.
func (r *Replica) MetricsText(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := r.Client.Do(req)
	if err != nil {
		return "", err
	}
	defer func() { _ = resp.Body.Close() }() // body read to the limit below either way
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxReplicaBody))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("fleet: %s: /metrics answered %d", r.Name, resp.StatusCode)
	}
	return string(b), nil
}

// call issues one control request and decodes a 200's JSON body into
// out; a non-200 answer becomes an error quoting the replica's
// error body.
func (r *Replica) call(ctx context.Context, method, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, r.BaseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := r.Client.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }() // body read to the limit below either way
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxReplicaBody))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: %s: %s answered %d: %s", r.Name, path, resp.StatusCode, errorBody(b))
	}
	return json.Unmarshal(b, out)
}

// errorBody extracts the error field from a replica's JSON error
// envelope, falling back to the raw (truncated) body.
func errorBody(b []byte) string {
	var er serve.ErrorResponse
	if err := json.Unmarshal(b, &er); err == nil && er.Error != "" {
		return er.Error
	}
	if len(b) > 200 {
		b = b[:200]
	}
	return string(b)
}
