package main

import "testing"

func tinyArgs(extra ...string) []string {
	base := []string{
		"-authors", "8", "-rounds", "2", "-trees", "8", "-styles", "4", "-seed", "5",
	}
	return append(base, extra...)
}

func TestRunSingleTable(t *testing.T) {
	if err := run(tinyArgs("-table", "I")); err != nil {
		t.Fatalf("run -table I: %v", err)
	}
	if err := run(tinyArgs("-table", "IV")); err != nil {
		t.Fatalf("run -table IV: %v", err)
	}
}

func TestRunSingleFigure(t *testing.T) {
	if err := run(tinyArgs("-figure", "2")); err != nil {
		t.Fatalf("run -figure 2: %v", err)
	}
}

func TestRunAblation(t *testing.T) {
	if err := run(tinyArgs("-ablation", "stickiness")); err != nil {
		t.Fatalf("run -ablation stickiness: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(tinyArgs("-table", "XIV")); err == nil {
		t.Error("unknown table accepted")
	}
	if err := run(tinyArgs("-figure", "9")); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run(tinyArgs("-ablation", "nope")); err == nil {
		t.Error("unknown ablation accepted")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}
