package ml

import (
	"math"
	"math/rand"
)

// TreeConfig controls CART tree induction.
type TreeConfig struct {
	// MaxDepth bounds tree depth; 0 means unbounded.
	MaxDepth int
	// MinSamplesLeaf is the minimum samples a leaf may hold (default 1).
	MinSamplesLeaf int
	// MTry is the number of features sampled at each split; 0 means use
	// all features (a plain CART tree). Random forests set this to
	// roughly sqrt(d).
	MTry int
	// Bins opts into histogram-mode induction: every feature is
	// quantile-binned into at most Bins (2..256) codes and split search
	// scans bin boundaries instead of sorted-value boundaries. O(n)
	// split scans and no per-node order maintenance, at the price of
	// thresholds restricted to bin edges — trees differ from exact mode
	// (quality parity is OOB-verified in tests), but are equally
	// deterministic for a given seed. 0 means exact mode, which is
	// bit-identical to the classic per-node re-sorting implementation.
	Bins int
}

func (c TreeConfig) minLeaf() int {
	if c.MinSamplesLeaf < 1 {
		return 1
	}
	return c.MinSamplesLeaf
}

// treeNode is one node of a fitted tree; leaves have feature == -1.
type treeNode struct {
	feature   int
	threshold float64
	left      int32 // child indices into Tree.nodes
	right     int32
	class     int32 // majority class at this node
}

// Tree is a fitted CART decision tree using the Gini criterion and
// binary splits of the form x[f] <= t.
type Tree struct {
	nodes      []treeNode
	numClasses int
}

// FitTree grows a tree on the rows of d indexed by idx (all rows when
// idx is nil; duplicate indices — bootstrap samples — are fine). The
// rng drives feature subsampling; it may be nil when cfg.MTry is 0.
func FitTree(d *Dataset, idx []int, cfg TreeConfig, rng *rand.Rand) (*Tree, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	ctx, err := newTrainCtx(d, cfg.Bins)
	if err != nil {
		return nil, err
	}
	if idx == nil {
		idx = make([]int, len(d.X))
		for i := range idx {
			idx[i] = i
		}
	}
	return newTreeBuilder(ctx).fit(idx, cfg, rng), nil
}

// smallNode is the node size at or below which split search gathers
// the member (value, class) pairs into scratch and insertion-sorts
// them instead of consulting maintained orders or histograms. Feature
// orders stop being partitioned once no descendant can exceed it.
const smallNode = 32

// treeBuilder grows CART trees without ever sorting at a node. Three
// exact split-scan paths cover every case:
//
//   - coded features (≤ maxBins distinct values) are scanned through
//     exact per-value counting histograms over precomputed rank codes;
//   - wide features keep the classic pre-sorted row order, derived once
//     per tree from the colMatrix's full-dataset sort and maintained
//     down the tree by stable partitioning;
//   - nodes of at most smallNode samples insertion-sort a gathered
//     scratch copy, so order maintenance stops high up the tree.
//
// All three evaluate identical boundaries with identical float
// arithmetic, so the chosen splits are bit-identical to the classic
// per-node re-sorting implementation. All scratch is reused across
// trees; steady-state induction allocates nothing but the tree's own
// node array.
type treeBuilder struct {
	ctx  *trainCtx
	cfg  TreeConfig
	rng  *rand.Rand
	tree *Tree
	nb   int // current node-set (bootstrap) size

	// samples is the node membership list; grow() operates on segments
	// [lo,hi) which are stable-partitioned in place at each split.
	samples []int32
	// order holds, per wide slot, the node's samples sorted by that
	// feature's value: slot w's segment is order[w*nb+lo : w*nb+hi].
	// Stable partitioning preserves sortedness. Unused in histogram
	// mode.
	order []int32
	// staleLo/staleHi track, per wide slot, the segment [lo,hi) in
	// which the feature was found constant and its order stopped being
	// maintained. A constant feature has no split boundaries, so its
	// (now garbage) order is never consulted inside that segment, and
	// constancy is inherited by every sub-segment; DFS discipline makes
	// one interval per slot sufficient.
	staleLo, staleHi []int32
	// side marks, per dataset row, which side of the current split the
	// row falls on (all bootstrap copies of a row share feature values
	// and therefore a side). Drives branchless partitioning.
	side []uint64
	// invTab[k] = 1/k: turns the fast-gini divisions into multiplies.
	invTab []float64
	// small-node gather scratch
	smallVals [smallNode]float64
	smallCls  [smallNode]int32
	// ycls[i] caches Y[samples[i]] for the node being split, so the
	// candidate-feature scans read classes with unit stride instead of
	// re-gathering per feature. Refilled by grow for each node.
	ycls []int32
	// other scratch
	part       []int32 // partition right-half staging, nb entries
	rep        []int32 // per-row bootstrap multiplicity, n entries
	permBuf    []int   // feature subsampling, nf entries
	counts     []int   // per-class counts at the current node
	present    []int32 // classes with nonzero counts at the current node
	leftCount  []int
	rightCount []int
	hist       []int32 // per-code class counts (coded scan, histogram mode)
	histTotal  []int32 // per-code totals (histogram mode)
	seen       []uint8 // per-code occupancy flags (coded scan)
	touched    []int32 // codes seen at the current node (coded scan)
}

// newTreeBuilder allocates a builder whose scratch is shared across
// every tree it fits.
func newTreeBuilder(ctx *trainCtx) *treeBuilder {
	return &treeBuilder{ctx: ctx}
}

// fit grows one tree over the (possibly repeated) row indices idx.
func (b *treeBuilder) fit(idx []int, cfg TreeConfig, rng *rand.Rand) *Tree {
	b.cfg = cfg
	b.rng = rng
	b.reset(idx)
	b.tree = &Tree{
		numClasses: b.ctx.d.NumClasses,
		// A binary tree over nb samples has at most 2*nb-1 nodes:
		// presizing makes node appends allocation-free.
		nodes: make([]treeNode, 0, 2*len(idx)-1),
	}
	b.grow(0, b.nb, 0)
	return b.tree
}

// reset sizes the scratch for a node set of len(idx) samples and
// derives the root's per-wide-feature sorted orders from the shared
// full-dataset sort.
func (b *treeBuilder) reset(idx []int) {
	cm := b.ctx.cm
	n := cm.n
	b.nb = len(idx)
	if cap(b.samples) < b.nb {
		b.samples = make([]int32, b.nb)
		b.part = make([]int32, b.nb)
		b.ycls = make([]int32, b.nb)
		b.invTab = make([]float64, b.nb+1)
		for k := 1; k <= b.nb; k++ {
			b.invTab[k] = 1 / float64(k)
		}
	}
	b.samples = b.samples[:b.nb]
	b.ycls = b.ycls[:b.nb]
	b.part = b.part[:b.nb]
	for i, row := range idx {
		b.samples[i] = int32(row)
	}
	c := b.ctx.d.NumClasses
	if cap(b.counts) < c {
		b.counts = make([]int, c)
		b.leftCount = make([]int, c)
		b.rightCount = make([]int, c)
		b.present = make([]int32, 0, c)
	}
	b.counts = b.counts[:c]
	b.leftCount = b.leftCount[:c]
	b.rightCount = b.rightCount[:c]
	if cap(b.permBuf) < cm.nf {
		b.permBuf = make([]int, cm.nf)
	}
	b.permBuf = b.permBuf[:cm.nf]
	if cap(b.side) < (n+63)/64 {
		b.side = make([]uint64, (n+63)/64)
	}
	b.side = b.side[:(n+63)/64]

	if bs := b.ctx.bins; bs != nil {
		// Histogram mode keeps only the membership list per node.
		maxB := 0
		for _, nb := range bs.nbins {
			if nb > maxB {
				maxB = nb
			}
		}
		b.sizeHist(maxB, c)
		return
	}

	b.sizeHist(cm.maxK, c)
	nw := cm.nWide()
	if cap(b.staleLo) < nw {
		b.staleLo = make([]int32, nw)
		b.staleHi = make([]int32, nw)
	}
	b.staleLo = b.staleLo[:nw]
	b.staleHi = b.staleHi[:nw]
	for w := 0; w < nw; w++ {
		b.staleLo[w], b.staleHi[w] = 1, 0 // empty interval: covers nothing
	}

	// Expand the full-dataset sorted order of each wide feature into
	// this node set, honouring bootstrap multiplicity. Each slot's
	// segment is the node's rows sorted ascending by that feature.
	if cap(b.rep) < n {
		b.rep = make([]int32, n)
	}
	b.rep = b.rep[:n]
	clear(b.rep)
	for _, row := range idx {
		b.rep[row]++
	}
	if cap(b.order) < nw*b.nb {
		b.order = make([]int32, nw*b.nb)
	}
	b.order = b.order[:nw*b.nb]
	for w := 0; w < nw; w++ {
		dst := b.order[w*b.nb : (w+1)*b.nb]
		pos := 0
		for _, row := range cm.sortedCol(int(cm.wideFeat[w])) {
			r := b.rep[row]
			if r == 0 {
				continue
			}
			dst[pos] = row
			pos++
			for ; r > 1; r-- {
				dst[pos] = row
				pos++
			}
		}
	}
}

// sizeHist sizes the per-code histogram scratch for maxB codes.
func (b *treeBuilder) sizeHist(maxB, classes int) {
	if maxB == 0 {
		return
	}
	if cap(b.hist) < maxB*classes {
		b.hist = make([]int32, maxB*classes)
		b.histTotal = make([]int32, maxB)
		b.seen = make([]uint8, maxB)
		b.touched = make([]int32, 0, maxB)
	}
	b.hist = b.hist[:maxB*classes]
	b.histTotal = b.histTotal[:maxB]
	b.seen = b.seen[:maxB]
}

// permInto reproduces rand.Perm's exact draw sequence into buf, so
// feature subsampling consumes the rng identically to the seed
// implementation (which called rng.Perm) without allocating.
// TestPermIntoMatchesRandPerm pins the equivalence.
func permInto(rng *rand.Rand, buf []int) {
	for i := range buf {
		j := rng.Intn(i + 1)
		buf[i] = buf[j]
		buf[j] = i
	}
}

// grow builds the subtree for the node segment [lo,hi) and returns its
// node index.
func (b *treeBuilder) grow(lo, hi, depth int) int32 {
	y := b.ctx.d.Y
	counts := b.counts
	clear(counts)
	present := b.present[:0]
	ycls := b.ycls
	for i, row := range b.samples[lo:hi] {
		cls := y[row]
		ycls[lo+i] = int32(cls)
		if counts[cls] == 0 {
			present = append(present, int32(cls))
		}
		counts[cls]++
	}
	b.present = present
	best := 0
	for c, n := range counts {
		if n > counts[best] {
			best = c
		}
	}
	nodeIdx := int32(len(b.tree.nodes))
	b.tree.nodes = append(b.tree.nodes, treeNode{feature: -1, class: int32(best)})

	nNode := hi - lo
	pure := counts[best] == nNode
	if pure || nNode < 2*b.cfg.minLeaf() ||
		(b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth) {
		return nodeIdx
	}

	var (
		feat int
		thr  float64
		ok   bool
	)
	if b.ctx.bins != nil {
		feat, thr, ok = b.bestSplitHist(lo, hi, counts)
	} else {
		feat, thr, ok = b.bestSplit(lo, hi, counts)
	}
	if !ok {
		return nodeIdx
	}

	// Split membership is decided by the same raw-value comparison the
	// seed implementation used (x[f] <= thr); in histogram mode the bin
	// edges are constructed so this agrees with the code comparison.
	// The float midpoint threshold can round up onto the right-hand
	// value, leaving one side empty: mirror the seed's guard and leave
	// a leaf.
	nLeft := b.markSides(feat, thr, lo, hi)
	if nLeft == 0 || nLeft == nNode {
		return nodeIdx
	}

	b.partition(lo, hi, nLeft)
	l := b.grow(lo, lo+nLeft, depth+1)
	r := b.grow(lo+nLeft, hi, depth+1)
	n := &b.tree.nodes[nodeIdx]
	n.feature = feat
	n.threshold = thr
	n.left = l
	n.right = r
	return nodeIdx
}

// markSides records each member row's split side in the side bitmask
// and returns the left-hand sample count (bootstrap copies included).
func (b *treeBuilder) markSides(feat int, thr float64, lo, hi int) int {
	col := b.ctx.cm.col(feat)
	side := b.side
	nl := 0
	for _, row := range b.samples[lo:hi] {
		w, bit := row>>6, uint64(1)<<(uint32(row)&63)
		if col[row] <= thr {
			side[w] |= bit
			nl++
		} else {
			side[w] &^= bit
		}
	}
	return nl
}

// partition stable-partitions the node segment [lo,hi) of the
// membership list — and, in exact mode, of every wide feature's sorted
// order — around the sides recorded by markSides. Stability preserves
// each order segment's sortedness, which is what lets children skip
// sorting. Order maintenance stops once no descendant can exceed
// smallNode (small nodes re-gather from the membership list), and
// features that became constant in this segment are skipped and marked
// stale: with no boundaries left, their order is never consulted below
// here.
func (b *treeBuilder) partition(lo, hi, nLeft int) {
	b.partitionSeg(b.samples[lo:hi])
	// Order segments are consulted only at nodes larger than smallNode
	// (smaller ones re-gather), so a child's segment needs maintaining
	// only when that child can itself exceed smallNode. When neither
	// can, the wide orders below this point are dead and left as-is.
	nRight := hi - lo - nLeft
	if b.ctx.bins != nil || (nLeft <= smallNode && nRight <= smallNode) {
		return
	}
	cm := b.ctx.cm
	nb := b.nb
	lo32, hi32 := int32(lo), int32(hi)
	for w := 0; w < cm.nWide(); w++ {
		if b.staleLo[w] <= lo32 && hi32 <= b.staleHi[w] {
			continue
		}
		seg := b.order[w*nb+lo : w*nb+hi]
		col := cm.col(int(cm.wideFeat[w]))
		// Sorted segment: constant iff the two ends agree.
		if col[seg[0]] == col[seg[len(seg)-1]] {
			b.staleLo[w], b.staleHi[w] = lo32, hi32
			continue
		}
		side := b.side
		part := b.part[:len(seg)]
		nl := 0
		for i, row := range seg {
			isL := int((side[row>>6] >> (uint32(row) & 63)) & 1)
			part[i-nl] = row
			seg[nl] = row
			nl += isL
		}
		// A small right child never reads its segment (nor do its even
		// smaller descendants), so the copy-back can be elided; the
		// stale garbage it leaves is provably never consulted.
		if nRight > smallNode {
			copy(seg[nl:], part[:len(seg)-nl])
		}
	}
}

// partitionSeg moves left-side rows to the front of seg, preserving
// relative order on both sides. Both candidate stores happen
// unconditionally (the loser slot is overwritten later or never read),
// so the random left/right outcome costs no branch misprediction.
func (b *treeBuilder) partitionSeg(seg []int32) {
	side := b.side
	part := b.part[:len(seg)]
	nl := 0
	for i, row := range seg {
		isL := int((side[row>>6] >> (uint32(row) & 63)) & 1)
		part[i-nl] = row
		seg[nl] = row
		nl += isL
	}
	copy(seg[nl:], part[:len(seg)-nl])
}

// candidates fills the candidate feature list for one split, matching
// the seed implementation's rng consumption exactly: all features in
// index order when mtry covers them all, otherwise the first mtry
// entries of a Fisher-Yates permutation.
func (b *treeBuilder) candidates() []int {
	nf := b.ctx.cm.nf
	mtry := b.cfg.MTry
	if mtry <= 0 || mtry > nf {
		mtry = nf
	}
	if mtry == nf {
		for i := range b.permBuf {
			b.permBuf[i] = i
		}
		return b.permBuf
	}
	permInto(b.rng, b.permBuf)
	return b.permBuf[:mtry]
}

// giniFilterEps over-bounds the absolute difference between the fast
// sum-of-squares impurity and the exact per-class float computation the
// seed used. The integer count sums are exact; the float rounding error
// is O(numClasses·2⁻⁵³) for the exact form and O(2⁻⁵³) for the fast
// form, so 1e-9 leaves a ≥10³ safety margin for any numClasses ≤ 10⁶
// (and the int64 squared sums are exact for n ≤ 9·10⁷).
const giniFilterEps = 1e-9

// splitScan carries the incumbent best split across the per-feature
// scans of one node's split search.
type splitScan struct {
	n          int // node size
	minLeaf    int
	parentGini float64
	invN       float64
	bestGain   float64
	bestGFast  float64
	bestFeat   int
	bestThr    float64
}

// boundary evaluates one candidate boundary: nl/nr samples and sl/sr
// squared class-count sums on each side, with raw values v < next
// around the cut. The fast O(1) sum-of-squares impurity filters out
// candidates that provably cannot beat the incumbent; survivors are
// re-evaluated with the seed implementation's exact per-class float
// arithmetic, so the comparison — and therefore the chosen split — is
// bit-identical. Winning requires a strictly lower exact impurity
// (float subtraction from the shared parent Gini is monotone
// non-increasing), so a candidate more than giniFilterEps above the
// incumbent's fast impurity can never win.
// confirm re-evaluates a filter-passing boundary with the seed's exact
// arithmetic and accepts it only on a strict gain improvement. The
// cheap reciprocal-table filter itself is open-coded at each scan's
// boundary site (scanWide, scanSmall, scanCoded) so the common
// filtered-out case never pays a call.
func (s *splitScan) confirm(b *treeBuilder, f, nl, nr int, gFast, v, next float64) {
	g := (float64(nl)*giniFromCounts(b.leftCount, nl) +
		float64(nr)*giniFromCounts(b.rightCount, nr)) / float64(s.n)
	if gain := s.parentGini - g; gain > s.bestGain {
		s.bestGain = gain
		s.bestFeat = f
		s.bestThr = (v + next) / 2
		s.bestGFast = gFast
	}
}

// bestSplit scans candidate features for the split minimizing weighted
// Gini impurity. Boundary positions, thresholds, accumulation
// arithmetic, and first-wins tie-breaking are identical to the seed
// per-node-sorting implementation: sorted tie order is unspecified in
// both, and split statistics only depend on value boundaries, which
// are tie-order invariant.
//
// Zero-gain splits are accepted (like scikit-learn): problems such as
// XOR have no first split with positive Gini gain, yet the children
// become separable. Termination holds because both sides of an
// accepted split are non-empty.
func (b *treeBuilder) bestSplit(lo, hi int, parentCounts []int) (int, float64, bool) {
	n := hi - lo
	s := splitScan{
		n:          n,
		minLeaf:    b.cfg.minLeaf(),
		parentGini: giniFromCounts(parentCounts, n),
		invN:       b.invTab[n],
		bestGain:   math.Inf(-1),
		bestGFast:  math.Inf(1),
		bestFeat:   -1,
	}
	var srParent int64
	for _, c := range b.present {
		srParent += int64(parentCounts[c]) * int64(parentCounts[c])
	}
	cm := b.ctx.cm
	for _, f := range b.candidates() {
		if cs := cm.codeOf[f]; cs >= 0 {
			b.scanCoded(&s, f, int(cs), lo, hi, parentCounts, srParent)
		} else if n <= smallNode {
			b.scanSmall(&s, f, lo, hi, parentCounts, srParent)
		} else {
			b.scanWide(&s, f, int(cm.wideIdx[f]), lo, hi, parentCounts, srParent)
		}
	}
	return s.bestFeat, s.bestThr, s.bestFeat >= 0
}

// initSides resets the per-class scan state to "everything right".
// Only the node's present classes are touched; doneSides keeps the
// invariant that leftCount/rightCount are all-zero elsewhere, which is
// what makes the exact-gini fallback correct for absent classes.
func (b *treeBuilder) initSides(parentCounts []int) {
	for _, c := range b.present {
		b.leftCount[c] = 0
		b.rightCount[c] = parentCounts[c]
	}
}

// doneSides rezeroes the scan state after a feature scan.
func (b *treeBuilder) doneSides() {
	for _, c := range b.present {
		b.leftCount[c] = 0
		b.rightCount[c] = 0
	}
}

// scanWide walks wide slot w's pre-sorted node segment, evaluating
// every value boundary.
func (b *treeBuilder) scanWide(s *splitScan, f, w, lo, hi int, parentCounts []int, srParent int64) {
	lo32, hi32 := int32(lo), int32(hi)
	if b.staleLo[w] <= lo32 && hi32 <= b.staleHi[w] {
		return // constant here: no boundaries, nothing to evaluate
	}
	n := hi - lo
	y := b.ctx.d.Y
	seg := b.order[w*b.nb+lo : w*b.nb+hi]
	col := b.ctx.cm.col(f)

	b.initSides(parentCounts)
	leftCounts, rightCounts := b.leftCount, b.rightCount
	inv, invN, minLeaf := b.invTab, s.invN, s.minLeaf
	sl, sr := int64(0), srParent
	nl, nr := 0, n
	v := col[seg[0]]
	for i := 0; i < n-1; i++ {
		row := seg[i]
		cls := y[row]
		l := leftCounts[cls]
		sl += int64(2*l + 1)
		leftCounts[cls] = l + 1
		r := rightCounts[cls]
		sr -= int64(2*r - 1)
		rightCounts[cls] = r - 1
		nl++
		nr--
		next := col[seg[i+1]]
		if v != next {
			if nl >= minLeaf && nr >= minLeaf {
				gFast := (float64(nl) - float64(sl)*inv[nl] +
					float64(nr) - float64(sr)*inv[nr]) * invN
				if gFast < s.bestGFast+giniFilterEps {
					s.confirm(b, f, nl, nr, gFast, v, next)
				}
			}
			v = next
		}
	}
	b.doneSides()
}

// scanSmall gathers the node's (value, class) pairs into fixed scratch,
// insertion-sorts by value (tie order is irrelevant), and runs the
// standard boundary scan. Used for every feature once a node fits in
// smallNode samples, which is what lets order maintenance stop high up
// the tree.
func (b *treeBuilder) scanSmall(s *splitScan, f, lo, hi int, parentCounts []int, srParent int64) {
	n := hi - lo
	col := b.ctx.cm.col(f)
	vals := b.smallVals[:n]
	cls := b.smallCls[:n]
	copy(cls, b.ycls[lo:hi])
	for i, row := range b.samples[lo:hi] {
		vals[i] = col[row]
	}
	for i := 1; i < n; i++ {
		v, c := vals[i], cls[i]
		j := i - 1
		for j >= 0 && vals[j] > v {
			vals[j+1], cls[j+1] = vals[j], cls[j]
			j--
		}
		vals[j+1], cls[j+1] = v, c
	}
	if vals[0] == vals[n-1] {
		return // constant in this node
	}

	b.initSides(parentCounts)
	leftCounts, rightCounts := b.leftCount, b.rightCount
	inv, invN, minLeaf := b.invTab, s.invN, s.minLeaf
	sl, sr := int64(0), srParent
	nl, nr := 0, n
	for i := 0; i < n-1; i++ {
		c := cls[i]
		l := leftCounts[c]
		sl += int64(2*l + 1)
		leftCounts[c] = l + 1
		r := rightCounts[c]
		sr -= int64(2*r - 1)
		rightCounts[c] = r - 1
		nl++
		nr--
		if vals[i] != vals[i+1] && nl >= minLeaf && nr >= minLeaf {
			gFast := (float64(nl) - float64(sl)*inv[nl] +
				float64(nr) - float64(sr)*inv[nr]) * invN
			if gFast < s.bestGFast+giniFilterEps {
				s.confirm(b, f, nl, nr, gFast, vals[i], vals[i+1])
			}
		}
	}
	b.doneSides()
}

// scanCoded evaluates coded slot cs through an exact per-value counting
// histogram: one pass accumulates per-code class counts, then the
// present codes are walked in ascending value order, emitting exactly
// the boundaries a sorted scan would (between consecutive present
// values, with the same midpoint thresholds).
func (b *treeBuilder) scanCoded(s *splitScan, f, cs, lo, hi int, parentCounts []int, srParent int64) {
	cm := b.ctx.cm
	n := hi - lo
	nc := b.ctx.d.NumClasses
	codes := cm.codedCol(cs)
	vals := cm.vals[cs]
	hist := b.hist
	seen := b.seen
	ycls := b.ycls
	touched := b.touched[:0]
	// Occupancy is tracked with a byte map set by a plain store: unlike
	// a per-code counter, repeated codes (sparse features are mostly one
	// value) carry no serialized load-increment-store dependency chain.
	for i, row := range b.samples[lo:hi] {
		code := int32(codes[row])
		if seen[code] == 0 {
			seen[code] = 1
			touched = append(touched, code)
		}
		hist[int(code)*nc+int(ycls[lo+i])]++
	}
	b.touched = touched
	if len(touched) >= 2 {
		b.initSides(parentCounts)
		leftCounts, rightCounts := b.leftCount, b.rightCount
		inv, invN, minLeaf := b.invTab, s.invN, s.minLeaf
		sl, sr := int64(0), srParent
		nl, nr := 0, n
		remaining := len(touched)
		for k := 0; remaining > 1; k++ {
			if seen[k] == 0 {
				continue
			}
			remaining--
			// The bin total is recovered from the class merge itself.
			t := int64(0)
			base := k * nc
			for _, c := range b.present {
				d := int64(hist[base+int(c)])
				if d == 0 {
					continue
				}
				t += d
				l := int64(leftCounts[c])
				sl += d * (2*l + d)
				leftCounts[c] = int(l + d)
				r := int64(rightCounts[c])
				sr -= d * (2*r - d)
				rightCounts[c] = int(r - d)
			}
			nl += int(t)
			nr -= int(t)
			k2 := k + 1
			for seen[k2] == 0 {
				k2++
			}
			if nl >= minLeaf && nr >= minLeaf {
				gFast := (float64(nl) - float64(sl)*inv[nl] +
					float64(nr) - float64(sr)*inv[nr]) * invN
				if gFast < s.bestGFast+giniFilterEps {
					s.confirm(b, f, nl, nr, gFast, vals[k], vals[k2])
				}
			}
		}
		b.doneSides()
	}
	for _, tc := range touched {
		seen[tc] = 0
		base := int(tc) * nc
		for _, c := range b.present {
			hist[base+int(c)] = 0
		}
	}
}

// bestSplitHist is the opt-in histogram-mode split search: one O(n)
// pass accumulates per-bin class counts, then an O(bins·classes) scan
// evaluates every bin boundary with the O(1) sum-of-squares impurity.
// Ties break toward the earliest candidate feature and lowest boundary,
// deterministically.
func (b *treeBuilder) bestSplitHist(lo, hi int, parentCounts []int) (int, float64, bool) {
	n := hi - lo
	y := b.ctx.d.Y
	bs := b.ctx.bins
	c := b.ctx.d.NumClasses

	bestGain := math.Inf(-1)
	bestFeat, bestThr := -1, 0.0
	parentGini := giniFromCounts(parentCounts, n)

	leftCounts, rightCounts := b.leftCount, b.rightCount
	minLeaf := b.cfg.minLeaf()
	inv := b.invTab
	invN := inv[n]
	var srParent int64
	for _, pc := range b.present {
		srParent += int64(parentCounts[pc]) * int64(parentCounts[pc])
	}

	for _, f := range b.candidates() {
		nbins := bs.nbins[f]
		if nbins < 2 {
			continue // constant feature: nothing to split
		}
		hist := b.hist[:nbins*c]
		total := b.histTotal[:nbins]
		clear(hist)
		clear(total)
		codes := bs.codes[f*bs.n : (f+1)*bs.n]
		for _, row := range b.samples[lo:hi] {
			code := int(codes[row])
			hist[code*c+y[row]]++
			total[code]++
		}
		b.initSides(parentCounts)
		sl, sr := int64(0), srParent
		nl, nr := 0, n
		for bb := 0; bb < nbins-1; bb++ {
			if t := total[bb]; t > 0 {
				base := bb * c
				for _, cls := range b.present {
					d := int64(hist[base+int(cls)])
					if d == 0 {
						continue
					}
					l := int64(leftCounts[cls])
					sl += d * (2*l + d)
					leftCounts[cls] = int(l + d)
					r := int64(rightCounts[cls])
					sr -= d * (2*r - d)
					rightCounts[cls] = int(r - d)
				}
				nl += int(t)
				nr -= int(t)
			}
			if nl < minLeaf || nr < minLeaf {
				continue
			}
			g := (float64(nl) - float64(sl)*inv[nl] +
				float64(nr) - float64(sr)*inv[nr]) * invN
			if gain := parentGini - g; gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThr = bs.edges[f][bb]
			}
		}
		b.doneSides()
	}
	return bestFeat, bestThr, bestFeat >= 0
}

// giniFromCounts computes 1 - sum(p^2).
func giniFromCounts(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	s := 0.0
	fn := float64(n)
	for _, c := range counts {
		if c == 0 { // 0/fn squared adds exactly +0.0: skipping is bit-identical
			continue
		}
		p := float64(c) / fn
		s += p * p
	}
	return 1 - s
}

// Predict returns the class for one sample.
func (t *Tree) Predict(x []float64) int {
	i := int32(0)
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return int(n.class)
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// NumNodes returns the node count (diagnostics).
func (t *Tree) NumNodes() int { return len(t.nodes) }

// Depth returns the maximum depth of the fitted tree (root = 0).
func (t *Tree) Depth() int {
	if len(t.nodes) == 0 {
		return 0
	}
	var rec func(i int32) int
	rec = func(i int32) int {
		n := &t.nodes[i]
		if n.feature < 0 {
			return 0
		}
		l, r := rec(n.left), rec(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return rec(0)
}
