package arena

import (
	"context"
	"testing"
)

// The search benchmarks run the full candidate pipeline — render,
// static verification gate, oracle scoring — against the cheap
// deterministic hash oracle, so they measure the arena's own
// machinery at a fixed budget (evasions/sec), not model inference.

func benchAttack(b *testing.B, strategy Strategy) {
	oracle := hashOracle{labels: []string{"A001", "A002", "A003"}}
	// The victim label must be whatever the oracle actually says at
	// baseline, or the attack succeeds instantly and measures nothing.
	base, err := oracle.Classify(context.Background(), tinySrc)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Strategy: strategy, Budget: 30, Seed: 17}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Attack(context.Background(), oracle, tinySrc, Goal{TrueAuthor: base.Label}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.GateChecks == 0 {
			b.Fatal("no gate checks")
		}
	}
}

func BenchmarkAttackMCTS(b *testing.B) { benchAttack(b, StrategyMCTS) }
func BenchmarkAttackBeam(b *testing.B) { benchAttack(b, StrategyBeam) }

// BenchmarkVerifyGate measures one static-gate decision on a restyled
// variant (the per-candidate cost paid before any oracle call).
func BenchmarkVerifyGate(b *testing.B) {
	cfg := Config{}.withDefaults()
	e := &engine{cfg: cfg, orig: tinySrc, tried: make([]bool, len(cfg.Actions))}
	cand, err := e.render([]int{0, 6})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := e.gate(cand)
		if err != nil || !ok {
			b.Fatalf("gate verdict changed: %v %v", ok, err)
		}
	}
}
